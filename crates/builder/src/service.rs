//! The Metrics Builder HTTP API service.
//!
//! Routes:
//!
//! * `GET /v1/nodes` — the monitored node inventory.
//! * `GET /v1/metrics?start=..&end=..[&interval=5m][&aggregation=max]`
//!   `[&compress=true][&explain=true]` — the assembled response document,
//!   with `X-Query-Processing-Ms`, `X-Cache`, `traceparent`, and
//!   `X-Freshness-Lag-Seconds` observability headers. Requests carrying a
//!   well-formed W3C `traceparent` header join that trace; malformed
//!   headers are ignored (a new root trace is started). `explain=true`
//!   wraps the response in a JSON envelope carrying the request's
//!   flight-recorder record (estimate vs actual cost, cache verdict,
//!   admission math) next to the base64-coded payload — which stays
//!   byte-identical to the explain-off response, whatever the disposition
//!   (`explain` is stripped from the cache key, so both forms share one
//!   cache entry and one flight).
//! * `GET /metrics` — Prometheus/OpenMetrics text exposition of the
//!   pipeline's own metrics (self-monitoring), exemplars included.
//! * `GET /debug/trace[?trace_id=<32-hex>]` — recent vtime-stamped spans
//!   as chrome-trace JSON with trace/span/parent lineage in `args`,
//!   optionally restricted to one trace.
//! * `GET /debug/requests[?disposition=..&min_ms=..&tenant=..&limit=..]`
//!   — the query flight recorder ([`crate::qlog`]): recent per-request
//!   wide events, newest first, plus the pinned slow-query log. 404 when
//!   the recorder is disabled.
//! * `GET /debug/requests/:trace_id` — symptom→request drill-down: every
//!   live record of one trace (join the id against `/debug/trace`).
//! * `GET /debug/pipeline` — the freshness SLO report: staleness
//!   percentiles, attainment, and multi-window burn rates.
//! * `GET /v1/alerts` — active and recently resolved alerts with severity
//!   counts (when the deployment runs an alert engine).
//! * `GET /v1/alerts/:id` — one alert's detail: rule, state, flap count,
//!   attributed job ids, and the exemplar trace id of the offending
//!   reading (join it against `GET /debug/trace`).
//! * `GET /v1/silences` — unexpired alert silences.

use crate::admission::{Admission, AdmissionConfig, AdmissionController};
use crate::cache::{ResponseCache, Validity, ValiditySnapshot};
use crate::exec::{execute, ExecMode};
use crate::flight::{FlightGroup, Join};
use crate::plan::{build_plan, estimate_plan_cost, BuilderRequest};
use crate::qlog::{
    self, CacheVerdict, CostPair, Disposition, Draft, QueryRecorder, RecordFilter, RequestRecord,
    STAGE_ADMISSION, STAGE_CACHE, STAGE_ENCODE, STAGE_EXECUTE, STAGE_PARSE, STAGE_PLAN,
};
use monster_collector::SchemaVersion;
use monster_compress::Level;
use monster_http::{Method, Request, Response, Router, Status};
use monster_json::{jarr, jobj, Value};
use monster_obs::TraceId;
use monster_tsdb::{Aggregation, Db};
use monster_util::{EpochSecs, NodeId};
use std::sync::Arc;

/// Flight-recorder tuning (see [`crate::qlog`]).
#[derive(Debug, Clone, Copy)]
pub struct QlogConfig {
    /// Master switch. `false` skips recorder construction entirely: no
    /// ring, no qlog/slow-query metric registration, `/debug/requests`
    /// serves 404, and `/v1/metrics` takes no timestamps (only
    /// `?explain=true` still assembles a per-request record, inline).
    pub enabled: bool,
    /// Ring capacity in records (rounded up to a power of two, min 16).
    pub capacity: usize,
    /// Requests at or above this many milliseconds — wall *or* modelled —
    /// are counted in `monster_builder_slow_queries_total` and pinned in
    /// the slow log. `0` disables slow-query tracking.
    pub slow_ms: f64,
}

impl Default for QlogConfig {
    fn default() -> QlogConfig {
        QlogConfig { enabled: true, capacity: 512, slow_ms: 250.0 }
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Storage schema the deployment writes (decides the plan shape).
    pub schema: SchemaVersion,
    /// Execution mode for planned queries.
    pub exec: ExecMode,
    /// Compression level for `compress=true` responses.
    pub level: Level,
    /// Response-cache capacity (entries); 0 disables caching.
    pub cache_entries: usize,
    /// Request coalescing (single-flight): concurrent identical requests
    /// share one execution. `false` is the benchmark baseline.
    pub coalesce: bool,
    /// Cost-based admission control (`AdmissionConfig { enabled: false,
    /// .. }` admits everything).
    pub admission: AdmissionConfig,
    /// Maintained roll-ups that coarse queries are rerouted to (see
    /// [`crate::rollup::reroute`]); typically
    /// [`crate::materializer::Materializer::routes`]. Empty disables
    /// rerouting.
    pub rollup_routes: Vec<crate::rollup::RollupRoute>,
    /// The deployment's alert engine, when alerting is on; backs
    /// `/v1/alerts` and `/v1/silences`. `None` serves 404s there.
    pub alerts: Option<Arc<monster_alert::AlertEngine>>,
    /// Query flight recorder (`/debug/requests`, `?explain=true`,
    /// estimator-accuracy metrics).
    pub qlog: QlogConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            schema: SchemaVersion::Optimized,
            exec: ExecMode::Concurrent { workers: 8 },
            level: Level::default(),
            cache_entries: 64,
            coalesce: true,
            admission: AdmissionConfig::default(),
            rollup_routes: Vec::new(),
            alerts: None,
            qlog: QlogConfig::default(),
        }
    }
}

fn bad_request(msg: &str) -> Response {
    Response::error(Status::BAD_REQUEST, msg)
}

/// Build the per-request response from a shared (cached/coalesced) one:
/// headers are cloned so the `X-Cache` disposition and trace headers can
/// be stamped per request, the body is reference-shared — zero byte
/// copies.
fn serve_shared(shared: &Response, cache_status: &str) -> Response {
    let mut resp = shared.clone();
    resp.headers.set("X-Cache", cache_status);
    resp
}

/// The tenant/client id admission buckets are keyed by. Dashboards and
/// batch consumers identify themselves with `X-Tenant`; anonymous traffic
/// shares one bucket.
fn tenant_of(req: &Request) -> &str {
    req.headers.get("X-Tenant").unwrap_or("anonymous")
}

/// RAII increment of the in-flight-queries gauge; panic-safe decrement.
struct InflightGuard(Arc<monster_obs::Gauge>);

impl InflightGuard {
    fn enter(gauge: &Arc<monster_obs::Gauge>) -> InflightGuard {
        gauge.add(1);
        InflightGuard(Arc::clone(gauge))
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// Stamp the trace/freshness headers every `/v1/metrics` response carries:
/// `traceparent` echoes the server-side span (joined to the caller's trace
/// when the request carried a well-formed `traceparent`), and
/// `X-Freshness-Lag-Seconds` reports the worst last-good-ingest lag across
/// the tracked fleet at response time.
fn stamp_trace_headers(mut resp: Response, ctx: monster_obs::TraceContext) -> Response {
    resp.headers.set("traceparent", ctx.to_traceparent());
    let lag = monster_obs::freshness().max_lag_secs().unwrap_or(0.0);
    resp.headers.set("X-Freshness-Lag-Seconds", format!("{lag:.3}"));
    resp
}

/// A recorder tick when observing, else 0 — keeps the recorder-off path
/// free of clock reads.
#[inline]
fn stamp(observing: bool) -> u64 {
    if observing {
        qlog::ticks_now()
    } else {
        0
    }
}

/// The normalized request key: path + query with the per-request
/// `explain` parameter stripped, plus whether `explain=true` was asked.
/// Explain-on and explain-off forms of a request share one cache entry
/// and one flight under this key — which is what makes the explain
/// payload byte-identical by construction. Callers pre-check
/// `req.query.contains("explain")` so the common path never splits.
fn normalize_key(req: &Request) -> (String, bool) {
    let explain = req.query_param("explain") == Some("true");
    let kept: Vec<&str> = req
        .query
        .split('&')
        .filter(|kv| {
            let name = kv.split('=').next().unwrap_or(kv);
            name != "explain"
        })
        .collect();
    (format!("{}?{}", req.path, kept.join("&")), explain)
}

/// Wrap a finished response in the `?explain=true` envelope: the
/// flight-recorder record inline, the payload carried byte-exact as
/// base64. Original status and headers (sans the entity headers the
/// envelope re-derives) are preserved, so a 429 explain is still a 429
/// with its `Retry-After`.
fn explain_envelope(resp: &Response, record: &RequestRecord) -> Response {
    let payload_encoding = resp.headers.get("Content-Encoding").unwrap_or("identity").to_string();
    let doc = jobj! {
        "explain" => record.to_json(),
        "payload_status" => resp.status.0 as i64,
        "payload_content_type" => resp.headers.get("Content-Type").unwrap_or(""),
        "payload_encoding" => payload_encoding,
        "payload_base64" => qlog::base64_encode(&resp.body),
    };
    let mut out = Response::json(&doc);
    out.status = resp.status;
    for (name, value) in resp.headers.iter() {
        if name.eq_ignore_ascii_case("Content-Type")
            || name.eq_ignore_ascii_case("Content-Length")
            || name.eq_ignore_ascii_case("Content-Encoding")
        {
            continue;
        }
        out.headers.set(name, value);
    }
    out
}

/// Parse `/v1/metrics` query parameters into a request. The `start` and
/// `end` parameters are required RFC 3339 timestamps; `interval` (default
/// `5m`) and `aggregation` (default `max`) are optional.
fn parse_metrics_request(req: &Request) -> Result<BuilderRequest, Response> {
    let start =
        req.query_param("start").ok_or_else(|| bad_request("missing required parameter: start"))?;
    let end =
        req.query_param("end").ok_or_else(|| bad_request("missing required parameter: end"))?;
    let start =
        EpochSecs::parse_rfc3339(start).map_err(|e| bad_request(&format!("bad start: {e}")))?;
    let end = EpochSecs::parse_rfc3339(end).map_err(|e| bad_request(&format!("bad end: {e}")))?;
    let interval = match req.query_param("interval") {
        Some(s) => monster_util::time::parse_interval(s)
            .map_err(|e| bad_request(&format!("bad interval: {e}")))?,
        None => 300,
    };
    let aggregation = match req.query_param("aggregation") {
        Some(s) => Aggregation::parse(s)
            .ok_or_else(|| bad_request(&format!("unknown aggregation: {s}")))?,
        None => Aggregation::Max,
    };
    let builder_req = BuilderRequest::new(start, end, interval, aggregation)
        .map_err(|e| bad_request(&e.to_string()))?;
    Ok(if req.query_param("compress") == Some("true") {
        builder_req.compressed()
    } else {
        builder_req
    })
}

/// Everything the `/v1/metrics` handler closes over, so the serving logic
/// can live in a named function instead of a 150-line closure.
struct MetricsState {
    db: Arc<Db>,
    nodes: Vec<NodeId>,
    config: ServiceConfig,
    cache: Arc<ResponseCache>,
    flights: Arc<FlightGroup>,
    admission: Arc<AdmissionController>,
    coalesced: Arc<monster_obs::Counter>,
    inflight: Arc<monster_obs::Gauge>,
    recorder: Option<Arc<QueryRecorder>>,
}

/// Serve one `/v1/metrics` request through the cache → flight → admission
/// → execute layers, filling the flight-recorder draft as it goes. Stage
/// timings accumulate in `d.stages_ns` as raw *ticks* (the caller
/// converts once at the end); `t_in` is the tick at entry. Trace headers
/// and explain wrapping are the caller's job.
#[allow(clippy::too_many_arguments)]
fn serve_metrics(
    st: &MetricsState,
    req: &Request,
    key: &str,
    mut span: monster_obs::Span,
    ctx: monster_obs::TraceContext,
    d: &mut Draft<'_>,
    observing: bool,
    t_in: u64,
) -> Response {
    // Layer 1: the result cache. Positive entries validate their
    // watermark snapshot; negative entries (deterministic 400s) are
    // data-independent and always valid.
    let (cached, verdict) = st.cache.probe(key, &st.db);
    d.verdict = verdict;
    if let Some(shared) = cached {
        // No stamps here: a hit is one probe plus a header clone, so the
        // caller charges its whole wall time to the cache stage. Two
        // rdtsc per hit (entry + total) is the entire clock budget.
        d.disposition = if verdict == CacheVerdict::Negative {
            Disposition::Negative
        } else {
            Disposition::Hit
        };
        span.set_attr("cache", "hit");
        span.finish();
        return serve_shared(&shared, "hit");
    }
    let t_parse = stamp(observing);
    d.stages_ns[STAGE_CACHE] = t_parse.wrapping_sub(t_in);

    let builder_req = match parse_metrics_request(req) {
        Ok(r) => r,
        Err(resp) => {
            let t = stamp(observing);
            d.stages_ns[STAGE_PARSE] = t.wrapping_sub(t_parse);
            d.disposition = Disposition::Negative;
            // A parse rejection depends only on the URL: cache it so
            // malformed dashboards don't re-parse forever.
            let shared = st.cache.put(key, Validity::Always, resp);
            span.set_attr("outcome", "bad_request");
            span.finish();
            let resp = serve_shared(&shared, "miss");
            d.stages_ns[STAGE_ENCODE] = stamp(observing).wrapping_sub(t);
            return resp;
        }
    };
    let t_join = stamp(observing);
    d.stages_ns[STAGE_PARSE] = t_join.wrapping_sub(t_parse);

    // Layer 2: single-flight. The first identical request leads and
    // executes; the rest block and share its response. A follower's wait
    // is charged to the cache stage — it is served from shared state.
    let leader = if st.config.coalesce {
        match st.flights.join(key) {
            Join::Follower(Some(shared)) => {
                st.coalesced.inc();
                let t = stamp(observing);
                d.stages_ns[STAGE_CACHE] += t.wrapping_sub(t_join);
                d.disposition = Disposition::Coalesced;
                span.set_attr("cache", "coalesced");
                span.finish();
                let resp = serve_shared(&shared, "coalesced");
                d.stages_ns[STAGE_ENCODE] = stamp(observing).wrapping_sub(t);
                return resp;
            }
            // The leader failed: execute directly, unshared.
            Join::Follower(None) => None,
            Join::Leader(l) => Some(l),
        }
    } else {
        None
    };

    let t_plan = stamp(observing);
    let mut plan = build_plan(st.config.schema, &st.nodes, &builder_req);
    crate::rollup::reroute(&mut plan, &st.config.rollup_routes);

    // Layer 3: cost-based admission, leaders only — a coalesced burst
    // debits one token, not one per request. The plan is priced without
    // executing anything.
    let est = estimate_plan_cost(&st.db, &plan);
    let est_secs = st.db.simulate_elapsed(&est).as_secs_f64();
    let t_admit = stamp(observing);
    d.stages_ns[STAGE_PLAN] = t_admit.wrapping_sub(t_plan);
    let (admission, adm_snap) = st.admission.admit_observed(tenant_of(req), est_secs);
    d.admission = Some(adm_snap);
    d.stages_ns[STAGE_ADMISSION] = stamp(observing).wrapping_sub(t_admit);
    match admission {
        Admission::Admitted { .. } => {}
        Admission::Rejected { retry_after_secs, reason } => {
            let t = stamp(observing);
            d.disposition = Disposition::Rejected;
            let mut resp = Response::error(
                Status::TOO_MANY_REQUESTS,
                &format!(
                    "admission control rejected this query ({reason}): \
                     estimated cost {est_secs:.3}s modelled; retry later"
                ),
            );
            resp.headers.set("Retry-After", retry_after_secs.to_string());
            let shared = Arc::new(resp);
            // Followers share the 429 (they are the same query), but it
            // is never cached: the budget refills.
            if let Some(l) = leader {
                l.complete(Some(Arc::clone(&shared)));
            }
            span.set_attr("outcome", "admission_rejected");
            span.finish();
            let resp = serve_shared(&shared, "miss");
            d.stages_ns[STAGE_ENCODE] = stamp(observing).wrapping_sub(t);
            return resp;
        }
    }

    // Snapshot validity *before* executing: a write racing the scan can
    // then only invalidate the entry spuriously, never leave a stale one
    // validating.
    let validity = ValiditySnapshot::capture(
        &st.db,
        plan.iter().map(|pq| pq.query.measurement.as_str()),
        builder_req.end.as_secs(),
    );

    let t_exec = stamp(observing);
    let guard = InflightGuard::enter(&st.inflight);
    let outcome = match execute(&st.db, &plan, st.config.exec) {
        Ok(o) => o,
        Err(e) => {
            drop(guard);
            // Dropping the leader (if any) completes the flight with
            // None; followers execute for themselves.
            drop(leader);
            d.stages_ns[STAGE_EXECUTE] = stamp(observing).wrapping_sub(t_exec);
            d.disposition = Disposition::Error;
            span.set_attr("outcome", "error");
            span.finish();
            return Response::error(
                Status::INTERNAL_ERROR,
                &format!("query execution failed: {e}"),
            );
        }
    };
    drop(guard);
    let t_enc = stamp(observing);
    d.stages_ns[STAGE_EXECUTE] = t_enc.wrapping_sub(t_exec);
    if observing {
        d.cost = Some(CostPair {
            estimated: est,
            actual: outcome.cost,
            estimated_ns: (est_secs * 1e9) as u64,
            actual_ns: st.db.simulate_elapsed(&outcome.cost).as_nanos(),
        });
        d.vtime_execute_ns = outcome.query_time.as_nanos();
        d.vtime_encode_ns = outcome.processing_time.as_nanos();
    }

    let mut resp = Response::json(&outcome.document);
    if builder_req.compress {
        resp = resp.compressed(st.config.level);
    }
    resp.headers.set(
        "X-Query-Processing-Ms",
        format!("{:.3}", outcome.query_processing_time().as_millis_f64()),
    );
    span.set_attr("cache", "miss");
    monster_obs::histo_help(
        "monster_builder_request_seconds",
        "End-to-end simulated latency of /v1/metrics requests.",
    )
    .observe_vdur_traced(outcome.query_processing_time(), Some(ctx));
    span.finish_after(outcome.query_processing_time());
    let shared = st.cache.put(key, Validity::Watermarks(validity), resp);
    if let Some(l) = leader {
        l.complete(Some(Arc::clone(&shared)));
    }
    d.disposition = Disposition::Miss;
    let out = serve_shared(&shared, "miss");
    d.stages_ns[STAGE_ENCODE] = stamp(observing).wrapping_sub(t_enc);
    out
}

/// Parse the `/debug/requests` filter parameters; `Err` is the 400.
fn parse_record_filter(req: &Request) -> Result<RecordFilter, Response> {
    let mut filter = RecordFilter::default();
    if let Some(s) = req.query_param("disposition") {
        filter.disposition = Some(Disposition::parse(s).ok_or_else(|| {
            bad_request(&format!(
                "unknown disposition {s:?} (expected hit|miss|coalesced|negative|rejected|error)"
            ))
        })?);
    }
    if let Some(s) = req.query_param("min_ms") {
        filter.min_ms = Some(s.parse::<f64>().map_err(|_| bad_request("min_ms must be a number"))?);
    }
    if let Some(s) = req.query_param("tenant") {
        filter.tenant = Some(s.to_string());
    }
    if let Some(s) = req.query_param("limit") {
        filter.limit =
            Some(s.parse::<usize>().map_err(|_| bad_request("limit must be an integer"))?);
    }
    Ok(filter)
}

/// Build the service router over `db` for the given node inventory.
pub fn router(db: Arc<Db>, nodes: Vec<NodeId>, config: ServiceConfig) -> Router {
    let cache = Arc::new(ResponseCache::new(config.cache_entries));
    let flights = Arc::new(FlightGroup::new());
    let admission = Arc::new(AdmissionController::new(config.admission));
    let coalesced = monster_obs::counter_help(
        "monster_builder_cache_coalesced_total",
        "Requests served by joining another request's in-flight execution.",
    );
    let inflight = monster_obs::gauge_help(
        "monster_builder_inflight_queries",
        "Metrics queries currently executing against storage.",
    );
    // The recorder — and its metrics — exist only when enabled; a
    // disabled deployment keeps its `/metrics` series budget untouched.
    let recorder = config
        .qlog
        .enabled
        .then(|| Arc::new(QueryRecorder::new(config.qlog.capacity, config.qlog.slow_ms)));
    let node_list: Vec<Value> = nodes.iter().map(|n| Value::from(n.bmc_addr())).collect();
    let nodes_doc = jobj! { "nodes" => Value::Array(node_list) };

    let state = Arc::new(MetricsState {
        db: Arc::clone(&db),
        nodes: nodes.clone(),
        config: config.clone(),
        cache,
        flights,
        admission,
        coalesced,
        inflight,
        recorder,
    });
    let requests_state = Arc::clone(&state);
    let drill_state = Arc::clone(&state);
    let scrape_recorder = state.recorder.clone();

    Router::new()
        .route(Method::Get, "/v1/nodes", move |_req, _params| Response::json(&nodes_doc))
        .route(Method::Get, "/v1/metrics", move |req, _params| {
            // Join the caller's trace when the request carries a
            // well-formed W3C traceparent; a malformed or absent header
            // starts a new root — never an error.
            let parent = req
                .headers
                .get("traceparent")
                .and_then(monster_obs::TraceContext::parse_traceparent);
            let span = match parent {
                Some(parent) => monster_obs::Span::child_of("builder.api_request", parent),
                None => monster_obs::Span::root("builder.api_request"),
            };
            let ctx = span.context();
            // Install the context so the execute/query/lock spans and
            // exemplars underneath this request join its trace.
            let _trace_guard = monster_obs::trace::set_current(ctx);

            // The substring pre-check keeps explain-off requests from
            // paying the query split; `observing` gates every timestamp.
            let may_explain = req.query.contains("explain");
            let observing = state.recorder.is_some() || may_explain;
            if let Some(r) = &state.recorder {
                // Warm the ring slot this request will record into; the
                // prefetch overlaps the whole serve (see qlog docs).
                r.prefetch_next();
            }
            let t0 = stamp(observing);
            let (key, explain) = if may_explain {
                normalize_key(req)
            } else {
                (format!("{}?{}", req.path, req.query), false)
            };
            let tenant = tenant_of(req);
            let mut draft = Draft::new(&key, tenant, ctx.trace, ctx.span);
            draft.explain = explain;
            if explain {
                // Only the explain envelope needs the fingerprint now;
                // ring records leave it 0 and the decoder recomputes it
                // from the stored key, off the hot path.
                draft.fingerprint = qlog::fingerprint64(&key);
            }

            let mut resp = serve_metrics(&state, req, &key, span, ctx, &mut draft, observing, t0);

            if observing {
                let total = qlog::ticks_to_ns(stamp(observing).wrapping_sub(t0));
                if draft.stages_ns == [0; qlog::STAGES.len()] {
                    // Cache hit: no stage boundary was stamped inside —
                    // the whole request IS the cache stage.
                    draft.stages_ns[STAGE_CACHE] = total;
                } else {
                    for ticks in draft.stages_ns.iter_mut() {
                        if *ticks != 0 {
                            *ticks = qlog::ticks_to_ns(*ticks);
                        }
                    }
                }
                draft.total_ns = total;
                draft.status = resp.status.0;
                draft.bytes_out = resp.body.len() as u64;
                let (seq, slow) = match &state.recorder {
                    Some(r) => r.record(&draft),
                    None => (0, false),
                };
                if explain {
                    resp = explain_envelope(&resp, &draft.to_record(seq, slow));
                }
            }
            stamp_trace_headers(resp, ctx)
        })
        .route(Method::Get, "/metrics", move |_req, _params| {
            // The hot path never pays for the records counter; it is
            // reconciled with the ring head here, at scrape time.
            if let Some(r) = &scrape_recorder {
                r.sync_counters();
            }
            Response::bytes(
                monster_obs::global().text_exposition().into_bytes(),
                "text/plain; version=0.0.4",
            )
        })
        .route(Method::Get, "/debug/trace", |req, _params| match req.query_param("trace_id") {
            None => Response::json(&monster_obs::global().trace_json()),
            Some(s) => match TraceId::parse_hex(s) {
                Some(id) => Response::json(&monster_obs::global().trace_json_filtered(Some(id))),
                None => bad_request("trace_id must be 32 hex digits"),
            },
        })
        .route(Method::Get, "/debug/requests", move |req, _params| {
            let Some(recorder) = &requests_state.recorder else {
                return Response::error(Status::NOT_FOUND, "query flight recorder is disabled");
            };
            match parse_record_filter(req) {
                Ok(filter) => Response::json(&recorder.debug_json(&filter)),
                Err(resp) => resp,
            }
        })
        .route(Method::Get, "/debug/requests/:trace_id", move |_req, params| {
            let Some(recorder) = &drill_state.recorder else {
                return Response::error(Status::NOT_FOUND, "query flight recorder is disabled");
            };
            let Some(id) = params.get("trace_id").and_then(TraceId::parse_hex) else {
                return bad_request("trace_id must be 32 hex digits");
            };
            let records: Vec<Value> = recorder.by_trace(id).iter().map(|r| r.to_json()).collect();
            if records.is_empty() {
                return Response::error(
                    Status::NOT_FOUND,
                    &format!("no live flight-recorder records for trace {id}"),
                );
            }
            Response::json(&jobj! {
                "trace_id" => id.to_string(),
                "requests" => Value::Array(records),
            })
        })
        .route(Method::Get, "/debug/pipeline", |_req, _params| {
            Response::json(&monster_obs::freshness().report())
        })
        .route(Method::Get, "/v1/alerts", {
            let engine = config.alerts.clone();
            move |_req, _params| match &engine {
                Some(e) => Response::json(&e.alerts_json()),
                None => Response::error(Status::NOT_FOUND, "alerting is not enabled"),
            }
        })
        .route(Method::Get, "/v1/alerts/:id", {
            let engine = config.alerts.clone();
            move |_req, params| {
                let Some(engine) = &engine else {
                    return Response::error(Status::NOT_FOUND, "alerting is not enabled");
                };
                let Some(id) = params.get("id").and_then(|s| s.parse::<u64>().ok()) else {
                    return bad_request("alert id must be an integer");
                };
                match engine.alert(id) {
                    Some(alert) => Response::json(&alert.to_json()),
                    None => Response::error(Status::NOT_FOUND, &format!("no alert {id}")),
                }
            }
        })
        .route(Method::Get, "/v1/silences", {
            let engine = config.alerts.clone();
            move |_req, _params| match &engine {
                Some(e) => Response::json(&e.silences_json()),
                None => Response::error(Status::NOT_FOUND, "alerting is not enabled"),
            }
        })
        .route(Method::Get, "/healthz", |_req, _params| {
            Response::json(&jobj! { "status" => "ok", "checks" => jarr!["registry", "db"] })
        })
        .route(Method::Get, "/v1/health", |_req, _params| {
            Response::json(&jobj! { "status" => "ok", "checks" => jarr!["registry", "db"] })
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_tsdb::{DataPoint, DbConfig};

    fn service() -> (Arc<Db>, Router) {
        let db = Arc::new(Db::new(DbConfig::default()));
        let ids = NodeId::enumerate(2, 4);
        let mut batch = Vec::new();
        for i in 0..60i64 {
            for &n in &ids {
                batch.push(
                    DataPoint::new("Power", EpochSecs::new(i * 60))
                        .tag("NodeId", n.bmc_addr())
                        .tag("Label", "NodePower")
                        .field_f64("Reading", 250.0 + i as f64),
                );
            }
        }
        db.write_batch(&batch).unwrap();
        let router = router(Arc::clone(&db), ids, ServiceConfig::default());
        (db, router)
    }

    fn get(router: &Router, path: &str) -> Response {
        router.dispatch(&Request::get(path))
    }

    #[test]
    fn nodes_endpoint_lists_inventory() {
        let (_db, router) = service();
        let resp = get(&router, "/v1/nodes");
        assert_eq!(resp.status, Status::OK);
        let v = resp.json_body().unwrap();
        assert_eq!(v.get("nodes").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn metrics_endpoint_validates_parameters() {
        let (_db, router) = service();
        assert_eq!(get(&router, "/v1/metrics").status, Status::BAD_REQUEST);
        assert_eq!(
            get(&router, "/v1/metrics?start=bogus&end=2020-01-01T01:00:00Z").status,
            Status::BAD_REQUEST
        );
        assert_eq!(
            get(
                &router,
                "/v1/metrics?start=2020-01-01T00:00:00Z&end=2020-01-01T01:00:00Z&aggregation=median"
            )
            .status,
            Status::BAD_REQUEST
        );
        // End before start.
        assert_eq!(
            get(&router, "/v1/metrics?start=2020-01-01T01:00:00Z&end=2020-01-01T00:00:00Z").status,
            Status::BAD_REQUEST
        );
    }

    #[test]
    fn metrics_endpoint_serves_documents_and_headers() {
        let (_db, router) = service();
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";
        let resp = get(&router, url);
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.headers.get("X-Cache"), Some("miss"));
        assert!(resp.headers.get("X-Query-Processing-Ms").is_some());
        let doc = resp.json_body().unwrap();
        assert!(doc.get("10.101.1.1").unwrap().get("power").is_some());
        // Second identical request hits the cache.
        let again = get(&router, url);
        assert_eq!(again.headers.get("X-Cache"), Some("hit"));
        assert_eq!(again.json_body().unwrap(), doc);
    }

    #[test]
    fn rollup_routed_service_serves_identical_documents() {
        let db = Arc::new(Db::new(DbConfig::default()));
        let ids = NodeId::enumerate(2, 4);
        let mut batch = Vec::new();
        for i in 0..60i64 {
            for &n in &ids {
                batch.push(
                    DataPoint::new("Power", EpochSecs::new(i * 60))
                        .tag("NodeId", n.bmc_addr())
                        .tag("Label", "NodePower")
                        .field_f64("Reading", 250.0 + i as f64),
                );
            }
        }
        db.write_batch(&batch).unwrap();
        let mut m = crate::materializer::Materializer::standard(EpochSecs::new(0));
        assert!(m.run_once(&db, EpochSecs::new(3600)).unwrap() > 0);

        let raw = router(Arc::clone(&db), ids.clone(), ServiceConfig::default());
        let routed = router(
            Arc::clone(&db),
            ids,
            ServiceConfig { rollup_routes: m.routes(), ..ServiceConfig::default() },
        );
        // A 10-minute-interval max request is exactly the roll-up grain.
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=10m";
        let doc_raw = get(&raw, url).json_body().unwrap();
        let doc_routed = get(&routed, url).json_body().unwrap();
        assert_eq!(doc_raw, doc_routed);
        assert!(doc_routed.get("10.101.1.1").unwrap().get("power").is_some());
    }

    #[test]
    fn metrics_endpoint_trace_and_freshness_headers() {
        let (_db, router) = service();
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";

        // No traceparent: the response carries a fresh, well-formed one.
        let resp = get(&router, url);
        assert_eq!(resp.status, Status::OK);
        let tp = resp.headers.get("traceparent").expect("traceparent header");
        let ctx = monster_obs::TraceContext::parse_traceparent(tp).expect("well-formed");
        let lag = resp.headers.get("X-Freshness-Lag-Seconds").expect("freshness header");
        assert!(lag.parse::<f64>().unwrap() >= 0.0);

        // A valid inbound traceparent joins: same trace id, new span id.
        let inbound = monster_obs::TraceContext::root();
        let req = Request::get(url).with_header("traceparent", inbound.to_traceparent());
        let resp = router.dispatch(&req);
        let echoed =
            monster_obs::TraceContext::parse_traceparent(resp.headers.get("traceparent").unwrap())
                .unwrap();
        assert_eq!(echoed.trace, inbound.trace);
        assert_ne!(echoed.span, inbound.span);
        assert_ne!(echoed.trace, ctx.trace);
        // Cache hits are stamped too.
        assert_eq!(resp.headers.get("X-Cache"), Some("hit"));
        assert!(resp.headers.get("X-Freshness-Lag-Seconds").is_some());

        // Malformed traceparent: ignored, new root, still 200.
        let req = Request::get(url).with_header("traceparent", "zz-not-a-trace");
        let resp = router.dispatch(&req);
        assert_eq!(resp.status, Status::OK);
        let fresh =
            monster_obs::TraceContext::parse_traceparent(resp.headers.get("traceparent").unwrap())
                .unwrap();
        assert_ne!(fresh.trace, inbound.trace);

        // Error responses carry the headers as well.
        let bad = get(&router, "/v1/metrics");
        assert_eq!(bad.status, Status::BAD_REQUEST);
        assert!(bad.headers.get("traceparent").is_some());
    }

    #[test]
    fn closed_window_cache_survives_new_interval_writes() {
        // The tentpole behavior: under the old global-version cache, every
        // collection interval nuked every entry. With watermark validity a
        // closed historical window stays served from cache while new
        // intervals land — and a backfill still invalidates it.
        let (db, router) = service(); // data at ts 0..3540
                                      // Close the window: the watermark must reach past `end` (3600),
                                      // otherwise a later in-order point could still land inside it.
        db.write(
            DataPoint::new("Power", EpochSecs::new(3600))
                .tag("NodeId", "10.101.1.1")
                .tag("Label", "NodePower")
                .field_f64("Reading", 260.0),
        )
        .unwrap();
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";
        assert_eq!(get(&router, url).headers.get("X-Cache"), Some("miss"));

        // A new collection interval arrives above the queried window.
        db.write(
            DataPoint::new("Power", EpochSecs::new(7200))
                .tag("NodeId", "10.101.1.1")
                .tag("Label", "NodePower")
                .field_f64("Reading", 300.0),
        )
        .unwrap();
        let resp = get(&router, url);
        assert_eq!(
            resp.headers.get("X-Cache"),
            Some("hit"),
            "closed window must survive in-order appends"
        );

        // A backfill inside the window rewrites history: must invalidate.
        db.write(
            DataPoint::new("Power", EpochSecs::new(600))
                .tag("NodeId", "10.101.1.1")
                .tag("Label", "NodePower")
                .field_f64("Reading", 999.0),
        )
        .unwrap();
        let resp = get(&router, url);
        assert_eq!(resp.headers.get("X-Cache"), Some("miss"), "backfill must invalidate");
        let doc = resp.json_body().unwrap();
        // And the re-executed document sees the backfilled reading.
        let text = doc.to_string_compact();
        assert!(text.contains("999"), "re-execution must observe the backfill");
    }

    #[test]
    fn admission_rejects_expensive_queries_with_retry_after() {
        let db = Arc::new(Db::new(DbConfig::default()));
        let ids = NodeId::enumerate(2, 4);
        let mut batch = Vec::new();
        for i in 0..60i64 {
            for &n in &ids {
                batch.push(
                    DataPoint::new("Power", EpochSecs::new(i * 60))
                        .tag("NodeId", n.bmc_addr())
                        .tag("Label", "NodePower")
                        .field_f64("Reading", 250.0 + i as f64),
                );
            }
        }
        db.write_batch(&batch).unwrap();
        // Everything is "expensive" and nothing is affordable: the
        // admission layer must turn the query away before it executes.
        let config = ServiceConfig {
            admission: AdmissionConfig {
                enabled: true,
                cheap_secs: 0.0,
                reject_secs: 0.0,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        };
        let router = router(Arc::clone(&db), ids, config);
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";
        let resp = get(&router, url);
        assert_eq!(resp.status, Status::TOO_MANY_REQUESTS);
        let retry: u64 =
            resp.headers.get("Retry-After").expect("Retry-After header").parse().unwrap();
        assert!(retry >= 1);
        assert!(resp.headers.get("traceparent").is_some(), "429s carry trace headers too");
        // Rejections are not cached: the next attempt is re-evaluated.
        assert_eq!(get(&router, url).status, Status::TOO_MANY_REQUESTS);
    }

    #[test]
    fn repeated_bad_requests_hit_the_negative_cache() {
        let (_db, router) = service();
        let url = "/v1/metrics?start=bogus&end=2020-01-01T01:00:00Z";
        let first = get(&router, url);
        assert_eq!(first.status, Status::BAD_REQUEST);
        assert_eq!(first.headers.get("X-Cache"), Some("miss"));
        let second = get(&router, url);
        assert_eq!(second.status, Status::BAD_REQUEST);
        assert_eq!(second.headers.get("X-Cache"), Some("hit"), "deterministic 400s are cached");
        assert_eq!(first.body, second.body);
    }

    #[test]
    fn concurrent_identical_requests_serve_identical_bytes() {
        // Coalescing plus caching under concurrency: every response for
        // the same URL must be byte-identical, whatever its disposition.
        let (_db, router) = service();
        let router = Arc::new(router);
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";
        let mut handles = Vec::new();
        for _ in 0..8 {
            let router = Arc::clone(&router);
            handles.push(std::thread::spawn(move || {
                let resp = router.dispatch(&Request::get(url));
                assert_eq!(resp.status, Status::OK);
                let disposition = resp.headers.get("X-Cache").unwrap().to_string();
                assert!(
                    ["hit", "miss", "coalesced"].contains(&disposition.as_str()),
                    "unexpected X-Cache: {disposition}"
                );
                resp.body.to_vec()
            }));
        }
        let bodies: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for b in &bodies[1..] {
            assert_eq!(b, &bodies[0]);
        }
    }

    #[test]
    fn pipeline_endpoint_reports_freshness() {
        let (_db, router) = service();
        monster_obs::freshness().record_ingest("10.101.9.9", "Thermal", 0.0);
        monster_obs::freshness().record_sweep(0.0);
        let resp = get(&router, "/debug/pipeline");
        assert_eq!(resp.status, Status::OK);
        let doc = resp.json_body().unwrap();
        assert!(doc.get("tracked_series").unwrap().as_i64().unwrap() >= 1);
        assert!(doc.get("staleness_secs").unwrap().get("p99").is_some());
        assert!(doc.get("attainment").unwrap().as_f64().is_some());
        assert!(doc.get("burn_rate").unwrap().get("fast").is_some());
    }

    /// Leaf paths of a JSON document with their types — the golden shape
    /// of `/debug/pipeline`. Values vary with whatever the process-global
    /// tracker has seen; the key tree and types must not.
    fn shape_of(v: &Value, prefix: &str, out: &mut Vec<String>) {
        match v {
            Value::Object(o) => {
                for (k, inner) in o.iter() {
                    let path =
                        if prefix.is_empty() { k.to_string() } else { format!("{prefix}.{k}") };
                    shape_of(inner, &path, out);
                }
            }
            Value::Array(_) => out.push(format!("{prefix}:array")),
            Value::Int(_) | Value::Float(_) => out.push(format!("{prefix}:number")),
            Value::Str(_) => out.push(format!("{prefix}:string")),
            Value::Bool(_) => out.push(format!("{prefix}:bool")),
            Value::Null => out.push(format!("{prefix}:null")),
        }
    }

    #[test]
    fn pipeline_endpoint_shape_is_golden() {
        // Dashboards and the chaos harness key into this document by
        // path; adding a field is fine everywhere *except* silently, and
        // renaming one breaks consumers. This golden list is the contract
        // — update it deliberately, in the same commit as the consumer.
        let (_db, router) = service();
        monster_obs::freshness().record_ingest("10.101.9.8", "Thermal", 0.0);
        monster_obs::freshness().record_sweep(0.0);
        let doc = get(&router, "/debug/pipeline").json_body().unwrap();
        let mut got = Vec::new();
        shape_of(&doc, "", &mut got);
        assert_eq!(
            got,
            [
                "tracked_series:number",
                "latest_sweep_epoch_secs:number",
                "slo.cadence_secs:number",
                "slo.fresh_within_secs:number",
                "slo.target:number",
                "staleness_secs.p50:number",
                "staleness_secs.p90:number",
                "staleness_secs.p99:number",
                "staleness_secs.max:number",
                "attainment:number",
                "error_budget_used:number",
                "burn_rate.fast_window_secs:number",
                "burn_rate.fast:number",
                "burn_rate.slow_window_secs:number",
                "burn_rate.slow:number",
            ],
            "GET /debug/pipeline shape drifted"
        );
    }

    const URL: &str = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";

    fn payload_of(envelope: &Response) -> Vec<u8> {
        let doc = envelope.json_body().expect("envelope is JSON");
        qlog::base64_decode(doc.get("payload_base64").unwrap().as_str().unwrap())
            .expect("payload decodes")
    }

    #[test]
    fn explain_wraps_but_payload_is_byte_identical() {
        let (_db, router) = service();
        // Explain-off first: this is the reference payload (a miss).
        let plain = get(&router, URL);
        assert_eq!(plain.status, Status::OK);

        // Explain-on shares the same (normalized) cache entry: a hit.
        let wrapped = get(&router, &format!("{URL}&explain=true"));
        assert_eq!(wrapped.status, Status::OK);
        assert_eq!(wrapped.headers.get("X-Cache"), Some("hit"), "explain shares the cache key");
        assert_eq!(payload_of(&wrapped), plain.body.to_vec(), "payload must be byte-identical");

        let doc = wrapped.json_body().unwrap();
        let explain = doc.get("explain").expect("explain block");
        assert_eq!(explain.get("disposition").unwrap().as_str(), Some("hit"));
        assert_eq!(explain.get("cache").unwrap().get("verdict").unwrap().as_str(), Some("valid"));
        assert_eq!(
            explain.get("bytes_out").unwrap().as_i64().unwrap() as usize,
            plain.body.len(),
            "bytes_out counts the payload, not the envelope"
        );
        // And the explain request itself was recorded as explain=true.
        assert_eq!(explain.get("explain").unwrap(), &Value::Bool(true));

        // explain=false (or any other value) is stripped but not wrapped.
        let off = get(&router, &format!("{URL}&explain=false"));
        assert_eq!(off.headers.get("X-Cache"), Some("hit"));
        assert_eq!(off.body, plain.body);
    }

    #[test]
    fn explain_covers_negative_and_rejected_dispositions() {
        let (_db, router) = service();
        // Negative: parse rejection, still a 400 under explain.
        let bad = "/v1/metrics?start=bogus&end=2020-01-01T01:00:00Z";
        let plain = get(&router, bad);
        assert_eq!(plain.status, Status::BAD_REQUEST);
        let wrapped = get(&router, &format!("{bad}&explain=true"));
        assert_eq!(wrapped.status, Status::BAD_REQUEST, "explain preserves the status");
        assert_eq!(payload_of(&wrapped), plain.body.to_vec());
        let doc = wrapped.json_body().unwrap();
        assert_eq!(
            doc.get("explain").unwrap().get("disposition").unwrap().as_str(),
            Some("negative")
        );

        // Rejected: 429 with Retry-After and the bucket math inline.
        let (db2, _) = service();
        let config = ServiceConfig {
            admission: AdmissionConfig {
                enabled: true,
                cheap_secs: 0.0,
                reject_secs: 0.0,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        };
        let strict = super::router(Arc::clone(&db2), NodeId::enumerate(2, 4), config);
        let plain = get(&strict, URL);
        assert_eq!(plain.status, Status::TOO_MANY_REQUESTS);
        let wrapped = get(&strict, &format!("{URL}&explain=true"));
        assert_eq!(wrapped.status, Status::TOO_MANY_REQUESTS);
        let retry = wrapped.headers.get("Retry-After").expect("Retry-After survives explain");
        assert_eq!(payload_of(&wrapped), plain.body.to_vec());
        let doc = wrapped.json_body().unwrap();
        let explain = doc.get("explain").unwrap();
        assert_eq!(explain.get("disposition").unwrap().as_str(), Some("rejected"));
        let adm = explain.get("admission").expect("admission math inline");
        assert_eq!(adm.get("decision").unwrap().as_str(), Some("rejected_over_budget"));
        assert_eq!(
            adm.get("retry_after_secs").unwrap().as_i64().unwrap().to_string(),
            retry,
            "the explain math must reproduce the Retry-After header"
        );
    }

    #[test]
    fn debug_requests_lists_filters_and_drills_down() {
        let (_db, router) = service();
        let miss = get(&router, URL);
        let hit = get(&router, URL);
        assert_eq!(hit.headers.get("X-Cache"), Some("hit"));
        let tenant_req = Request::get(URL).with_header("X-Tenant", "dash-7");
        router.dispatch(&tenant_req);

        let doc = get(&router, "/debug/requests").json_body().unwrap();
        let requests = doc.get("requests").unwrap().as_array().unwrap();
        assert!(requests.len() >= 3);
        assert!(doc.get("recorded_total").unwrap().as_i64().unwrap() >= 3);

        // Filter: dispositions.
        let doc = get(&router, "/debug/requests?disposition=miss").json_body().unwrap();
        let misses = doc.get("requests").unwrap().as_array().unwrap();
        assert!(!misses.is_empty());
        for r in misses {
            assert_eq!(r.get("disposition").unwrap().as_str(), Some("miss"));
        }

        // Filter: tenant.
        let doc = get(&router, "/debug/requests?tenant=dash-7").json_body().unwrap();
        let tenant_rows = doc.get("requests").unwrap().as_array().unwrap();
        assert_eq!(tenant_rows.len(), 1);
        assert_eq!(tenant_rows[0].get("tenant").unwrap().as_str(), Some("dash-7"));
        assert_eq!(tenant_rows[0].get("disposition").unwrap().as_str(), Some("hit"));

        // Filter: limit, and the same fingerprint across dispositions.
        let doc = get(&router, "/debug/requests?limit=2").json_body().unwrap();
        assert_eq!(doc.get("requests").unwrap().as_array().unwrap().len(), 2);
        let doc = get(&router, "/debug/requests").json_body().unwrap();
        let all = doc.get("requests").unwrap().as_array().unwrap();
        let fps: Vec<&str> =
            all.iter().map(|r| r.get("fingerprint").unwrap().as_str().unwrap()).collect();
        assert!(fps.windows(2).all(|w| w[0] == w[1]), "one plan, one fingerprint: {fps:?}");

        // Malformed filters are 400s.
        assert_eq!(
            get(&router, "/debug/requests?disposition=sideways").status,
            Status::BAD_REQUEST
        );
        assert_eq!(get(&router, "/debug/requests?min_ms=soon").status, Status::BAD_REQUEST);

        // Drill-down by the trace id the response advertised.
        let tp = miss.headers.get("traceparent").unwrap();
        let trace_hex = tp.split('-').nth(1).unwrap();
        let drill = get(&router, &format!("/debug/requests/{trace_hex}"));
        assert_eq!(drill.status, Status::OK);
        let doc = drill.json_body().unwrap();
        assert_eq!(doc.get("trace_id").unwrap().as_str(), Some(trace_hex));
        let rows = doc.get("requests").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("disposition").unwrap().as_str(), Some("miss"));

        // And the same id filters the span ring.
        let spans = get(&router, &format!("/debug/trace?trace_id={trace_hex}"));
        let events = spans.json_body().unwrap();
        let events = events.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty(), "the request's spans are reachable from its record");
        for ev in events {
            assert_eq!(ev.get("args").unwrap().get("trace_id").unwrap().as_str(), Some(trace_hex));
        }

        assert_eq!(get(&router, "/debug/requests/not-hex").status, Status::BAD_REQUEST);
        assert_eq!(get(&router, "/debug/trace?trace_id=not-hex").status, Status::BAD_REQUEST);
        assert_eq!(
            get(&router, &format!("/debug/requests/{}", "f".repeat(32))).status,
            Status::NOT_FOUND
        );
    }

    #[test]
    fn debug_requests_record_shape_is_golden() {
        // Like the /debug/pipeline golden: consumers key into records by
        // path. This is the contract for an executed (miss) record —
        // update it deliberately, with the consumer, in one commit.
        let (_db, router) = service();
        get(&router, URL);
        let doc = get(&router, "/debug/requests?disposition=miss").json_body().unwrap();
        let record = &doc.get("requests").unwrap().as_array().unwrap()[0];
        let mut got = Vec::new();
        shape_of(record, "", &mut got);
        assert_eq!(
            got,
            [
                "seq:number",
                "trace_id:string",
                "span_id:string",
                "disposition:string",
                "status:number",
                "tenant:string",
                "url:string",
                "fingerprint:string",
                "explain:bool",
                "slow:bool",
                "truncated:bool",
                "bytes_out:number",
                "wall_ms.total:number",
                "wall_ms.parse:number",
                "wall_ms.plan:number",
                "wall_ms.cache:number",
                "wall_ms.admission:number",
                "wall_ms.execute:number",
                "wall_ms.encode:number",
                "vtime_ms.execute:number",
                "vtime_ms.encode:number",
                "vtime_ms.total:number",
                "cache.verdict:string",
                "cost.estimated.index_entries:number",
                "cost.estimated.series:number",
                "cost.estimated.blocks:number",
                "cost.estimated.blocks_summarized:number",
                "cost.estimated.points:number",
                "cost.estimated.bytes:number",
                "cost.estimated.blocks_cold:number",
                "cost.estimated.bytes_cold:number",
                "cost.estimated.shards_scanned:number",
                "cost.estimated.queries:number",
                "cost.actual.index_entries:number",
                "cost.actual.series:number",
                "cost.actual.blocks:number",
                "cost.actual.blocks_summarized:number",
                "cost.actual.points:number",
                "cost.actual.bytes:number",
                "cost.actual.blocks_cold:number",
                "cost.actual.bytes_cold:number",
                "cost.actual.shards_scanned:number",
                "cost.actual.queries:number",
                "cost.estimated_modelled_ms:number",
                "cost.actual_modelled_ms:number",
                "cost.ratio.seconds:number",
                "cost.ratio.points:number",
                "cost.ratio.bytes:number",
                "cost.ratio.blocks:number",
                "admission.decision:string",
                "admission.estimated_secs:number",
                "admission.tokens_before:null",
                "admission.tokens_after:null",
                "admission.rate:number",
                "admission.burst:number",
                "admission.retry_after_secs:number",
            ],
            "GET /debug/requests record shape drifted"
        );
        // The top-level document shape, one level deep.
        assert!(doc.get("capacity").unwrap().as_i64().unwrap() >= 16);
        assert!(doc.get("dropped_total").unwrap().as_i64().is_some());
        assert!(doc.get("slow_threshold_ms").unwrap().as_f64().is_some());
        assert!(doc.get("slow").unwrap().as_array().is_some());
    }

    #[test]
    fn slow_queries_pin_past_the_threshold() {
        let (db, _) = service();
        // The fixture's miss models ~21 ms of storage work — over a 5 ms
        // threshold on modelled time. A cache hit models nothing and
        // serves in well under 5 ms of wall: it must not pin.
        let config = ServiceConfig {
            qlog: QlogConfig { slow_ms: 5.0, ..QlogConfig::default() },
            ..ServiceConfig::default()
        };
        let router = router(Arc::clone(&db), NodeId::enumerate(2, 4), config);
        get(&router, URL);
        let hit = get(&router, URL);
        assert_eq!(hit.headers.get("X-Cache"), Some("hit"));
        let doc = get(&router, "/debug/requests").json_body().unwrap();
        let slow = doc.get("slow").unwrap().as_array().unwrap();
        assert_eq!(slow.len(), 1, "the miss pins; the hit does not");
        assert_eq!(slow[0].get("disposition").unwrap().as_str(), Some("miss"));
        assert_eq!(slow[0].get("slow").unwrap(), &Value::Bool(true));
        // The counter moved (global registry: at least this one).
        let metrics = get(&router, "/metrics");
        let text = String::from_utf8(metrics.body.to_vec()).unwrap();
        assert!(monster_obs::sample(&text, "monster_builder_slow_queries_total").unwrap() >= 1.0);
    }

    #[test]
    fn self_monitoring_endpoints_serve() {
        let (_db, router) = service();
        // Generate some activity first.
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z";
        assert_eq!(get(&router, url).status, Status::OK);
        let metrics = get(&router, "/metrics");
        assert_eq!(metrics.status, Status::OK);
        let text = String::from_utf8(metrics.body.to_vec()).unwrap();
        assert!(monster_obs::sample(&text, "monster_builder_requests_total").unwrap() >= 1.0);
        let trace = get(&router, "/debug/trace");
        assert_eq!(trace.status, Status::OK);
        let events = trace.json_body().unwrap();
        assert!(!events.get("traceEvents").unwrap().as_array().unwrap().is_empty());
        assert_eq!(get(&router, "/healthz").status, Status::OK);
        assert_eq!(get(&router, "/v1/health").status, Status::OK);
    }
}
