//! The Metrics Builder HTTP API service.
//!
//! Routes:
//!
//! * `GET /v1/nodes` — the monitored node inventory.
//! * `GET /v1/metrics?start=..&end=..[&interval=5m][&aggregation=max]`
//!   `[&compress=true]` — the assembled response document, with
//!   `X-Query-Processing-Ms`, `X-Cache`, `traceparent`, and
//!   `X-Freshness-Lag-Seconds` observability headers. Requests carrying a
//!   well-formed W3C `traceparent` header join that trace; malformed
//!   headers are ignored (a new root trace is started).
//! * `GET /metrics` — Prometheus/OpenMetrics text exposition of the
//!   pipeline's own metrics (self-monitoring), exemplars included.
//! * `GET /debug/trace` — recent vtime-stamped spans as chrome-trace
//!   JSON with trace/span/parent lineage in `args`.
//! * `GET /debug/pipeline` — the freshness SLO report: staleness
//!   percentiles, attainment, and multi-window burn rates.
//! * `GET /v1/alerts` — active and recently resolved alerts with severity
//!   counts (when the deployment runs an alert engine).
//! * `GET /v1/alerts/:id` — one alert's detail: rule, state, flap count,
//!   attributed job ids, and the exemplar trace id of the offending
//!   reading (join it against `GET /debug/trace`).
//! * `GET /v1/silences` — unexpired alert silences.

use crate::admission::{Admission, AdmissionConfig, AdmissionController};
use crate::cache::{ResponseCache, Validity, ValiditySnapshot};
use crate::exec::{execute, ExecMode};
use crate::flight::{FlightGroup, Join};
use crate::plan::{build_plan, estimate_plan_cost, BuilderRequest};
use monster_collector::SchemaVersion;
use monster_compress::Level;
use monster_http::{Method, Request, Response, Router, Status};
use monster_json::{jarr, jobj, Value};
use monster_tsdb::{Aggregation, Db};
use monster_util::{EpochSecs, NodeId};
use std::sync::Arc;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Storage schema the deployment writes (decides the plan shape).
    pub schema: SchemaVersion,
    /// Execution mode for planned queries.
    pub exec: ExecMode,
    /// Compression level for `compress=true` responses.
    pub level: Level,
    /// Response-cache capacity (entries); 0 disables caching.
    pub cache_entries: usize,
    /// Request coalescing (single-flight): concurrent identical requests
    /// share one execution. `false` is the benchmark baseline.
    pub coalesce: bool,
    /// Cost-based admission control (`AdmissionConfig { enabled: false,
    /// .. }` admits everything).
    pub admission: AdmissionConfig,
    /// Maintained roll-ups that coarse queries are rerouted to (see
    /// [`crate::rollup::reroute`]); typically
    /// [`crate::materializer::Materializer::routes`]. Empty disables
    /// rerouting.
    pub rollup_routes: Vec<crate::rollup::RollupRoute>,
    /// The deployment's alert engine, when alerting is on; backs
    /// `/v1/alerts` and `/v1/silences`. `None` serves 404s there.
    pub alerts: Option<Arc<monster_alert::AlertEngine>>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            schema: SchemaVersion::Optimized,
            exec: ExecMode::Concurrent { workers: 8 },
            level: Level::default(),
            cache_entries: 64,
            coalesce: true,
            admission: AdmissionConfig::default(),
            rollup_routes: Vec::new(),
            alerts: None,
        }
    }
}

fn bad_request(msg: &str) -> Response {
    Response::error(Status::BAD_REQUEST, msg)
}

/// Build the per-request response from a shared (cached/coalesced) one:
/// headers are cloned so the `X-Cache` disposition and trace headers can
/// be stamped per request, the body is reference-shared — zero byte
/// copies.
fn serve_shared(shared: &Response, cache_status: &str) -> Response {
    let mut resp = shared.clone();
    resp.headers.set("X-Cache", cache_status);
    resp
}

/// The tenant/client id admission buckets are keyed by. Dashboards and
/// batch consumers identify themselves with `X-Tenant`; anonymous traffic
/// shares one bucket.
fn tenant_of(req: &Request) -> &str {
    req.headers.get("X-Tenant").unwrap_or("anonymous")
}

/// RAII increment of the in-flight-queries gauge; panic-safe decrement.
struct InflightGuard(Arc<monster_obs::Gauge>);

impl InflightGuard {
    fn enter(gauge: &Arc<monster_obs::Gauge>) -> InflightGuard {
        gauge.add(1);
        InflightGuard(Arc::clone(gauge))
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// Stamp the trace/freshness headers every `/v1/metrics` response carries:
/// `traceparent` echoes the server-side span (joined to the caller's trace
/// when the request carried a well-formed `traceparent`), and
/// `X-Freshness-Lag-Seconds` reports the worst last-good-ingest lag across
/// the tracked fleet at response time.
fn stamp_trace_headers(mut resp: Response, ctx: monster_obs::TraceContext) -> Response {
    resp.headers.set("traceparent", ctx.to_traceparent());
    let lag = monster_obs::freshness().max_lag_secs().unwrap_or(0.0);
    resp.headers.set("X-Freshness-Lag-Seconds", format!("{lag:.3}"));
    resp
}

/// Parse `/v1/metrics` query parameters into a request. The `start` and
/// `end` parameters are required RFC 3339 timestamps; `interval` (default
/// `5m`) and `aggregation` (default `max`) are optional.
fn parse_metrics_request(req: &Request) -> Result<BuilderRequest, Response> {
    let start =
        req.query_param("start").ok_or_else(|| bad_request("missing required parameter: start"))?;
    let end =
        req.query_param("end").ok_or_else(|| bad_request("missing required parameter: end"))?;
    let start =
        EpochSecs::parse_rfc3339(start).map_err(|e| bad_request(&format!("bad start: {e}")))?;
    let end = EpochSecs::parse_rfc3339(end).map_err(|e| bad_request(&format!("bad end: {e}")))?;
    let interval = match req.query_param("interval") {
        Some(s) => monster_util::time::parse_interval(s)
            .map_err(|e| bad_request(&format!("bad interval: {e}")))?,
        None => 300,
    };
    let aggregation = match req.query_param("aggregation") {
        Some(s) => Aggregation::parse(s)
            .ok_or_else(|| bad_request(&format!("unknown aggregation: {s}")))?,
        None => Aggregation::Max,
    };
    let builder_req = BuilderRequest::new(start, end, interval, aggregation)
        .map_err(|e| bad_request(&e.to_string()))?;
    Ok(if req.query_param("compress") == Some("true") {
        builder_req.compressed()
    } else {
        builder_req
    })
}

/// Build the service router over `db` for the given node inventory.
pub fn router(db: Arc<Db>, nodes: Vec<NodeId>, config: ServiceConfig) -> Router {
    let cache = Arc::new(ResponseCache::new(config.cache_entries));
    let flights = Arc::new(FlightGroup::new());
    let admission = Arc::new(AdmissionController::new(config.admission));
    let coalesced = monster_obs::counter_help(
        "monster_builder_cache_coalesced_total",
        "Requests served by joining another request's in-flight execution.",
    );
    let inflight = monster_obs::gauge_help(
        "monster_builder_inflight_queries",
        "Metrics queries currently executing against storage.",
    );
    let node_list: Vec<Value> = nodes.iter().map(|n| Value::from(n.bmc_addr())).collect();
    let nodes_doc = jobj! { "nodes" => Value::Array(node_list) };

    let metrics_db = Arc::clone(&db);
    let metrics_nodes = nodes.clone();
    let metrics_config = config.clone();

    Router::new()
        .route(Method::Get, "/v1/nodes", move |_req, _params| Response::json(&nodes_doc))
        .route(Method::Get, "/v1/metrics", move |req, _params| {
            // Join the caller's trace when the request carries a
            // well-formed W3C traceparent; a malformed or absent header
            // starts a new root — never an error.
            let parent = req
                .headers
                .get("traceparent")
                .and_then(monster_obs::TraceContext::parse_traceparent);
            let mut span = match parent {
                Some(parent) => monster_obs::Span::child_of("builder.api_request", parent),
                None => monster_obs::Span::root("builder.api_request"),
            };
            let ctx = span.context();
            // Install the context so the execute/query/lock spans and
            // exemplars underneath this request join its trace.
            let _trace_guard = monster_obs::trace::set_current(ctx);
            let key = format!("{}?{}", req.path, req.query);

            // Layer 1: the result cache. Positive entries validate their
            // watermark snapshot; negative entries (deterministic 400s)
            // are data-independent and always valid.
            if let Some(shared) = cache.get(&key, &metrics_db) {
                span.set_attr("cache", "hit");
                span.finish();
                return stamp_trace_headers(serve_shared(&shared, "hit"), ctx);
            }
            let builder_req = match parse_metrics_request(req) {
                Ok(r) => r,
                Err(resp) => {
                    // A parse rejection depends only on the URL: cache it
                    // so malformed dashboards don't re-parse forever.
                    let shared = cache.put(&key, Validity::Always, resp);
                    span.set_attr("outcome", "bad_request");
                    span.finish();
                    return stamp_trace_headers(serve_shared(&shared, "miss"), ctx);
                }
            };

            // Layer 2: single-flight. The first identical request leads
            // and executes; the rest block and share its response.
            let leader = if metrics_config.coalesce {
                match flights.join(&key) {
                    Join::Follower(Some(shared)) => {
                        coalesced.inc();
                        span.set_attr("cache", "coalesced");
                        span.finish();
                        return stamp_trace_headers(serve_shared(&shared, "coalesced"), ctx);
                    }
                    // The leader failed: execute directly, unshared.
                    Join::Follower(None) => None,
                    Join::Leader(l) => Some(l),
                }
            } else {
                None
            };

            let mut plan = build_plan(metrics_config.schema, &metrics_nodes, &builder_req);
            crate::rollup::reroute(&mut plan, &metrics_config.rollup_routes);

            // Layer 3: cost-based admission, leaders only — a coalesced
            // burst debits one token, not one per request. The plan is
            // priced without executing anything.
            let est = estimate_plan_cost(&metrics_db, &plan);
            let est_secs = metrics_db.simulate_elapsed(&est).as_secs_f64();
            match admission.admit(tenant_of(req), est_secs) {
                Admission::Admitted { .. } => {}
                Admission::Rejected { retry_after_secs, reason } => {
                    let mut resp = Response::error(
                        Status::TOO_MANY_REQUESTS,
                        &format!(
                            "admission control rejected this query ({reason}): \
                             estimated cost {est_secs:.3}s modelled; retry later"
                        ),
                    );
                    resp.headers.set("Retry-After", retry_after_secs.to_string());
                    let shared = Arc::new(resp);
                    // Followers share the 429 (they are the same query),
                    // but it is never cached: the budget refills.
                    if let Some(l) = leader {
                        l.complete(Some(Arc::clone(&shared)));
                    }
                    span.set_attr("outcome", "admission_rejected");
                    span.finish();
                    return stamp_trace_headers(serve_shared(&shared, "miss"), ctx);
                }
            }

            // Snapshot validity *before* executing: a write racing the
            // scan can then only invalidate the entry spuriously, never
            // leave a stale one validating.
            let validity = ValiditySnapshot::capture(
                &metrics_db,
                plan.iter().map(|pq| pq.query.measurement.as_str()),
                builder_req.end.as_secs(),
            );

            let guard = InflightGuard::enter(&inflight);
            let outcome = match execute(&metrics_db, &plan, metrics_config.exec) {
                Ok(o) => o,
                Err(e) => {
                    drop(guard);
                    // Dropping the leader (if any) completes the flight
                    // with None; followers execute for themselves.
                    drop(leader);
                    span.set_attr("outcome", "error");
                    span.finish();
                    return stamp_trace_headers(
                        Response::error(
                            Status::INTERNAL_ERROR,
                            &format!("query execution failed: {e}"),
                        ),
                        ctx,
                    );
                }
            };
            drop(guard);
            let mut resp = Response::json(&outcome.document);
            if builder_req.compress {
                resp = resp.compressed(metrics_config.level);
            }
            resp.headers.set(
                "X-Query-Processing-Ms",
                format!("{:.3}", outcome.query_processing_time().as_millis_f64()),
            );
            span.set_attr("cache", "miss");
            monster_obs::histo_help(
                "monster_builder_request_seconds",
                "End-to-end simulated latency of /v1/metrics requests.",
            )
            .observe_vdur_traced(outcome.query_processing_time(), Some(ctx));
            span.finish_after(outcome.query_processing_time());
            let shared = cache.put(&key, Validity::Watermarks(validity), resp);
            if let Some(l) = leader {
                l.complete(Some(Arc::clone(&shared)));
            }
            stamp_trace_headers(serve_shared(&shared, "miss"), ctx)
        })
        .route(Method::Get, "/metrics", |_req, _params| {
            Response::bytes(
                monster_obs::global().text_exposition().into_bytes(),
                "text/plain; version=0.0.4",
            )
        })
        .route(Method::Get, "/debug/trace", |_req, _params| {
            Response::json(&monster_obs::global().trace_json())
        })
        .route(Method::Get, "/debug/pipeline", |_req, _params| {
            Response::json(&monster_obs::freshness().report())
        })
        .route(Method::Get, "/v1/alerts", {
            let engine = config.alerts.clone();
            move |_req, _params| match &engine {
                Some(e) => Response::json(&e.alerts_json()),
                None => Response::error(Status::NOT_FOUND, "alerting is not enabled"),
            }
        })
        .route(Method::Get, "/v1/alerts/:id", {
            let engine = config.alerts.clone();
            move |_req, params| {
                let Some(engine) = &engine else {
                    return Response::error(Status::NOT_FOUND, "alerting is not enabled");
                };
                let Some(id) = params.get("id").and_then(|s| s.parse::<u64>().ok()) else {
                    return bad_request("alert id must be an integer");
                };
                match engine.alert(id) {
                    Some(alert) => Response::json(&alert.to_json()),
                    None => Response::error(Status::NOT_FOUND, &format!("no alert {id}")),
                }
            }
        })
        .route(Method::Get, "/v1/silences", {
            let engine = config.alerts.clone();
            move |_req, _params| match &engine {
                Some(e) => Response::json(&e.silences_json()),
                None => Response::error(Status::NOT_FOUND, "alerting is not enabled"),
            }
        })
        .route(Method::Get, "/healthz", |_req, _params| {
            Response::json(&jobj! { "status" => "ok", "checks" => jarr!["registry", "db"] })
        })
        .route(Method::Get, "/v1/health", |_req, _params| {
            Response::json(&jobj! { "status" => "ok", "checks" => jarr!["registry", "db"] })
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_tsdb::{DataPoint, DbConfig};

    fn service() -> (Arc<Db>, Router) {
        let db = Arc::new(Db::new(DbConfig::default()));
        let ids = NodeId::enumerate(2, 4);
        let mut batch = Vec::new();
        for i in 0..60i64 {
            for &n in &ids {
                batch.push(
                    DataPoint::new("Power", EpochSecs::new(i * 60))
                        .tag("NodeId", n.bmc_addr())
                        .tag("Label", "NodePower")
                        .field_f64("Reading", 250.0 + i as f64),
                );
            }
        }
        db.write_batch(&batch).unwrap();
        let router = router(Arc::clone(&db), ids, ServiceConfig::default());
        (db, router)
    }

    fn get(router: &Router, path: &str) -> Response {
        router.dispatch(&Request::get(path))
    }

    #[test]
    fn nodes_endpoint_lists_inventory() {
        let (_db, router) = service();
        let resp = get(&router, "/v1/nodes");
        assert_eq!(resp.status, Status::OK);
        let v = resp.json_body().unwrap();
        assert_eq!(v.get("nodes").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn metrics_endpoint_validates_parameters() {
        let (_db, router) = service();
        assert_eq!(get(&router, "/v1/metrics").status, Status::BAD_REQUEST);
        assert_eq!(
            get(&router, "/v1/metrics?start=bogus&end=2020-01-01T01:00:00Z").status,
            Status::BAD_REQUEST
        );
        assert_eq!(
            get(
                &router,
                "/v1/metrics?start=2020-01-01T00:00:00Z&end=2020-01-01T01:00:00Z&aggregation=median"
            )
            .status,
            Status::BAD_REQUEST
        );
        // End before start.
        assert_eq!(
            get(&router, "/v1/metrics?start=2020-01-01T01:00:00Z&end=2020-01-01T00:00:00Z").status,
            Status::BAD_REQUEST
        );
    }

    #[test]
    fn metrics_endpoint_serves_documents_and_headers() {
        let (_db, router) = service();
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";
        let resp = get(&router, url);
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.headers.get("X-Cache"), Some("miss"));
        assert!(resp.headers.get("X-Query-Processing-Ms").is_some());
        let doc = resp.json_body().unwrap();
        assert!(doc.get("10.101.1.1").unwrap().get("power").is_some());
        // Second identical request hits the cache.
        let again = get(&router, url);
        assert_eq!(again.headers.get("X-Cache"), Some("hit"));
        assert_eq!(again.json_body().unwrap(), doc);
    }

    #[test]
    fn rollup_routed_service_serves_identical_documents() {
        let db = Arc::new(Db::new(DbConfig::default()));
        let ids = NodeId::enumerate(2, 4);
        let mut batch = Vec::new();
        for i in 0..60i64 {
            for &n in &ids {
                batch.push(
                    DataPoint::new("Power", EpochSecs::new(i * 60))
                        .tag("NodeId", n.bmc_addr())
                        .tag("Label", "NodePower")
                        .field_f64("Reading", 250.0 + i as f64),
                );
            }
        }
        db.write_batch(&batch).unwrap();
        let mut m = crate::materializer::Materializer::standard(EpochSecs::new(0));
        assert!(m.run_once(&db, EpochSecs::new(3600)).unwrap() > 0);

        let raw = router(Arc::clone(&db), ids.clone(), ServiceConfig::default());
        let routed = router(
            Arc::clone(&db),
            ids,
            ServiceConfig { rollup_routes: m.routes(), ..ServiceConfig::default() },
        );
        // A 10-minute-interval max request is exactly the roll-up grain.
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=10m";
        let doc_raw = get(&raw, url).json_body().unwrap();
        let doc_routed = get(&routed, url).json_body().unwrap();
        assert_eq!(doc_raw, doc_routed);
        assert!(doc_routed.get("10.101.1.1").unwrap().get("power").is_some());
    }

    #[test]
    fn metrics_endpoint_trace_and_freshness_headers() {
        let (_db, router) = service();
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";

        // No traceparent: the response carries a fresh, well-formed one.
        let resp = get(&router, url);
        assert_eq!(resp.status, Status::OK);
        let tp = resp.headers.get("traceparent").expect("traceparent header");
        let ctx = monster_obs::TraceContext::parse_traceparent(tp).expect("well-formed");
        let lag = resp.headers.get("X-Freshness-Lag-Seconds").expect("freshness header");
        assert!(lag.parse::<f64>().unwrap() >= 0.0);

        // A valid inbound traceparent joins: same trace id, new span id.
        let inbound = monster_obs::TraceContext::root();
        let req = Request::get(url).with_header("traceparent", inbound.to_traceparent());
        let resp = router.dispatch(&req);
        let echoed =
            monster_obs::TraceContext::parse_traceparent(resp.headers.get("traceparent").unwrap())
                .unwrap();
        assert_eq!(echoed.trace, inbound.trace);
        assert_ne!(echoed.span, inbound.span);
        assert_ne!(echoed.trace, ctx.trace);
        // Cache hits are stamped too.
        assert_eq!(resp.headers.get("X-Cache"), Some("hit"));
        assert!(resp.headers.get("X-Freshness-Lag-Seconds").is_some());

        // Malformed traceparent: ignored, new root, still 200.
        let req = Request::get(url).with_header("traceparent", "zz-not-a-trace");
        let resp = router.dispatch(&req);
        assert_eq!(resp.status, Status::OK);
        let fresh =
            monster_obs::TraceContext::parse_traceparent(resp.headers.get("traceparent").unwrap())
                .unwrap();
        assert_ne!(fresh.trace, inbound.trace);

        // Error responses carry the headers as well.
        let bad = get(&router, "/v1/metrics");
        assert_eq!(bad.status, Status::BAD_REQUEST);
        assert!(bad.headers.get("traceparent").is_some());
    }

    #[test]
    fn closed_window_cache_survives_new_interval_writes() {
        // The tentpole behavior: under the old global-version cache, every
        // collection interval nuked every entry. With watermark validity a
        // closed historical window stays served from cache while new
        // intervals land — and a backfill still invalidates it.
        let (db, router) = service(); // data at ts 0..3540
                                      // Close the window: the watermark must reach past `end` (3600),
                                      // otherwise a later in-order point could still land inside it.
        db.write(
            DataPoint::new("Power", EpochSecs::new(3600))
                .tag("NodeId", "10.101.1.1")
                .tag("Label", "NodePower")
                .field_f64("Reading", 260.0),
        )
        .unwrap();
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";
        assert_eq!(get(&router, url).headers.get("X-Cache"), Some("miss"));

        // A new collection interval arrives above the queried window.
        db.write(
            DataPoint::new("Power", EpochSecs::new(7200))
                .tag("NodeId", "10.101.1.1")
                .tag("Label", "NodePower")
                .field_f64("Reading", 300.0),
        )
        .unwrap();
        let resp = get(&router, url);
        assert_eq!(
            resp.headers.get("X-Cache"),
            Some("hit"),
            "closed window must survive in-order appends"
        );

        // A backfill inside the window rewrites history: must invalidate.
        db.write(
            DataPoint::new("Power", EpochSecs::new(600))
                .tag("NodeId", "10.101.1.1")
                .tag("Label", "NodePower")
                .field_f64("Reading", 999.0),
        )
        .unwrap();
        let resp = get(&router, url);
        assert_eq!(resp.headers.get("X-Cache"), Some("miss"), "backfill must invalidate");
        let doc = resp.json_body().unwrap();
        // And the re-executed document sees the backfilled reading.
        let text = doc.to_string_compact();
        assert!(text.contains("999"), "re-execution must observe the backfill");
    }

    #[test]
    fn admission_rejects_expensive_queries_with_retry_after() {
        let db = Arc::new(Db::new(DbConfig::default()));
        let ids = NodeId::enumerate(2, 4);
        let mut batch = Vec::new();
        for i in 0..60i64 {
            for &n in &ids {
                batch.push(
                    DataPoint::new("Power", EpochSecs::new(i * 60))
                        .tag("NodeId", n.bmc_addr())
                        .tag("Label", "NodePower")
                        .field_f64("Reading", 250.0 + i as f64),
                );
            }
        }
        db.write_batch(&batch).unwrap();
        // Everything is "expensive" and nothing is affordable: the
        // admission layer must turn the query away before it executes.
        let config = ServiceConfig {
            admission: AdmissionConfig {
                enabled: true,
                cheap_secs: 0.0,
                reject_secs: 0.0,
                ..AdmissionConfig::default()
            },
            ..ServiceConfig::default()
        };
        let router = router(Arc::clone(&db), ids, config);
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";
        let resp = get(&router, url);
        assert_eq!(resp.status, Status::TOO_MANY_REQUESTS);
        let retry: u64 =
            resp.headers.get("Retry-After").expect("Retry-After header").parse().unwrap();
        assert!(retry >= 1);
        assert!(resp.headers.get("traceparent").is_some(), "429s carry trace headers too");
        // Rejections are not cached: the next attempt is re-evaluated.
        assert_eq!(get(&router, url).status, Status::TOO_MANY_REQUESTS);
    }

    #[test]
    fn repeated_bad_requests_hit_the_negative_cache() {
        let (_db, router) = service();
        let url = "/v1/metrics?start=bogus&end=2020-01-01T01:00:00Z";
        let first = get(&router, url);
        assert_eq!(first.status, Status::BAD_REQUEST);
        assert_eq!(first.headers.get("X-Cache"), Some("miss"));
        let second = get(&router, url);
        assert_eq!(second.status, Status::BAD_REQUEST);
        assert_eq!(second.headers.get("X-Cache"), Some("hit"), "deterministic 400s are cached");
        assert_eq!(first.body, second.body);
    }

    #[test]
    fn concurrent_identical_requests_serve_identical_bytes() {
        // Coalescing plus caching under concurrency: every response for
        // the same URL must be byte-identical, whatever its disposition.
        let (_db, router) = service();
        let router = Arc::new(router);
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";
        let mut handles = Vec::new();
        for _ in 0..8 {
            let router = Arc::clone(&router);
            handles.push(std::thread::spawn(move || {
                let resp = router.dispatch(&Request::get(url));
                assert_eq!(resp.status, Status::OK);
                let disposition = resp.headers.get("X-Cache").unwrap().to_string();
                assert!(
                    ["hit", "miss", "coalesced"].contains(&disposition.as_str()),
                    "unexpected X-Cache: {disposition}"
                );
                resp.body.to_vec()
            }));
        }
        let bodies: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for b in &bodies[1..] {
            assert_eq!(b, &bodies[0]);
        }
    }

    #[test]
    fn pipeline_endpoint_reports_freshness() {
        let (_db, router) = service();
        monster_obs::freshness().record_ingest("10.101.9.9", "Thermal", 0.0);
        monster_obs::freshness().record_sweep(0.0);
        let resp = get(&router, "/debug/pipeline");
        assert_eq!(resp.status, Status::OK);
        let doc = resp.json_body().unwrap();
        assert!(doc.get("tracked_series").unwrap().as_i64().unwrap() >= 1);
        assert!(doc.get("staleness_secs").unwrap().get("p99").is_some());
        assert!(doc.get("attainment").unwrap().as_f64().is_some());
        assert!(doc.get("burn_rate").unwrap().get("fast").is_some());
    }

    /// Leaf paths of a JSON document with their types — the golden shape
    /// of `/debug/pipeline`. Values vary with whatever the process-global
    /// tracker has seen; the key tree and types must not.
    fn shape_of(v: &Value, prefix: &str, out: &mut Vec<String>) {
        match v {
            Value::Object(o) => {
                for (k, inner) in o.iter() {
                    let path =
                        if prefix.is_empty() { k.to_string() } else { format!("{prefix}.{k}") };
                    shape_of(inner, &path, out);
                }
            }
            Value::Array(_) => out.push(format!("{prefix}:array")),
            Value::Int(_) | Value::Float(_) => out.push(format!("{prefix}:number")),
            Value::Str(_) => out.push(format!("{prefix}:string")),
            Value::Bool(_) => out.push(format!("{prefix}:bool")),
            Value::Null => out.push(format!("{prefix}:null")),
        }
    }

    #[test]
    fn pipeline_endpoint_shape_is_golden() {
        // Dashboards and the chaos harness key into this document by
        // path; adding a field is fine everywhere *except* silently, and
        // renaming one breaks consumers. This golden list is the contract
        // — update it deliberately, in the same commit as the consumer.
        let (_db, router) = service();
        monster_obs::freshness().record_ingest("10.101.9.8", "Thermal", 0.0);
        monster_obs::freshness().record_sweep(0.0);
        let doc = get(&router, "/debug/pipeline").json_body().unwrap();
        let mut got = Vec::new();
        shape_of(&doc, "", &mut got);
        assert_eq!(
            got,
            [
                "tracked_series:number",
                "latest_sweep_epoch_secs:number",
                "slo.cadence_secs:number",
                "slo.fresh_within_secs:number",
                "slo.target:number",
                "staleness_secs.p50:number",
                "staleness_secs.p90:number",
                "staleness_secs.p99:number",
                "staleness_secs.max:number",
                "attainment:number",
                "error_budget_used:number",
                "burn_rate.fast_window_secs:number",
                "burn_rate.fast:number",
                "burn_rate.slow_window_secs:number",
                "burn_rate.slow:number",
            ],
            "GET /debug/pipeline shape drifted"
        );
    }

    #[test]
    fn self_monitoring_endpoints_serve() {
        let (_db, router) = service();
        // Generate some activity first.
        let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z";
        assert_eq!(get(&router, url).status, Status::OK);
        let metrics = get(&router, "/metrics");
        assert_eq!(metrics.status, Status::OK);
        let text = String::from_utf8(metrics.body.to_vec()).unwrap();
        assert!(monster_obs::sample(&text, "monster_builder_requests_total").unwrap() >= 1.0);
        let trace = get(&router, "/debug/trace");
        assert_eq!(trace.status, Status::OK);
        let events = trace.json_body().unwrap();
        assert!(!events.get("traceEvents").unwrap().as_array().unwrap().is_empty());
        assert_eq!(get(&router, "/healthz").status, Status::OK);
        assert_eq!(get(&router, "/v1/health").status, Status::OK);
    }
}
