//! Roll-up rerouting: answering coarse queries from continuous-query
//! outputs instead of raw data.
//!
//! The deployment maintains `ContinuousQuery` roll-ups (e.g. hourly max
//! power in `Power_1h`). A planned raw query can be served from a roll-up
//! **exactly** when its window is a multiple of the roll-up window and the
//! aggregation composes: TSDB `GROUP BY time` buckets are epoch-aligned,
//! so every coarse window is a union of complete roll-up windows
//! regardless of the query's start offset.
//!
//! # Which aggregations compose
//!
//! * `max`/`min` — max-of-max / min-of-min, exact.
//! * `first`/`last` — roll-up points carry their window-start timestamp,
//!   so the earliest (latest) stored point in a coarse window is the
//!   first (last) raw value in it, exact.
//! * `sum` — sum-of-sums; exact in value (bit-exact for integer-valued
//!   metrics, which all of MonSTer's counters are; for general floats the
//!   re-association can differ in the last ulp).
//! * `count` — the roll-up stores per-window counts, so the coarse count
//!   is the **sum** of the stored values: the reroute rewrites the
//!   aggregation to `sum`.
//! * `mean` — does **not** compose (mean of means weights windows
//!   equally regardless of how many raw points each held); never rerouted.

use crate::plan::PlannedQuery;
use monster_tsdb::Aggregation;

/// A maintained roll-up that requests may be rerouted to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupRoute {
    /// Source measurement of the roll-up.
    pub source: String,
    /// Source field.
    pub field: String,
    /// Target measurement holding the rolled points (field `Reading`).
    pub target: String,
    /// Aggregation the roll-up was materialized with.
    pub agg: Aggregation,
    /// Roll-up window in seconds.
    pub window_secs: i64,
}

impl RollupRoute {
    /// Whether `agg` queries compose exactly over roll-ups of itself (see
    /// the module docs for the per-aggregation argument).
    fn composes(agg: Aggregation) -> bool {
        matches!(
            agg,
            Aggregation::Max
                | Aggregation::Min
                | Aggregation::Sum
                | Aggregation::Count
                | Aggregation::First
                | Aggregation::Last
        )
    }

    fn applies(&self, q: &monster_tsdb::Query) -> bool {
        if q.measurement != self.source || q.field != self.field {
            return false;
        }
        if q.agg != Some(self.agg) || !Self::composes(self.agg) {
            return false;
        }
        match q.group_by {
            Some(g) => g >= self.window_secs && g % self.window_secs == 0,
            None => false,
        }
    }
}

/// Rewrite every plan query that a route can serve exactly. Queries no
/// route covers are left untouched.
pub fn reroute(plan: &mut [PlannedQuery], routes: &[RollupRoute]) {
    for planned in plan {
        for route in routes {
            if route.applies(&planned.query) {
                planned.query.measurement = route.target.clone();
                // Roll-up outputs always store their value as `Reading`.
                planned.query.field = "Reading".to_string();
                if route.agg == Aggregation::Count {
                    // The roll-up stored per-window counts; the coarse
                    // count is the sum of those stored values.
                    planned.query.agg = Some(Aggregation::Sum);
                }
                monster_obs::counter("monster_builder_rollup_reroutes_total").inc();
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plan, BuilderRequest};
    use monster_collector::SchemaVersion;
    use monster_util::{EpochSecs, NodeId};

    fn routes() -> Vec<RollupRoute> {
        vec![
            RollupRoute {
                source: "Power".into(),
                field: "Reading".into(),
                target: "Power_1h".into(),
                agg: Aggregation::Max,
                window_secs: 3600,
            },
            RollupRoute {
                source: "UGE".into(),
                field: "CPUUsage".into(),
                target: "UGECpu_1h".into(),
                agg: Aggregation::Max,
                window_secs: 3600,
            },
        ]
    }

    fn plan_with_window(window: i64, agg: Aggregation) -> Vec<PlannedQuery> {
        let nodes = NodeId::enumerate(1, 4);
        let req =
            BuilderRequest::new(EpochSecs::new(0), EpochSecs::new(86_400), window, agg).unwrap();
        build_plan(SchemaVersion::Optimized, &nodes, &req)
    }

    #[test]
    fn reroutes_multiples_of_the_rollup_window() {
        let mut plan = plan_with_window(7200, Aggregation::Max);
        reroute(&mut plan, &routes());
        let power = plan.iter().find(|p| p.section == "power").unwrap();
        assert_eq!(power.query.measurement, "Power_1h");
        assert_eq!(power.query.field, "Reading");
        let cpu = plan.iter().find(|p| p.section == "cpu_usage").unwrap();
        assert_eq!(cpu.query.measurement, "UGECpu_1h");
        assert_eq!(cpu.query.field, "Reading");
        // Memory has no route; the raw job-list query has no aggregation.
        let mem = plan.iter().find(|p| p.section == "memory").unwrap();
        assert_eq!(mem.query.measurement, "UGE");
        let jobs = plan.iter().find(|p| p.section == "jobs").unwrap();
        assert_eq!(jobs.query.measurement, "NodeJobs");
    }

    #[test]
    fn finer_windows_and_other_aggregations_stay_raw() {
        for (window, agg) in
            [(1800, Aggregation::Max), (3600, Aggregation::Mean), (5400, Aggregation::Max)]
        {
            let mut plan = plan_with_window(window, agg);
            reroute(&mut plan, &routes());
            let power = plan.iter().find(|p| p.section == "power").unwrap();
            assert_eq!(power.query.measurement, "Power", "window {window} agg {agg:?}");
        }
    }

    #[test]
    fn composing_aggregations_reroute_to_matching_rollups() {
        for agg in [Aggregation::Min, Aggregation::Sum, Aggregation::First, Aggregation::Last] {
            let routes = vec![RollupRoute {
                source: "Power".into(),
                field: "Reading".into(),
                target: "Power_1h".into(),
                agg,
                window_secs: 3600,
            }];
            let mut plan = plan_with_window(7200, agg);
            reroute(&mut plan, &routes);
            let power = plan.iter().find(|p| p.section == "power").unwrap();
            assert_eq!(power.query.measurement, "Power_1h", "agg {agg:?}");
            assert_eq!(power.query.agg, Some(agg), "agg {agg:?}");
        }
    }

    #[test]
    fn count_reroutes_as_sum_of_stored_counts() {
        let routes = vec![RollupRoute {
            source: "Power".into(),
            field: "Reading".into(),
            target: "PowerCount_1h".into(),
            agg: Aggregation::Count,
            window_secs: 3600,
        }];
        let mut plan = plan_with_window(7200, Aggregation::Count);
        reroute(&mut plan, &routes);
        let power = plan.iter().find(|p| p.section == "power").unwrap();
        assert_eq!(power.query.measurement, "PowerCount_1h");
        assert_eq!(power.query.agg, Some(Aggregation::Sum));
    }

    #[test]
    fn mean_never_reroutes_even_with_a_mean_rollup() {
        let routes = vec![RollupRoute {
            source: "Power".into(),
            field: "Reading".into(),
            target: "PowerMean_1h".into(),
            agg: Aggregation::Mean,
            window_secs: 3600,
        }];
        let mut plan = plan_with_window(7200, Aggregation::Mean);
        reroute(&mut plan, &routes);
        let power = plan.iter().find(|p| p.section == "power").unwrap();
        assert_eq!(power.query.measurement, "Power");
    }
}
