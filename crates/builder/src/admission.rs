//! Cost-based admission control for the query path.
//!
//! The TSDB's plan-time cost estimator ([`monster_tsdb::Db::estimate_cost`])
//! prices a query in modelled seconds *before* it executes. Admission
//! classifies on that price:
//!
//! * **cheap** (at or below [`AdmissionConfig::cheap_secs`]) — always
//!   admitted; dashboard sliding windows live here and must never queue
//!   behind accounting scans;
//! * **over budget** (above [`AdmissionConfig::reject_secs`]) — rejected
//!   outright with `429` + `Retry-After`; one request this size would blow
//!   the latency budget for everyone sharing the shards;
//! * **expensive but affordable** — debited against a per-tenant token
//!   bucket (tokens are modelled seconds, refilled at
//!   [`AdmissionConfig::tenant_rate`] per wall second up to
//!   [`AdmissionConfig::tenant_burst`]). A tenant hammering expensive
//!   queries exhausts *its own* bucket; everyone else's budget is
//!   untouched — that is the fair-share property.
//!
//! `Retry-After` is computed from the deficit and the refill rate, so a
//! compliant client that waits exactly that long will be admitted.
//!
//! The wall clock is injected (`with_clock`) so tests drive time
//! deterministically; the default reads a monotonic [`std::time::Instant`].

use crate::qlog::{AdmissionDecision, AdmissionSnapshot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Admission-control tuning. Plain data so it can ride in a service
/// config; thresholds are in *modelled* seconds (the same currency as
/// [`monster_tsdb::Db::simulate_elapsed`]).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Master switch; `false` admits everything.
    pub enabled: bool,
    /// Estimated cost at or below which a query is always admitted.
    pub cheap_secs: f64,
    /// Estimated cost above which a query is rejected outright.
    pub reject_secs: f64,
    /// Modelled seconds of expensive work a tenant earns per wall second.
    pub tenant_rate: f64,
    /// Token-bucket capacity per tenant (modelled seconds).
    pub tenant_burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            enabled: true,
            cheap_secs: 1.0,
            reject_secs: 30.0,
            tenant_rate: 2.0,
            tenant_burst: 20.0,
        }
    }
}

/// The verdict for one query.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// Run it. `expensive` records whether a bucket was debited.
    Admitted {
        /// `true` when the query cost tokens (above the cheap threshold).
        expensive: bool,
    },
    /// Turn it away with `429`.
    Rejected {
        /// Seconds after which a retry can succeed (the `Retry-After`
        /// header value).
        retry_after_secs: u64,
        /// Which rule fired: `"over_budget"` or `"tenant_budget"`.
        reason: &'static str,
    },
}

struct Bucket {
    tokens: f64,
    last_refill: f64,
}

type Clock = Box<dyn Fn() -> f64 + Send + Sync>;

/// Per-router admission state: the config plus one token bucket per
/// tenant, created on first sight with a full burst.
pub struct AdmissionController {
    config: AdmissionConfig,
    clock: Clock,
    buckets: Mutex<HashMap<String, Bucket>>,
    rejected: Arc<monster_obs::Counter>,
}

impl AdmissionController {
    /// A controller on the real (monotonic) clock.
    pub fn new(config: AdmissionConfig) -> AdmissionController {
        let epoch = Instant::now();
        AdmissionController::with_clock(config, Box::new(move || epoch.elapsed().as_secs_f64()))
    }

    /// A controller with an injected wall clock (seconds; tests advance it
    /// manually for deterministic refill arithmetic).
    pub fn with_clock(config: AdmissionConfig, clock: Clock) -> AdmissionController {
        AdmissionController {
            config,
            clock,
            buckets: Mutex::new(HashMap::new()),
            rejected: monster_obs::counter_help(
                "monster_builder_cache_admission_rejected_total",
                "Queries turned away by cost-based admission control (429).",
            ),
        }
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Decide whether `tenant` may run a query estimated at
    /// `modelled_secs`.
    pub fn admit(&self, tenant: &str, modelled_secs: f64) -> Admission {
        self.admit_observed(tenant, modelled_secs).0
    }

    /// [`AdmissionController::admit`] plus the token-bucket arithmetic
    /// behind the decision, for the flight recorder's `?explain=true`
    /// view. Token fields are `NaN` when no bucket was consulted.
    pub fn admit_observed(
        &self,
        tenant: &str,
        modelled_secs: f64,
    ) -> (Admission, AdmissionSnapshot) {
        let cfg = &self.config;
        let mut snap = AdmissionSnapshot {
            decision: AdmissionDecision::Disabled,
            estimated_secs: modelled_secs,
            tokens_before: f64::NAN,
            tokens_after: f64::NAN,
            rate: cfg.tenant_rate,
            burst: cfg.tenant_burst,
            retry_after_secs: 0,
        };
        if !cfg.enabled || modelled_secs <= cfg.cheap_secs {
            if cfg.enabled {
                snap.decision = AdmissionDecision::Cheap;
            }
            return (Admission::Admitted { expensive: false }, snap);
        }
        if modelled_secs > cfg.reject_secs {
            self.rejected.inc();
            // No bucket will ever cover this; tell the client when enough
            // budget *would* have accrued, bounded to something humane.
            let retry = ((modelled_secs / cfg.tenant_rate.max(1e-9)).ceil() as u64).clamp(1, 300);
            snap.decision = AdmissionDecision::RejectedOverBudget;
            snap.retry_after_secs = retry;
            return (Admission::Rejected { retry_after_secs: retry, reason: "over_budget" }, snap);
        }
        let now = (self.clock)();
        let mut buckets = self.buckets.lock();
        let bucket = buckets
            .entry(tenant.to_string())
            .or_insert(Bucket { tokens: cfg.tenant_burst, last_refill: now });
        bucket.tokens = (bucket.tokens + (now - bucket.last_refill).max(0.0) * cfg.tenant_rate)
            .min(cfg.tenant_burst);
        bucket.last_refill = now;
        snap.tokens_before = bucket.tokens;
        if bucket.tokens >= modelled_secs {
            bucket.tokens -= modelled_secs;
            snap.decision = AdmissionDecision::Charged;
            snap.tokens_after = bucket.tokens;
            return (Admission::Admitted { expensive: true }, snap);
        }
        let deficit = modelled_secs - bucket.tokens;
        snap.tokens_after = bucket.tokens;
        drop(buckets);
        self.rejected.inc();
        let retry = ((deficit / cfg.tenant_rate.max(1e-9)).ceil() as u64).max(1);
        snap.decision = AdmissionDecision::RejectedTenantBudget;
        snap.retry_after_secs = retry;
        (Admission::Rejected { retry_after_secs: retry, reason: "tenant_budget" }, snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A controller whose clock is an atomic number of milliseconds.
    fn manual() -> (Arc<AtomicU64>, AdmissionController) {
        let ms = Arc::new(AtomicU64::new(0));
        let handle = Arc::clone(&ms);
        let cfg = AdmissionConfig {
            enabled: true,
            cheap_secs: 0.1,
            reject_secs: 10.0,
            tenant_rate: 1.0,
            tenant_burst: 4.0,
        };
        let ctl = AdmissionController::with_clock(
            cfg,
            Box::new(move || handle.load(Ordering::SeqCst) as f64 / 1000.0),
        );
        (ms, ctl)
    }

    #[test]
    fn cheap_queries_always_admitted() {
        let (_, ctl) = manual();
        for _ in 0..1000 {
            assert_eq!(ctl.admit("t", 0.05), Admission::Admitted { expensive: false });
        }
    }

    #[test]
    fn over_budget_rejected_outright() {
        let (_, ctl) = manual();
        match ctl.admit("t", 50.0) {
            Admission::Rejected { reason: "over_budget", retry_after_secs } => {
                assert!(retry_after_secs >= 1);
            }
            other => panic!("expected over_budget rejection, got {other:?}"),
        }
    }

    #[test]
    fn bucket_drains_then_refills_per_retry_after() {
        let (ms, ctl) = manual();
        // Burst 4.0, each query 2.0: two admitted, third rejected.
        assert_eq!(ctl.admit("t", 2.0), Admission::Admitted { expensive: true });
        assert_eq!(ctl.admit("t", 2.0), Admission::Admitted { expensive: true });
        let retry = match ctl.admit("t", 2.0) {
            Admission::Rejected { retry_after_secs, reason: "tenant_budget" } => retry_after_secs,
            other => panic!("expected tenant_budget rejection, got {other:?}"),
        };
        // Waiting exactly Retry-After must succeed (rate 1.0/s).
        ms.fetch_add(retry * 1000, Ordering::SeqCst);
        assert_eq!(ctl.admit("t", 2.0), Admission::Admitted { expensive: true });
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let (_, ctl) = manual();
        // "greedy" drains its bucket dry…
        assert_eq!(ctl.admit("greedy", 4.0), Admission::Admitted { expensive: true });
        assert!(matches!(ctl.admit("greedy", 4.0), Admission::Rejected { .. }));
        // …while "polite" is untouched.
        assert_eq!(ctl.admit("polite", 4.0), Admission::Admitted { expensive: true });
    }

    #[test]
    fn observed_snapshot_exposes_bucket_math() {
        let (_, ctl) = manual();
        // Cheap: no bucket consulted.
        let (_, snap) = ctl.admit_observed("t", 0.05);
        assert_eq!(snap.decision, AdmissionDecision::Cheap);
        assert!(snap.tokens_before.is_nan());

        // Charged: burst 4.0 debited by 2.0.
        let (adm, snap) = ctl.admit_observed("t", 2.0);
        assert_eq!(adm, Admission::Admitted { expensive: true });
        assert_eq!(snap.decision, AdmissionDecision::Charged);
        assert_eq!(snap.tokens_before, 4.0);
        assert_eq!(snap.tokens_after, 2.0);
        assert_eq!(snap.rate, 1.0);
        assert_eq!(snap.burst, 4.0);

        // Tenant-budget rejection: tokens untouched, retry covers the
        // deficit at the configured rate.
        ctl.admit("t", 2.0);
        let (adm, snap) = ctl.admit_observed("t", 2.0);
        let retry = match adm {
            Admission::Rejected { retry_after_secs, .. } => retry_after_secs,
            other => panic!("expected rejection, got {other:?}"),
        };
        assert_eq!(snap.decision, AdmissionDecision::RejectedTenantBudget);
        assert_eq!(snap.tokens_before, snap.tokens_after);
        assert_eq!(snap.retry_after_secs, retry);

        // Over-budget: rejected before any bucket exists.
        let (_, snap) = ctl.admit_observed("fresh", 50.0);
        assert_eq!(snap.decision, AdmissionDecision::RejectedOverBudget);
        assert!(snap.tokens_before.is_nan());
        assert!(snap.retry_after_secs >= 1);
    }

    #[test]
    fn disabled_controller_admits_everything() {
        let ctl = AdmissionController::new(AdmissionConfig {
            enabled: false,
            ..AdmissionConfig::default()
        });
        assert_eq!(ctl.admit("t", 1e9), Admission::Admitted { expensive: false });
    }
}
