//! Continuous roll-up materializer: the background pass that keeps the
//! roll-up measurements fresh.
//!
//! [`crate::rollup::reroute`] can only reroute coarse queries if someone
//! actually maintains the roll-up measurements. In production MonSTer
//! that someone is InfluxDB's continuous queries; here it is a
//! [`Materializer`] the deployment drives from its housekeeping loop
//! (alongside retention and compaction): each [`Materializer::run_once`]
//! rolls every complete window since the last pass into the target
//! measurements, and [`Materializer::routes`] hands the service the
//! matching [`RollupRoute`]s so `/v1/metrics` requests with coarse
//! windows never touch the raw columns at all.

use crate::rollup::RollupRoute;
use monster_tsdb::{Aggregation, ContinuousQuery, Db};
use monster_util::{EpochSecs, Result};

/// One roll-up the materializer maintains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupSpec {
    /// Source measurement.
    pub source: String,
    /// Source field.
    pub field: String,
    /// Target measurement (stores its value as `Reading`).
    pub target: String,
    /// Aggregation per window.
    pub agg: Aggregation,
    /// Window length in seconds.
    pub window_secs: i64,
}

impl RollupSpec {
    /// Convenience constructor.
    pub fn new(
        source: impl Into<String>,
        field: impl Into<String>,
        target: impl Into<String>,
        agg: Aggregation,
        window_secs: i64,
    ) -> RollupSpec {
        RollupSpec {
            source: source.into(),
            field: field.into(),
            target: target.into(),
            agg,
            window_secs,
        }
    }
}

/// Drives a set of continuous queries and exposes the reroute table that
/// matches what they maintain.
#[derive(Debug, Clone)]
pub struct Materializer {
    queries: Vec<ContinuousQuery>,
    routes: Vec<RollupRoute>,
}

impl Materializer {
    /// Build a materializer for `specs`, starting from `start` (nothing
    /// before it is rolled up).
    pub fn new(specs: &[RollupSpec], start: EpochSecs) -> Result<Materializer> {
        let mut queries = Vec::with_capacity(specs.len());
        let mut routes = Vec::with_capacity(specs.len());
        for s in specs {
            queries.push(ContinuousQuery::new(
                &s.source,
                &s.field,
                &s.target,
                s.agg,
                s.window_secs,
                start,
            )?);
            routes.push(RollupRoute {
                source: s.source.clone(),
                field: s.field.clone(),
                target: s.target.clone(),
                agg: s.agg,
                window_secs: s.window_secs,
            });
        }
        Ok(Materializer { queries, routes })
    }

    /// The deployment's default set: 10-minute `max` roll-ups of every
    /// windowed section the optimized builder plan queries (power,
    /// thermal, CPU, memory). `max` is the builder's default aggregation
    /// and composes exactly, so dashboard requests at 10-minute-multiple
    /// intervals are fully served from roll-ups.
    pub fn standard(start: EpochSecs) -> Materializer {
        let specs = [
            RollupSpec::new("Power", "Reading", "Power_10m", Aggregation::Max, 600),
            RollupSpec::new("Thermal", "Reading", "Thermal_10m", Aggregation::Max, 600),
            RollupSpec::new("UGE", "CPUUsage", "UGECpu_10m", Aggregation::Max, 600),
            RollupSpec::new("UGE", "MemUsed", "UGEMem_10m", Aggregation::Max, 600),
        ];
        Materializer::new(&specs, start).expect("standard specs are valid")
    }

    /// The reroute table matching the maintained roll-ups (hand this to
    /// [`crate::service::ServiceConfig::rollup_routes`]).
    pub fn routes(&self) -> Vec<RollupRoute> {
        self.routes.clone()
    }

    /// Roll every complete window between each query's watermark and
    /// `now` into its target measurement. Returns the number of
    /// downsampled points written across all roll-ups.
    pub fn run_once(&mut self, db: &Db, now: EpochSecs) -> Result<usize> {
        let mut written = 0usize;
        for cq in &mut self.queries {
            written += cq.run(db, now)?;
        }
        monster_obs::counter("monster_builder_rollup_runs_total").inc();
        monster_obs::counter("monster_builder_rollup_points_total").add(written as u64);
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plan, BuilderRequest};
    use crate::rollup::reroute;
    use monster_collector::SchemaVersion;
    use monster_tsdb::{DataPoint, DbConfig, Query};
    use monster_util::NodeId;

    /// One node, one day of 60 s samples for every planned section.
    fn seeded() -> Db {
        let db = Db::new(DbConfig::default());
        let node = NodeId::enumerate(1, 4)[0];
        let mut batch = Vec::new();
        for i in 0..1440i64 {
            let t = EpochSecs::new(i * 60);
            batch.push(
                DataPoint::new("Power", t)
                    .tag("NodeId", node.bmc_addr())
                    .tag("Label", "NodePower")
                    .field_f64("Reading", 250.0 + (i % 37) as f64),
            );
            batch.push(
                DataPoint::new("Thermal", t)
                    .tag("NodeId", node.bmc_addr())
                    .tag("Label", "CPU1Temp")
                    .field_f64("Reading", 40.0 + (i % 11) as f64),
            );
            batch.push(
                DataPoint::new("UGE", t)
                    .tag("NodeId", node.bmc_addr())
                    .field_f64("CPUUsage", (i % 100) as f64)
                    .field_f64("MemUsed", 1024.0 + i as f64),
            );
        }
        db.write_batch(&batch).unwrap();
        db
    }

    #[test]
    fn run_once_is_incremental_and_counts_points() {
        let db = seeded();
        let mut m = Materializer::standard(EpochSecs::new(0));
        // 1440 minutes = 144 complete 10-minute windows × 5 columns
        // (power, thermal, cpu, mem — UGE carries two fields on one
        // series, each its own roll-up).
        let w1 = m.run_once(&db, EpochSecs::new(86_400)).unwrap();
        assert_eq!(w1, 144 * 4);
        // Nothing new: no work.
        assert_eq!(m.run_once(&db, EpochSecs::new(86_400)).unwrap(), 0);
    }

    #[test]
    fn rerouted_plan_never_touches_raw_columns_and_answers_identically() {
        let db = seeded();
        let mut m = Materializer::standard(EpochSecs::new(0));
        m.run_once(&db, EpochSecs::new(86_400)).unwrap();

        let nodes = NodeId::enumerate(1, 4);
        let req =
            BuilderRequest::new(EpochSecs::new(0), EpochSecs::new(86_400), 3600, Aggregation::Max)
                .unwrap();
        let raw_plan = build_plan(SchemaVersion::Optimized, &nodes, &req);
        let mut routed_plan = raw_plan.clone();
        reroute(&mut routed_plan, &m.routes());

        for (raw, routed) in raw_plan.iter().zip(&routed_plan) {
            if raw.query.agg.is_none() {
                continue; // the job-list query has no roll-up
            }
            // Every windowed section moved off its raw measurement...
            assert_ne!(
                routed.query.measurement, raw.query.measurement,
                "section {} still reads raw",
                raw.section
            );
            // ...and answers identically from far fewer points.
            let (rs_raw, c_raw) = db.query(&raw.query).unwrap();
            let (rs_routed, c_routed) = db.query(&routed.query).unwrap();
            assert_eq!(rs_raw.series.len(), rs_routed.series.len());
            for (a, b) in rs_raw.series.iter().zip(&rs_routed.series) {
                assert_eq!(a.points, b.points, "section {}", raw.section);
            }
            assert!(
                c_routed.points * 5 < c_raw.points,
                "section {}: {} vs {}",
                raw.section,
                c_routed.points,
                c_raw.points
            );
        }
    }

    #[test]
    fn watermark_only_advances_over_complete_windows() {
        let db = seeded();
        let specs = [RollupSpec::new("Power", "Reading", "Power_10m", Aggregation::Max, 600)];
        let mut m = Materializer::new(&specs, EpochSecs::new(0)).unwrap();
        // 25 minutes in: two complete windows.
        assert_eq!(m.run_once(&db, EpochSecs::new(1500)).unwrap(), 2);
        let q = Query::select("Power_10m", "Reading", EpochSecs::new(0), EpochSecs::new(86_400));
        let (rs, _) = db.query(&q).unwrap();
        assert_eq!(rs.point_count(), 2);
    }
}
