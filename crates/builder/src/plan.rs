//! Request validation and query planning.
//!
//! A [`BuilderRequest`] describes what an API consumer wants (a time
//! range, a window size, an aggregation); [`build_plan`] expands it into
//! the per-node, per-measurement [`PlannedQuery`] list that §II-C's
//! Metrics Builder issues against the TSDB. The plan shape depends on the
//! storage schema: the previous generation needs one query per individual
//! sensor measurement (~17 per node), the optimized schema consolidates
//! them into 5.

use monster_collector::SchemaVersion;
use monster_tsdb::{Aggregation, Query, QueryCost};
use monster_util::EpochSecs;
use monster_util::{Error, NodeId, Result};

/// A validated Metrics Builder API request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuilderRequest {
    /// Range start (inclusive).
    pub start: EpochSecs,
    /// Range end (exclusive).
    pub end: EpochSecs,
    /// Aggregation window in seconds (`GROUP BY time`).
    pub interval_secs: i64,
    /// Aggregation applied per window.
    pub aggregation: Aggregation,
    /// Whether the encoded response should be compressed (§IV-B4).
    pub compress: bool,
}

impl BuilderRequest {
    /// Validate and build a request. Fails on an empty range or a
    /// non-positive interval.
    pub fn new(
        start: EpochSecs,
        end: EpochSecs,
        interval_secs: i64,
        aggregation: Aggregation,
    ) -> Result<BuilderRequest> {
        if end <= start {
            return Err(Error::invalid(format!(
                "empty time range: start {} >= end {}",
                start.as_secs(),
                end.as_secs()
            )));
        }
        if interval_secs <= 0 {
            return Err(Error::invalid(format!("non-positive interval {interval_secs}")));
        }
        Ok(BuilderRequest { start, end, interval_secs, aggregation, compress: false })
    }

    /// Request compressed response encoding.
    pub fn compressed(mut self) -> BuilderRequest {
        self.compress = true;
        self
    }
}

/// Which pipeline source a planned query draws on — the paper's Fig. 11
/// breakdown buckets time by these groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryGroup {
    /// Out-of-band BMC telemetry (power, thermal, fans, voltages).
    Bmc,
    /// In-band UGE resource reports (CPU, memory, swap).
    Uge,
    /// Job accounting (per-node job lists).
    Jobs,
}

impl QueryGroup {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryGroup::Bmc => "BMC",
            QueryGroup::Uge => "UGE",
            QueryGroup::Jobs => "Jobs",
        }
    }
}

/// One query of a builder plan, plus where its results land in the
/// response document.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Source group (for the Fig. 11 time breakdown).
    pub group: QueryGroup,
    /// The node this query serves.
    pub node: NodeId,
    /// Key under the node's document object where results are placed.
    pub section: String,
    /// `None` → the section is a flat array of points; `Some(tag)` → an
    /// object keyed by that tag's values (e.g. thermal sensors by
    /// `Label`).
    pub label_tag: Option<String>,
    /// The TSDB query to run.
    pub query: Query,
}

fn windowed(measurement: &str, field: &str, node: NodeId, req: &BuilderRequest) -> Query {
    Query::select(measurement, field, req.start, req.end)
        .aggregate(req.aggregation)
        .where_tag("NodeId", node.bmc_addr())
        .group_by_time(req.interval_secs)
}

/// The job-list query reads raw strings (no numeric aggregation) and only
/// needs the most recent window of the range.
fn job_list(measurement: &str, node: NodeId, req: &BuilderRequest) -> Query {
    let start = (req.end - req.interval_secs).max(req.start);
    Query::select(measurement, "JobList", start, req.end).where_tag("NodeId", node.bmc_addr())
}

/// Price a whole plan in modelled cost *without executing it*: the sum of
/// [`monster_tsdb::Db::estimate_cost`] over every planned query. Feed the
/// result through [`monster_tsdb::Db::simulate_elapsed`] to get the
/// modelled seconds that cost-based admission classifies on.
pub fn estimate_plan_cost(db: &monster_tsdb::Db, plan: &[PlannedQuery]) -> QueryCost {
    let mut total = QueryCost::default();
    for pq in plan {
        total.absorb(&db.estimate_cost(&pq.query));
    }
    total
}

/// Expand a request into the full per-node query plan for `schema`.
pub fn build_plan(
    schema: SchemaVersion,
    nodes: &[NodeId],
    req: &BuilderRequest,
) -> Vec<PlannedQuery> {
    let mut plan = Vec::new();
    for &node in nodes {
        match schema {
            SchemaVersion::Optimized => plan_optimized(&mut plan, node, req),
            SchemaVersion::Previous => plan_previous(&mut plan, node, req),
        }
    }
    plan
}

/// Optimized schema: 5 queries per node against consolidated
/// measurements (§IV-B2).
fn plan_optimized(plan: &mut Vec<PlannedQuery>, node: NodeId, req: &BuilderRequest) {
    plan.push(PlannedQuery {
        group: QueryGroup::Bmc,
        node,
        section: "power".into(),
        label_tag: None,
        query: windowed("Power", "Reading", node, req).where_tag("Label", "NodePower"),
    });
    plan.push(PlannedQuery {
        group: QueryGroup::Bmc,
        node,
        section: "thermal".into(),
        label_tag: Some("Label".into()),
        query: windowed("Thermal", "Reading", node, req),
    });
    plan.push(PlannedQuery {
        group: QueryGroup::Uge,
        node,
        section: "cpu_usage".into(),
        label_tag: None,
        query: windowed("UGE", "CPUUsage", node, req),
    });
    plan.push(PlannedQuery {
        group: QueryGroup::Uge,
        node,
        section: "memory".into(),
        label_tag: None,
        query: windowed("UGE", "MemUsed", node, req),
    });
    plan.push(PlannedQuery {
        group: QueryGroup::Jobs,
        node,
        section: "jobs".into(),
        label_tag: None,
        query: job_list("NodeJobs", node, req),
    });
}

/// Previous schema: one query per individual version-1 measurement and
/// sensor — 17 per node, the sequential cost the paper measured in
/// Fig. 10.
fn plan_previous(plan: &mut Vec<PlannedQuery>, node: NodeId, req: &BuilderRequest) {
    let mut sensor = |group: QueryGroup, measurement: &str, sensor: &str, section: String| {
        plan.push(PlannedQuery {
            group,
            node,
            section,
            label_tag: None,
            query: windowed(measurement, "Reading", node, req).where_tag("Sensor", sensor),
        });
    };
    sensor(QueryGroup::Bmc, "PowerUsage", "0", "power".into());
    for i in 1..=2 {
        sensor(QueryGroup::Bmc, "CPUTemperature", &i.to_string(), format!("cpu_temp_{i}"));
    }
    sensor(QueryGroup::Bmc, "InletTemperature", "0", "inlet_temp".into());
    for i in 1..=4 {
        sensor(QueryGroup::Bmc, "FanSpeed", &i.to_string(), format!("fan_{i}"));
    }
    for i in 1..=3 {
        sensor(QueryGroup::Bmc, "Voltage", &i.to_string(), format!("voltage_{i}"));
    }
    sensor(QueryGroup::Uge, "CPUUsage", "0", "cpu_usage".into());
    sensor(QueryGroup::Uge, "MemoryUsed", "0", "memory".into());
    sensor(QueryGroup::Uge, "MemoryTotal", "0", "memory_total".into());
    sensor(QueryGroup::Uge, "SwapUsed", "0", "swap_used".into());
    sensor(QueryGroup::Uge, "SwapFree", "0", "swap_free".into());
    plan.push(PlannedQuery {
        group: QueryGroup::Jobs,
        node,
        section: "jobs".into(),
        label_tag: None,
        query: job_list("NodeJobList", node, req),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> BuilderRequest {
        BuilderRequest::new(EpochSecs::new(0), EpochSecs::new(3600), 300, Aggregation::Max).unwrap()
    }

    #[test]
    fn request_validation() {
        let t = EpochSecs::new(100);
        assert!(BuilderRequest::new(t, t, 300, Aggregation::Max).is_err());
        assert!(BuilderRequest::new(t, t - 1, 300, Aggregation::Max).is_err());
        assert!(BuilderRequest::new(t, t + 1, 0, Aggregation::Max).is_err());
        let r = BuilderRequest::new(t, t + 1, 60, Aggregation::Mean).unwrap();
        assert!(!r.compress);
        assert!(r.compressed().compress);
    }

    #[test]
    fn optimized_plan_is_five_queries_per_node() {
        let nodes = NodeId::enumerate(3, 4);
        let plan = build_plan(SchemaVersion::Optimized, &nodes, &req());
        assert_eq!(plan.len(), 15);
        let bmc = plan.iter().filter(|p| p.group == QueryGroup::Bmc).count();
        assert_eq!(bmc, 6);
        // Every query is node-scoped.
        assert!(plan.iter().all(|p| p.query.predicates.iter().any(|(k, _)| k == "NodeId")));
    }

    #[test]
    fn previous_plan_fans_out_per_sensor() {
        let nodes = NodeId::enumerate(2, 4);
        let plan = build_plan(SchemaVersion::Previous, &nodes, &req());
        assert_eq!(plan.len(), 34);
        let bmc = plan.iter().filter(|p| p.group == QueryGroup::Bmc).count();
        assert_eq!(bmc, 22);
        // Far more queries than the optimized schema — the Fig. 10 cost.
        let opt = build_plan(SchemaVersion::Optimized, &nodes, &req());
        assert!(plan.len() > 3 * opt.len());
    }

    #[test]
    fn job_list_query_reads_only_last_window() {
        let nodes = NodeId::enumerate(1, 4);
        let plan = build_plan(SchemaVersion::Optimized, &nodes, &req());
        let jobs = plan.iter().find(|p| p.group == QueryGroup::Jobs).unwrap();
        assert_eq!(jobs.query.start.as_secs(), 3300);
        assert_eq!(jobs.query.end.as_secs(), 3600);
        assert!(jobs.query.agg.is_none());
    }
}
