//! Plan execution and response-document assembly.
//!
//! Runs a plan's queries against the TSDB (sequentially, or concurrently
//! per §IV-B3) and marshals the results into the per-node JSON document
//! the Metrics Builder API returns. Execution is instrumented: request
//! counters, a simulated query-latency span, and output-point counters
//! land in the `monster_obs` global registry.

use crate::plan::PlannedQuery;
use monster_json::{jobj, Object, Value};
use monster_sim::VDuration;
use monster_tsdb::QueryCost;
use monster_tsdb::{concurrent, Db, FieldValue, ResultSet};
use monster_util::Result;
use std::sync::Arc;

/// How to run the plan's queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One query after another (the paper's original builder).
    Sequential,
    /// Fan the queries out over a worker pool (§IV-B3).
    Concurrent {
        /// Number of workers.
        workers: usize,
    },
}

/// CPU cost to marshal one output point into the response document
/// (aggregation cursor output + middleware JSON assembly), seconds. This
/// is the builder-side "processing" share of Fig. 11.
const PER_OUTPUT_POINT_SECS: f64 = 1.0e-6;

/// Fixed marshalling cost per executed query (result decode, section
/// routing), seconds.
const PER_QUERY_MARSHAL_SECS: f64 = 0.1e-3;

/// Everything a Metrics Builder run produces.
#[derive(Debug, Clone)]
pub struct BuilderOutcome {
    /// The assembled response document: an object keyed by node BMC
    /// address, each holding per-section point arrays.
    pub document: Value,
    /// Total points marshalled into the document.
    pub points_out: usize,
    /// Aggregate physical query cost.
    pub cost: QueryCost,
    /// Simulated time spent querying the TSDB under the chosen mode.
    pub query_time: VDuration,
    /// Simulated time spent marshalling results into the document.
    pub processing_time: VDuration,
}

impl BuilderOutcome {
    /// Total simulated querying + processing time — the quantity the
    /// paper's Figs. 10–15 measure.
    pub fn query_processing_time(&self) -> VDuration {
        self.query_time + self.processing_time
    }
}

fn point_value(v: &FieldValue) -> Value {
    match v {
        FieldValue::Float(f) => Value::from(*f),
        FieldValue::Int(i) => Value::from(*i),
        FieldValue::Str(s) => Value::from(s.as_str()),
        FieldValue::Bool(b) => Value::from(*b),
    }
}

fn points_array(rs: &ResultSet) -> (Value, usize) {
    let mut arr = Vec::new();
    for series in &rs.series {
        for (t, v) in &series.points {
            arr.push(jobj! { "time" => t.as_secs(), "value" => point_value(v) });
        }
    }
    let n = arr.len();
    (Value::Array(arr), n)
}

fn points_by_tag(rs: &ResultSet, tag: &str) -> (Value, usize) {
    let mut obj = Object::new();
    let mut n = 0usize;
    for series in &rs.series {
        let label = series.key.tag(tag).unwrap_or("unlabeled").to_string();
        let mut arr = Vec::new();
        for (t, v) in &series.points {
            arr.push(jobj! { "time" => t.as_secs(), "value" => point_value(v) });
        }
        n += arr.len();
        obj.insert(label, Value::Array(arr));
    }
    (Value::Object(obj), n)
}

/// Execute `plan` against `db` and assemble the response document.
///
/// Fails on the first query error (invalid ranges surface here); missing
/// data is not an error — sections whose queries match nothing are simply
/// omitted from the node document.
///
/// `mode` controls *inter-query* concurrency only. Independently of it,
/// each query's overlapping-shard scans fan out inside the storage engine
/// (`DbConfig::scan_workers` for real threads,
/// `CostParams::scan_workers` in the simulated-time model); the two levels
/// compose as described in `monster_tsdb::concurrent`.
pub fn execute(db: &Arc<Db>, plan: &[PlannedQuery], mode: ExecMode) -> Result<BuilderOutcome> {
    let span = monster_obs::Span::enter("builder.execute");
    // Make the execute span the parent of the per-query scan spans the
    // storage engine opens underneath this batch.
    let _trace_guard = monster_obs::trace::set_current(span.context());
    let queries: Vec<_> = plan.iter().map(|p| p.query.clone()).collect();
    let batch = match mode {
        ExecMode::Sequential => concurrent::run_sequential(db, &queries),
        ExecMode::Concurrent { workers } => concurrent::run_concurrent(db, queries, workers),
    };
    let cost = batch.total_cost;
    let query_time = batch.simulated;
    let results = batch.into_results()?;

    let mut document = Object::new();
    let mut points_out = 0usize;
    for (planned, rs) in plan.iter().zip(&results) {
        if rs.series.is_empty() {
            continue;
        }
        let (section_value, n) = match &planned.label_tag {
            Some(tag) => points_by_tag(rs, tag),
            None => points_array(rs),
        };
        points_out += n;
        let addr = planned.node.bmc_addr();
        let node_doc = match document.get_mut(&addr) {
            Some(v) => v,
            None => {
                document.insert(addr.clone(), Value::Object(Object::new()));
                document.get_mut(&addr).expect("just inserted")
            }
        };
        if let Some(node_obj) = node_doc.as_object_mut() {
            node_obj.insert(planned.section.clone(), section_value);
        }
    }

    let amp = db.config().cost.amplification;
    let processing_time = VDuration::from_secs_f64(
        (points_out as f64 * PER_OUTPUT_POINT_SECS + plan.len() as f64 * PER_QUERY_MARSHAL_SECS)
            * amp,
    );

    monster_obs::counter("monster_builder_requests_total").inc();
    monster_obs::counter("monster_builder_queries_total").add(plan.len() as u64);
    monster_obs::counter("monster_builder_points_out_total").add(points_out as u64);
    monster_obs::histo("monster_builder_query_seconds").observe_vdur(query_time + processing_time);
    span.finish_after(query_time + processing_time);

    Ok(BuilderOutcome {
        document: Value::Object(document),
        points_out,
        cost,
        query_time,
        processing_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plan, BuilderRequest};
    use monster_collector::SchemaVersion;
    use monster_tsdb::{Aggregation, DataPoint, DbConfig};
    use monster_util::{EpochSecs, NodeId};

    fn seeded(nodes: usize) -> (Arc<Db>, Vec<NodeId>) {
        let db = Db::new(DbConfig::default());
        let ids = NodeId::enumerate(nodes, 4);
        let mut batch = Vec::new();
        for i in 0..120i64 {
            let t = EpochSecs::new(i * 60);
            for &n in &ids {
                batch.push(
                    DataPoint::new("Power", t)
                        .tag("NodeId", n.bmc_addr())
                        .tag("Label", "NodePower")
                        .field_f64("Reading", 250.0 + (i % 31) as f64),
                );
                batch.push(
                    DataPoint::new("Thermal", t)
                        .tag("NodeId", n.bmc_addr())
                        .tag("Label", "CPU1 Temp")
                        .field_f64("Reading", 40.0 + (i % 7) as f64),
                );
                batch.push(
                    DataPoint::new("UGE", t)
                        .tag("NodeId", n.bmc_addr())
                        .field_f64("CPUUsage", (i % 10) as f64 / 10.0)
                        .field_f64("MemUsed", 90.0),
                );
                batch.push(
                    DataPoint::new("NodeJobs", t)
                        .tag("NodeId", n.bmc_addr())
                        .field_str("JobList", "['1001']"),
                );
            }
        }
        db.write_batch(&batch).unwrap();
        (Arc::new(db), ids)
    }

    fn request() -> BuilderRequest {
        BuilderRequest::new(EpochSecs::new(0), EpochSecs::new(7200), 300, Aggregation::Max).unwrap()
    }

    #[test]
    fn document_is_keyed_by_node_and_section() {
        let (db, ids) = seeded(2);
        let plan = build_plan(SchemaVersion::Optimized, &ids, &request());
        let out = execute(&db, &plan, ExecMode::Sequential).unwrap();
        assert!(out.points_out > 0);
        let node = out.document.get("10.101.1.1").expect("node doc");
        let power = node.get("power").unwrap().as_array().unwrap();
        assert_eq!(power.len(), 24); // 7200 s / 300 s windows
        assert_eq!(power[0].get("time").unwrap().as_i64(), Some(0));
        // Thermal is keyed by sensor label.
        let thermal = node.get("thermal").unwrap();
        assert!(thermal.get("CPU1 Temp").unwrap().as_array().is_some());
        // Raw string job lists survive marshalling.
        let jobs = node.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs[0].get("value").unwrap().as_str(), Some("['1001']"));
    }

    #[test]
    fn sequential_and_concurrent_build_identical_documents() {
        let (db, ids) = seeded(3);
        let plan = build_plan(SchemaVersion::Optimized, &ids, &request());
        let a = execute(&db, &plan, ExecMode::Sequential).unwrap();
        let b = execute(&db, &plan, ExecMode::Concurrent { workers: 8 }).unwrap();
        assert_eq!(a.document, b.document);
        assert_eq!(a.points_out, b.points_out);
        assert_eq!(a.cost.points, b.cost.points);
        // Concurrency shrinks simulated time for the same answer.
        assert!(b.query_time < a.query_time);
    }

    #[test]
    fn empty_sections_are_omitted_not_errors() {
        let db = Arc::new(Db::new(DbConfig::default()));
        let ids = NodeId::enumerate(1, 4);
        let plan = build_plan(SchemaVersion::Optimized, &ids, &request());
        let out = execute(&db, &plan, ExecMode::Sequential).unwrap();
        assert_eq!(out.points_out, 0);
        assert!(out.document.as_object().unwrap().is_empty());
    }

    #[test]
    fn execution_reports_to_the_metrics_registry() {
        let (db, ids) = seeded(1);
        let plan = build_plan(SchemaVersion::Optimized, &ids, &request());
        let before = monster_obs::global().counter_value("monster_builder_requests_total");
        let q_before = monster_obs::global().counter_value("monster_builder_queries_total");
        execute(&db, &plan, ExecMode::Sequential).unwrap();
        let after = monster_obs::global().counter_value("monster_builder_requests_total");
        let q_after = monster_obs::global().counter_value("monster_builder_queries_total");
        assert_eq!(after, before + 1);
        assert_eq!(q_after, q_before + plan.len() as u64);
    }
}
