//! The query flight recorder: one structured wide event per
//! `/v1/metrics` request.
//!
//! Every request — whatever its disposition — leaves behind a
//! [`RequestRecord`]: trace/span ids, tenant, the normalized plan
//! fingerprint, per-stage wall timings (parse → plan → cache → admission
//! → execute → encode) next to the modelled vtime the simulation charges,
//! the plan-time estimated [`QueryCost`] beside the measured actual
//! (cold-tier subsets included), the admission token-bucket math that
//! produced any `Retry-After`, and bytes out. Records land in a
//! pre-allocated bounded ring and surface three ways: `GET
//! /debug/requests` (+ `/:trace_id`), inline via `?explain=true`, and as
//! the estimator-accuracy metrics
//! (`monster_builder_cost_estimate_ratio{stage=...}`,
//! `monster_builder_slow_queries_total`).
//!
//! # Hot-path design: word-atomic slots, no locks, no allocation
//!
//! The warm cache-hit path serves in under a microsecond, so the recorder
//! budget is tens of nanoseconds. Each ring slot is a fixed array of
//! `AtomicU64` words guarded by a per-slot seqlock version counter:
//!
//! * a writer claims the slot with one CAS (odd version = write in
//!   progress), stores only the words its disposition needs with relaxed
//!   ordering, and releases with an even version — no mutex, no heap;
//! * a reader (debug endpoints; rare) snapshots the words and retries if
//!   the version moved underneath it. Because every word is an atomic,
//!   a torn read is impossible by construction — the version check only
//!   guards *cross-word* consistency;
//! * a writer that loses the claim CAS (another writer lapped the ring
//!   onto the same slot) drops its record and bumps
//!   `monster_builder_qlog_dropped_total` rather than spin.
//!
//! Slots are recycled in place — the ring never allocates after
//! construction, which is what keeps recording on the warm cache-hit path
//! at zero allocations (asserted by the counting-allocator test in
//! `tests/cache_zero_copy.rs`). Wall timings use raw TSC reads on x86-64
//! (two orders of magnitude cheaper than a `clock_gettime` pair),
//! calibrated once per process against [`std::time::Instant`].

use monster_json::{jobj, Value};
use monster_obs::{SpanId, TraceId};
use monster_tsdb::{QueryCost, COST_WORDS};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Cheap wall-clock ticks
// ---------------------------------------------------------------------------

/// Nanoseconds per TSC tick, calibrated once per process.
struct Ticker {
    ns_per_tick: f64,
}

static TICKER: OnceLock<Ticker> = OnceLock::new();

#[cfg(target_arch = "x86_64")]
#[inline]
fn raw_ticks() -> u64 {
    // SAFETY: RDTSC is unprivileged baseline x86-64 and has no
    // memory-safety effects; it only reads the time-stamp counter.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn raw_ticks() -> u64 {
    // Portable fallback: one monotonic clock read per stamp.
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn ticker() -> &'static Ticker {
    TICKER.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            // Calibrate TSC frequency against the OS monotonic clock over
            // a short busy window. ~1 ms keeps the relative error well
            // under 0.1%, plenty for per-stage profiling.
            let wall = Instant::now();
            let t0 = raw_ticks();
            while wall.elapsed().as_micros() < 1_000 {
                std::hint::spin_loop();
            }
            let ticks = raw_ticks().saturating_sub(t0).max(1);
            Ticker { ns_per_tick: wall.elapsed().as_nanos() as f64 / ticks as f64 }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            Ticker { ns_per_tick: 1.0 }
        }
    })
}

/// An opaque timestamp in recorder ticks; subtract two with
/// [`ticks_to_ns`]. Reading one costs ~7 ns on x86-64.
#[inline]
pub fn ticks_now() -> u64 {
    raw_ticks()
}

/// Convert a tick delta to nanoseconds.
pub fn ticks_to_ns(delta: u64) -> u64 {
    (delta as f64 * ticker().ns_per_tick) as u64
}

// ---------------------------------------------------------------------------
// Record vocabulary
// ---------------------------------------------------------------------------

/// How a request was ultimately served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Served from a validated cache entry.
    Hit,
    /// Planned, admitted, and executed against storage.
    Miss,
    /// Joined another request's in-flight execution.
    Coalesced,
    /// A deterministic 400 — parse rejection, first-seen or served from
    /// the negative cache.
    Negative,
    /// Turned away by cost-based admission (429).
    Rejected,
    /// Execution failed (500).
    Error,
}

impl Disposition {
    fn code(self) -> u64 {
        match self {
            Disposition::Hit => 0,
            Disposition::Miss => 1,
            Disposition::Coalesced => 2,
            Disposition::Negative => 3,
            Disposition::Rejected => 4,
            Disposition::Error => 5,
        }
    }

    fn from_code(c: u64) -> Disposition {
        match c {
            0 => Disposition::Hit,
            1 => Disposition::Miss,
            2 => Disposition::Coalesced,
            3 => Disposition::Negative,
            4 => Disposition::Rejected,
            _ => Disposition::Error,
        }
    }

    /// Lower-case wire name (`hit`, `miss`, `coalesced`, `negative`,
    /// `rejected`, `error`) — also what `?disposition=` filters accept.
    pub fn as_str(self) -> &'static str {
        match self {
            Disposition::Hit => "hit",
            Disposition::Miss => "miss",
            Disposition::Coalesced => "coalesced",
            Disposition::Negative => "negative",
            Disposition::Rejected => "rejected",
            Disposition::Error => "error",
        }
    }

    /// Inverse of [`Disposition::as_str`].
    pub fn parse(s: &str) -> Option<Disposition> {
        Some(match s {
            "hit" => Disposition::Hit,
            "miss" => Disposition::Miss,
            "coalesced" => Disposition::Coalesced,
            "negative" => Disposition::Negative,
            "rejected" => Disposition::Rejected,
            "error" => Disposition::Error,
            _ => return None,
        })
    }
}

/// What the response cache said about this request's key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheVerdict {
    /// A positive entry existed and its watermark snapshot validated.
    Valid,
    /// A negative (deterministic-400) entry was served.
    Negative,
    /// No entry for this key.
    Absent,
    /// An entry existed but a write/retention event invalidated it.
    Invalidated,
}

impl CacheVerdict {
    fn code(self) -> u64 {
        match self {
            CacheVerdict::Valid => 0,
            CacheVerdict::Negative => 1,
            CacheVerdict::Absent => 2,
            CacheVerdict::Invalidated => 3,
        }
    }

    fn from_code(c: u64) -> CacheVerdict {
        match c {
            0 => CacheVerdict::Valid,
            1 => CacheVerdict::Negative,
            3 => CacheVerdict::Invalidated,
            _ => CacheVerdict::Absent,
        }
    }

    /// Wire name used by `/debug/requests` and `?explain=true`.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheVerdict::Valid => "valid",
            CacheVerdict::Negative => "negative",
            CacheVerdict::Absent => "absent",
            CacheVerdict::Invalidated => "invalidated",
        }
    }
}

/// Admission control's decision for this request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The controller is disabled; everything passes.
    Disabled,
    /// At or below the cheap threshold — admitted without touching the
    /// tenant's bucket.
    Cheap,
    /// Expensive but affordable — the tenant's bucket was debited.
    Charged,
    /// Above the hard reject threshold (no bucket could ever cover it).
    RejectedOverBudget,
    /// Affordable in principle but the tenant's bucket is short.
    RejectedTenantBudget,
}

impl AdmissionDecision {
    fn code(self) -> u64 {
        match self {
            AdmissionDecision::Disabled => 0,
            AdmissionDecision::Cheap => 1,
            AdmissionDecision::Charged => 2,
            AdmissionDecision::RejectedOverBudget => 3,
            AdmissionDecision::RejectedTenantBudget => 4,
        }
    }

    fn from_code(c: u64) -> AdmissionDecision {
        match c {
            1 => AdmissionDecision::Cheap,
            2 => AdmissionDecision::Charged,
            3 => AdmissionDecision::RejectedOverBudget,
            4 => AdmissionDecision::RejectedTenantBudget,
            _ => AdmissionDecision::Disabled,
        }
    }

    /// Wire name used by `/debug/requests` and `?explain=true`.
    pub fn as_str(self) -> &'static str {
        match self {
            AdmissionDecision::Disabled => "disabled",
            AdmissionDecision::Cheap => "admitted_cheap",
            AdmissionDecision::Charged => "admitted_charged",
            AdmissionDecision::RejectedOverBudget => "rejected_over_budget",
            AdmissionDecision::RejectedTenantBudget => "rejected_tenant_budget",
        }
    }
}

/// The token-bucket arithmetic behind one admission decision — exactly the
/// numbers a client needs to understand its `Retry-After`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionSnapshot {
    /// Which rule fired.
    pub decision: AdmissionDecision,
    /// The plan-time modelled seconds the decision priced.
    pub estimated_secs: f64,
    /// Tenant bucket tokens after refill, before any debit. `NaN` when no
    /// bucket was consulted (disabled / cheap / over-budget).
    pub tokens_before: f64,
    /// Tokens after the debit (== `tokens_before` on rejection).
    pub tokens_after: f64,
    /// Modelled seconds the tenant earns per wall second.
    pub rate: f64,
    /// Bucket capacity.
    pub burst: f64,
    /// The `Retry-After` value sent on rejection; 0 when admitted.
    pub retry_after_secs: u64,
}

/// The pipeline stages a record times. Indexes into
/// [`RequestRecord::stages_ns`].
pub const STAGES: [&str; 6] = ["parse", "plan", "cache", "admission", "execute", "encode"];

/// Stage index constants (see [`STAGES`]).
pub const STAGE_PARSE: usize = 0;
/// Plan building + rollup rerouting + cost estimation.
pub const STAGE_PLAN: usize = 1;
/// Response-cache probe. On a hit this is the only populated stage and it
/// includes serving the shared body (probe dominates).
pub const STAGE_CACHE: usize = 2;
/// Admission decision (token-bucket refill + debit).
pub const STAGE_ADMISSION: usize = 3;
/// Storage execution.
pub const STAGE_EXECUTE: usize = 4;
/// Document marshalling, compression, header stamping.
pub const STAGE_ENCODE: usize = 5;

/// A request's estimated-vs-actual cost pair, modelled seconds included.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPair {
    /// The plan-time estimate admission priced.
    pub estimated: QueryCost,
    /// The measured physical cost out of the scans.
    pub actual: QueryCost,
    /// `simulate_elapsed(estimated)`, nanoseconds.
    pub estimated_ns: u64,
    /// `simulate_elapsed(actual)`, nanoseconds — same pricing function, so
    /// the ratio isolates estimator accuracy from execution mode.
    pub actual_ns: u64,
}

/// One decoded flight-recorder record — the owned, reader-side form.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Monotone sequence number (also the ring-recycling order).
    pub seq: u64,
    /// Disposition the request ended with.
    pub disposition: Disposition,
    /// HTTP status served.
    pub status: u16,
    /// Trace id (joins `GET /debug/trace?trace_id=`).
    pub trace: TraceId,
    /// The request's server-side span id.
    pub span: SpanId,
    /// Normalized plan fingerprint: a 64-bit hash of the request key with
    /// per-request noise (`explain`) stripped, so identical plans collapse
    /// to one value across dispositions.
    pub fingerprint: u64,
    /// Tenant the request was billed to.
    pub tenant: String,
    /// The normalized request key (path + query, `explain` stripped).
    pub url: String,
    /// `true` when `tenant`/`url` exceeded the slot's fixed capacity and
    /// were truncated.
    pub truncated: bool,
    /// Whether the caller asked for `?explain=true`.
    pub explain: bool,
    /// Whether this record crossed the slow-query threshold (also pinned
    /// in the slow log).
    pub slow: bool,
    /// Per-stage wall nanoseconds, indexed by the `STAGE_*` constants.
    pub stages_ns: [u64; 6],
    /// End-to-end wall nanoseconds inside the handler.
    pub total_ns: u64,
    /// Modelled (vtime) execution nanoseconds, when executed.
    pub vtime_execute_ns: u64,
    /// Modelled (vtime) marshalling nanoseconds, when executed.
    pub vtime_encode_ns: u64,
    /// Response body bytes (the payload, not any explain envelope).
    pub bytes_out: u64,
    /// What the cache said about this key.
    pub verdict: CacheVerdict,
    /// Estimated-vs-actual cost, for requests that executed.
    pub cost: Option<CostPair>,
    /// Admission math, for requests that reached admission.
    pub admission: Option<AdmissionSnapshot>,
}

impl RequestRecord {
    /// Wall milliseconds end to end.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Modelled (vtime) milliseconds charged to this request.
    pub fn modelled_ms(&self) -> f64 {
        (self.vtime_execute_ns + self.vtime_encode_ns) as f64 / 1e6
    }

    /// The record as the JSON object `/debug/requests` and
    /// `?explain=true` serve. Shape is a compatibility contract (golden
    /// test in `service.rs`).
    pub fn to_json(&self) -> Value {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut doc = jobj! {
            "seq" => self.seq as i64,
            "trace_id" => self.trace.to_string(),
            "span_id" => self.span.to_string(),
            "disposition" => self.disposition.as_str(),
            "status" => self.status as i64,
            "tenant" => self.tenant.as_str(),
            "url" => self.url.as_str(),
            "fingerprint" => format!("{:016x}", self.fingerprint),
            "explain" => self.explain,
            "slow" => self.slow,
            "truncated" => self.truncated,
            "bytes_out" => self.bytes_out as i64,
            "wall_ms" => jobj! {
                "total" => ms(self.total_ns),
                "parse" => ms(self.stages_ns[STAGE_PARSE]),
                "plan" => ms(self.stages_ns[STAGE_PLAN]),
                "cache" => ms(self.stages_ns[STAGE_CACHE]),
                "admission" => ms(self.stages_ns[STAGE_ADMISSION]),
                "execute" => ms(self.stages_ns[STAGE_EXECUTE]),
                "encode" => ms(self.stages_ns[STAGE_ENCODE]),
            },
            "vtime_ms" => jobj! {
                "execute" => ms(self.vtime_execute_ns),
                "encode" => ms(self.vtime_encode_ns),
                "total" => self.modelled_ms(),
            },
            "cache" => jobj! { "verdict" => self.verdict.as_str() },
        };
        if let Some(cost) = &self.cost {
            let ratio = |act: u64, est: u64| {
                if est == 0 {
                    Value::Null
                } else {
                    Value::from(act as f64 / est as f64)
                }
            };
            let obj = doc.as_object_mut().expect("record doc is an object");
            obj.insert(
                "cost".to_string(),
                jobj! {
                    "estimated" => cost.estimated.to_json(),
                    "actual" => cost.actual.to_json(),
                    "estimated_modelled_ms" => ms(cost.estimated_ns),
                    "actual_modelled_ms" => ms(cost.actual_ns),
                    "ratio" => jobj! {
                        "seconds" => ratio(cost.actual_ns, cost.estimated_ns),
                        "points" => ratio(cost.actual.points as u64, cost.estimated.points as u64),
                        "bytes" => ratio(cost.actual.bytes as u64, cost.estimated.bytes as u64),
                        "blocks" => ratio(cost.actual.blocks as u64, cost.estimated.blocks as u64),
                    },
                },
            );
        }
        if let Some(adm) = &self.admission {
            let f = |v: f64| if v.is_nan() { Value::Null } else { Value::from(v) };
            let obj = doc.as_object_mut().expect("record doc is an object");
            obj.insert(
                "admission".to_string(),
                jobj! {
                    "decision" => adm.decision.as_str(),
                    "estimated_secs" => adm.estimated_secs,
                    "tokens_before" => f(adm.tokens_before),
                    "tokens_after" => f(adm.tokens_after),
                    "rate" => adm.rate,
                    "burst" => adm.burst,
                    "retry_after_secs" => adm.retry_after_secs as i64,
                },
            );
        }
        doc
    }
}

/// What the service hands the recorder: borrowed strings, stack data, no
/// heap. [`QueryRecorder::record`] copies it into a recycled slot.
#[derive(Debug, Clone, Copy)]
pub struct Draft<'a> {
    /// Normalized request key (path + query, `explain` stripped).
    pub url: &'a str,
    /// Tenant header value (or `"anonymous"`).
    pub tenant: &'a str,
    /// Trace id of the request's server-side span.
    pub trace: TraceId,
    /// Span id of the request's server-side span.
    pub span: SpanId,
    /// Normalized plan fingerprint ([`fingerprint64`] of `url`), or 0 to
    /// let the ring decoder derive it from the stored key at read time.
    pub fingerprint: u64,
    /// Final disposition.
    pub disposition: Disposition,
    /// HTTP status served.
    pub status: u16,
    /// Cache probe verdict.
    pub verdict: CacheVerdict,
    /// Whether `?explain=true` was requested.
    pub explain: bool,
    /// Per-stage wall nanoseconds.
    pub stages_ns: [u64; 6],
    /// End-to-end wall nanoseconds.
    pub total_ns: u64,
    /// Modelled execution nanoseconds.
    pub vtime_execute_ns: u64,
    /// Modelled marshalling nanoseconds.
    pub vtime_encode_ns: u64,
    /// Payload bytes out.
    pub bytes_out: u64,
    /// Estimated-vs-actual costs, when executed.
    pub cost: Option<CostPair>,
    /// Admission math, when evaluated.
    pub admission: Option<AdmissionSnapshot>,
}

impl<'a> Draft<'a> {
    /// A draft with everything zeroed except identity.
    pub fn new(url: &'a str, tenant: &'a str, trace: TraceId, span: SpanId) -> Draft<'a> {
        Draft {
            url,
            tenant,
            trace,
            span,
            fingerprint: 0,
            disposition: Disposition::Error,
            status: 0,
            verdict: CacheVerdict::Absent,
            explain: false,
            stages_ns: [0; 6],
            total_ns: 0,
            vtime_execute_ns: 0,
            vtime_encode_ns: 0,
            bytes_out: 0,
            cost: None,
            admission: None,
        }
    }

    /// Materialize the owned record the `?explain=true` envelope embeds
    /// (the ring stores the same data in word form).
    pub fn to_record(&self, seq: u64, slow: bool) -> RequestRecord {
        RequestRecord {
            seq,
            disposition: self.disposition,
            status: self.status,
            trace: self.trace,
            span: self.span,
            fingerprint: self.fingerprint,
            tenant: self.tenant.to_string(),
            url: self.url.to_string(),
            truncated: self.tenant.len() > TENANT_BYTES || self.url.len() > URL_BYTES,
            explain: self.explain,
            slow,
            stages_ns: self.stages_ns,
            total_ns: self.total_ns,
            vtime_execute_ns: self.vtime_execute_ns,
            vtime_encode_ns: self.vtime_encode_ns,
            bytes_out: self.bytes_out,
            verdict: self.verdict,
            cost: self.cost,
            admission: self.admission,
        }
    }
}

/// The normalized plan fingerprint: FNV-1a folded over 8-byte chunks, so
/// hashing an 80-byte key costs ~10 multiplies. Identical normalized keys
/// — and therefore identical plans — collapse to one value whatever their
/// disposition. The hot path never computes it: ring records store 0 and
/// the decoder derives it from the stored key at read time; only the
/// opt-in explain path (and the slow-log pin) hash eagerly.
pub fn fingerprint64(s: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let bytes = s.as_bytes();
    let mut h = OFFSET ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h ^ u64::from_le_bytes(c.try_into().expect("8-byte chunk"))).wrapping_mul(PRIME);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    (h ^ tail).wrapping_mul(PRIME)
}

// ---------------------------------------------------------------------------
// Slot layout
// ---------------------------------------------------------------------------

const TENANT_WORDS: usize = 3;
const URL_WORDS: usize = 20;
/// Max tenant bytes a slot stores before truncating.
pub const TENANT_BYTES: usize = TENANT_WORDS * 8;
/// Max url bytes a slot stores before truncating.
pub const URL_BYTES: usize = URL_WORDS * 8;

// Word layout. Every disposition writes the prefix up through the url
// words; only executed/priced requests write the cost and admission
// suffix. Keeping the universally-written words contiguous at the front
// means the hot (cache-hit) write touches one run of cache lines — see
// `HOT_PREFIX_LINES`.
const W_SEQ: usize = 0;
const W_META: usize = 1; // disposition | status<<8 | flags<<24 | verdict<<32 | adm<<40 | tlen<<48 | ulen<<56
const W_TRACE_HI: usize = 2;
const W_TRACE_LO: usize = 3;
const W_SPAN: usize = 4;
const W_FP: usize = 5;
const W_STAGE0: usize = 6; // ..=11
const W_TOTAL: usize = 12;
const W_VT_EXEC: usize = 13;
const W_VT_ENC: usize = 14;
const W_BYTES_OUT: usize = 15;
const W_TENANT0: usize = 16; // ..=18
const W_URL0: usize = 19; // ..=38
const W_EST0: usize = 39; // ..=48
const W_EST_NS: usize = 49;
const W_ACT0: usize = 50; // ..=59
const W_ACT_NS: usize = 60;
const W_ADM_EST: usize = 61;
const W_ADM_BEFORE: usize = 62;
const W_ADM_AFTER: usize = 63;
const W_ADM_RATE: usize = 64;
const W_ADM_BURST: usize = 65;
const W_ADM_RETRY: usize = 66;
const SLOT_WORDS: usize = W_ADM_RETRY + 1;

/// Cache lines covering the slot version plus the universally-written
/// word prefix (`W_SEQ..=W_URL0 + URL_WORDS`) — what `prefetch_next`
/// warms for the common dispositions.
const HOT_PREFIX_LINES: usize = (8 + W_EST0 * 8).div_ceil(64);

const FLAG_COST: u64 = 1;
const FLAG_ADMISSION: u64 = 2;
const FLAG_EXPLAIN: u64 = 4;
const FLAG_SLOW: u64 = 8;
const FLAG_TRUNCATED: u64 = 16;

struct Slot {
    /// Seqlock: odd while a writer owns the slot.
    version: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot { version: AtomicU64::new(0), words: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// Pack a string into word-atomic storage; returns the stored length.
#[inline]
fn store_str(words: &[AtomicU64], s: &str, cap_bytes: usize) -> usize {
    let bytes = &s.as_bytes()[..s.len().min(cap_bytes)];
    let mut chunks = bytes.chunks_exact(8);
    let mut w = words.iter();
    for chunk in chunks.by_ref() {
        let word = u64::from_le_bytes(chunk.try_into().unwrap());
        w.next().unwrap().store(word, Ordering::Relaxed);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut word = 0u64;
        for (i, &b) in tail.iter().enumerate() {
            word |= (b as u64) << (8 * i);
        }
        w.next().unwrap().store(word, Ordering::Relaxed);
    }
    bytes.len()
}

fn load_str(words: &[u64], len: usize) -> String {
    let mut out = Vec::with_capacity(len);
    for (i, w) in words.iter().enumerate() {
        for b in 0..8 {
            let pos = i * 8 + b;
            if pos >= len {
                break;
            }
            out.push((w >> (8 * b)) as u8);
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

// ---------------------------------------------------------------------------
// The recorder
// ---------------------------------------------------------------------------

/// Filters for [`QueryRecorder::recent`] — the `/debug/requests` query
/// parameters.
#[derive(Debug, Default, Clone)]
pub struct RecordFilter {
    /// Keep only this disposition.
    pub disposition: Option<Disposition>,
    /// Keep only records at least this many wall milliseconds end to end.
    pub min_ms: Option<f64>,
    /// Keep only this tenant.
    pub tenant: Option<String>,
    /// Newest-first result cap (default 50).
    pub limit: Option<usize>,
}

/// How many slow records stay pinned (oldest evicted).
const SLOW_PINNED: usize = 64;

/// The per-service flight recorder. Constructing one registers the
/// qlog/slow-query metrics (with `HELP` strings); a service with the
/// recorder disabled never constructs it, so those series never appear in
/// the exposition.
pub struct QueryRecorder {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    slow_ns: u64,
    dropped: AtomicU64,
    pinned: Mutex<VecDeque<RequestRecord>>,
    records_total: Arc<monster_obs::Counter>,
    dropped_total: Arc<monster_obs::Counter>,
    slow_total: Arc<monster_obs::Counter>,
    ratio_histos: [Arc<monster_obs::Histo>; 4],
}

/// Ratio histogram stage labels, index-aligned with
/// `QueryRecorder::ratio_histos`.
pub const RATIO_STAGES: [&str; 4] = ["seconds", "points", "bytes", "blocks"];

impl QueryRecorder {
    /// A recorder with `capacity` ring slots (rounded up to a power of
    /// two, min 16) pinning records slower than `slow_ms` wall-or-modelled
    /// milliseconds.
    pub fn new(capacity: usize, slow_ms: f64) -> QueryRecorder {
        let cap = capacity.max(16).next_power_of_two();
        // Touch the ticker once so calibration never lands mid-request.
        let _ = ticker();
        let ratio_histos = RATIO_STAGES.map(|stage| {
            monster_obs::histo_help(
                &format!("monster_builder_cost_estimate_ratio{{stage=\"{stage}\"}}"),
                "Measured-over-estimated query cost per request, by cost stage; \
                 drift from 1.0 means the plan-time estimator admission trusts \
                 is mispricing queries.",
            )
        });
        QueryRecorder {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            slow_ns: (slow_ms.max(0.0) * 1e6) as u64,
            dropped: AtomicU64::new(0),
            pinned: Mutex::new(VecDeque::with_capacity(SLOW_PINNED)),
            records_total: monster_obs::counter_help(
                "monster_builder_qlog_records_total",
                "Flight-recorder records captured on the query path.",
            ),
            dropped_total: monster_obs::counter_help(
                "monster_builder_qlog_dropped_total",
                "Flight-recorder records dropped because a concurrent writer \
                 lapped the ring onto the same slot.",
            ),
            slow_total: monster_obs::counter_help(
                "monster_builder_slow_queries_total",
                "Requests over the slow-query threshold, pinned in the slow log.",
            ),
            ratio_histos,
        }
    }

    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records captured since construction.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records dropped to a lapped-writer collision.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Hint the cache that the slot the *next* [`record`](Self::record)
    /// call will claim is about to be written. The ring's working set
    /// (capacity × ~0.5 KiB) can dwarf L1/L2, so by the time a slot comes
    /// around again its lines are cold — without this, every record pays
    /// read-for-ownership misses on the hot path. Called at request
    /// entry, the prefetch overlaps the entire serve. Only the
    /// universally-written word prefix is warmed; the cost/admission
    /// suffix belongs to executed requests, which run at micro- not
    /// nanosecond scale. Racing another writer to the slot is harmless: a
    /// prefetch is only a hint.
    #[inline]
    pub fn prefetch_next(&self) {
        #[cfg(target_arch = "x86_64")]
        {
            let slot = &self.slots[(self.head.load(Ordering::Relaxed) & self.mask) as usize];
            let base = slot as *const Slot as *const i8;
            for line in 0..HOT_PREFIX_LINES {
                // SAFETY: every address in [base, base + size_of::<Slot>())
                // lies inside the `slot` allocation; prefetch has no
                // architectural effect regardless.
                unsafe {
                    core::arch::x86_64::_mm_prefetch(
                        base.add(line * 64),
                        core::arch::x86_64::_MM_HINT_T0,
                    )
                };
            }
        }
    }

    /// Capture one request; returns the record's sequence number and
    /// whether it crossed the slow-query threshold. The common
    /// (cache-hit) disposition stores ~30 words under a single
    /// CAS-claimed seqlock — no locks, no heap; see the module docs for
    /// the budget arithmetic.
    pub fn record(&self, d: &Draft<'_>) -> (u64, bool) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        let v = slot.version.load(Ordering::Relaxed);
        if v & 1 == 1
            || slot
                .version
                .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
        {
            // Another writer owns this slot (the ring lapped a full
            // capacity while it was mid-write). Debug data is best-effort:
            // drop rather than spin on the hot path.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            self.dropped_total.inc();
            return (seq, self.is_slow(d));
        }
        let w = &slot.words;
        let tlen = store_str(&w[W_TENANT0..W_TENANT0 + TENANT_WORDS], d.tenant, TENANT_BYTES);
        let ulen = store_str(&w[W_URL0..W_URL0 + URL_WORDS], d.url, URL_BYTES);
        let truncated = d.tenant.len() > TENANT_BYTES || d.url.len() > URL_BYTES;
        let slow = self.is_slow(d);
        let mut flags = 0u64;
        if d.explain {
            flags |= FLAG_EXPLAIN;
        }
        if slow {
            flags |= FLAG_SLOW;
        }
        if truncated {
            flags |= FLAG_TRUNCATED;
        }
        let adm_code = d.admission.map_or(0, |a| a.decision.code());
        if let Some(cost) = &d.cost {
            flags |= FLAG_COST;
            for (i, word) in cost.estimated.to_words().iter().enumerate() {
                w[W_EST0 + i].store(*word, Ordering::Relaxed);
            }
            for (i, word) in cost.actual.to_words().iter().enumerate() {
                w[W_ACT0 + i].store(*word, Ordering::Relaxed);
            }
            w[W_EST_NS].store(cost.estimated_ns, Ordering::Relaxed);
            w[W_ACT_NS].store(cost.actual_ns, Ordering::Relaxed);
        }
        if let Some(adm) = &d.admission {
            flags |= FLAG_ADMISSION;
            w[W_ADM_EST].store(adm.estimated_secs.to_bits(), Ordering::Relaxed);
            w[W_ADM_BEFORE].store(adm.tokens_before.to_bits(), Ordering::Relaxed);
            w[W_ADM_AFTER].store(adm.tokens_after.to_bits(), Ordering::Relaxed);
            w[W_ADM_RATE].store(adm.rate.to_bits(), Ordering::Relaxed);
            w[W_ADM_BURST].store(adm.burst.to_bits(), Ordering::Relaxed);
            w[W_ADM_RETRY].store(adm.retry_after_secs, Ordering::Relaxed);
        }
        w[W_SEQ].store(seq, Ordering::Relaxed);
        let meta = d.disposition.code()
            | (d.status as u64) << 8
            | flags << 24
            | d.verdict.code() << 32
            | adm_code << 40
            | (tlen as u64) << 48
            | (ulen as u64) << 56;
        w[W_META].store(meta, Ordering::Relaxed);
        w[W_TRACE_HI].store((d.trace.0 >> 64) as u64, Ordering::Relaxed);
        w[W_TRACE_LO].store(d.trace.0 as u64, Ordering::Relaxed);
        w[W_SPAN].store(d.span.0, Ordering::Relaxed);
        w[W_FP].store(d.fingerprint, Ordering::Relaxed);
        for (i, ns) in d.stages_ns.iter().enumerate() {
            w[W_STAGE0 + i].store(*ns, Ordering::Relaxed);
        }
        w[W_TOTAL].store(d.total_ns, Ordering::Relaxed);
        w[W_VT_EXEC].store(d.vtime_execute_ns, Ordering::Relaxed);
        w[W_VT_ENC].store(d.vtime_encode_ns, Ordering::Relaxed);
        w[W_BYTES_OUT].store(d.bytes_out, Ordering::Relaxed);
        slot.version.store(v + 2, Ordering::Release);

        // Everything below is off the common path: estimator-accuracy
        // histograms fire only when a request executed, the slow log only
        // past the threshold.
        if let Some(cost) = &d.cost {
            let pairs: [(u64, u64); 4] = [
                (cost.actual_ns, cost.estimated_ns),
                (cost.actual.points as u64, cost.estimated.points as u64),
                (cost.actual.bytes as u64, cost.estimated.bytes as u64),
                (cost.actual.blocks as u64, cost.estimated.blocks as u64),
            ];
            for (histo, (act, est)) in self.ratio_histos.iter().zip(pairs) {
                if est > 0 {
                    histo.observe(act as f64 / est as f64);
                }
            }
        }
        if slow {
            self.slow_total.inc();
            let mut rec = d.to_record(seq, true);
            if rec.fingerprint == 0 {
                rec.fingerprint = fingerprint64(&rec.url);
            }
            let mut pinned = self.pinned.lock();
            if pinned.len() == SLOW_PINNED {
                pinned.pop_front();
            }
            pinned.push_back(rec);
        }
        (seq, slow)
    }

    /// Bring `monster_builder_qlog_records_total` up to date with the
    /// ring head. The hot path never touches the Prometheus counter —
    /// `head` already counts records, so the counter is reconciled here,
    /// at scrape/debug time, instead of costing an extra atomic RMW per
    /// request. Monotone: concurrent syncs can only add.
    pub fn sync_counters(&self) {
        let head = self.head.load(Ordering::Relaxed);
        let published = self.records_total.get();
        if head > published {
            self.records_total.add(head - published);
        }
    }

    /// Would this draft cross the slow-query threshold (wall *or*
    /// modelled time)? Used by `?explain=true` to report the flag before
    /// the pinned copy is queryable.
    pub fn is_slow(&self, d: &Draft<'_>) -> bool {
        self.slow_ns > 0
            && (d.total_ns >= self.slow_ns
                || d.vtime_execute_ns + d.vtime_encode_ns >= self.slow_ns)
    }

    /// Snapshot one slot; `None` while a writer owns it or if it has never
    /// been written.
    fn read_slot(&self, idx: usize) -> Option<RequestRecord> {
        let slot = &self.slots[idx];
        for _ in 0..4 {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 == 0 || v1 & 1 == 1 {
                return None;
            }
            let words: [u64; SLOT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            // Word loads are atomic, so tearing within a word is
            // impossible; the version re-check guards cross-word
            // consistency against a concurrent rewrite.
            let v2 = slot.version.load(Ordering::Acquire);
            if v1 == v2 {
                return Some(decode(&words));
            }
        }
        None
    }

    /// Newest-first records matching `filter`.
    pub fn recent(&self, filter: &RecordFilter) -> Vec<RequestRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let limit = filter.limit.unwrap_or(50);
        let mut out = Vec::new();
        let mut seq = head;
        while seq > 0 && seq + cap > head && out.len() < limit {
            seq -= 1;
            let Some(rec) = self.read_slot((seq & self.mask) as usize) else {
                continue;
            };
            // A lapped slot can hold a newer record than the cursor; skip
            // anything whose stored seq disagrees.
            if rec.seq != seq {
                continue;
            }
            if self.matches(&rec, filter) {
                out.push(rec);
            }
        }
        out
    }

    fn matches(&self, rec: &RequestRecord, filter: &RecordFilter) -> bool {
        if let Some(d) = filter.disposition {
            if rec.disposition != d {
                return false;
            }
        }
        if let Some(min_ms) = filter.min_ms {
            if rec.total_ms() < min_ms && rec.modelled_ms() < min_ms {
                return false;
            }
        }
        if let Some(tenant) = &filter.tenant {
            if rec.tenant != *tenant {
                return false;
            }
        }
        true
    }

    /// All live records carrying `trace`, newest first.
    pub fn by_trace(&self, trace: TraceId) -> Vec<RequestRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let mut out = Vec::new();
        let mut seq = head;
        while seq > 0 && seq + cap > head {
            seq -= 1;
            if let Some(rec) = self.read_slot((seq & self.mask) as usize) {
                if rec.seq == seq && rec.trace == trace {
                    out.push(rec);
                }
            }
        }
        out
    }

    /// The pinned slow-query log, newest first.
    pub fn slow_log(&self) -> Vec<RequestRecord> {
        self.pinned.lock().iter().rev().cloned().collect()
    }

    /// The `GET /debug/requests` document.
    pub fn debug_json(&self, filter: &RecordFilter) -> Value {
        self.sync_counters();
        let requests: Vec<Value> = self.recent(filter).iter().map(|r| r.to_json()).collect();
        let slow: Vec<Value> = self.slow_log().iter().map(|r| r.to_json()).collect();
        jobj! {
            "capacity" => self.capacity() as i64,
            "recorded_total" => self.recorded() as i64,
            "dropped_total" => self.dropped() as i64,
            "slow_threshold_ms" => self.slow_ns as f64 / 1e6,
            "requests" => Value::Array(requests),
            "slow" => Value::Array(slow),
        }
    }
}

fn decode(w: &[u64; SLOT_WORDS]) -> RequestRecord {
    let meta = w[W_META];
    let flags = (meta >> 24) & 0xff;
    let tlen = ((meta >> 48) & 0xff) as usize;
    let ulen = (meta >> 56) as usize;
    let cost = if flags & FLAG_COST != 0 {
        let mut est = [0u64; COST_WORDS];
        let mut act = [0u64; COST_WORDS];
        est.copy_from_slice(&w[W_EST0..W_EST0 + COST_WORDS]);
        act.copy_from_slice(&w[W_ACT0..W_ACT0 + COST_WORDS]);
        Some(CostPair {
            estimated: QueryCost::from_words(&est),
            actual: QueryCost::from_words(&act),
            estimated_ns: w[W_EST_NS],
            actual_ns: w[W_ACT_NS],
        })
    } else {
        None
    };
    let admission = if flags & FLAG_ADMISSION != 0 {
        Some(AdmissionSnapshot {
            decision: AdmissionDecision::from_code((meta >> 40) & 0xff),
            estimated_secs: f64::from_bits(w[W_ADM_EST]),
            tokens_before: f64::from_bits(w[W_ADM_BEFORE]),
            tokens_after: f64::from_bits(w[W_ADM_AFTER]),
            rate: f64::from_bits(w[W_ADM_RATE]),
            burst: f64::from_bits(w[W_ADM_BURST]),
            retry_after_secs: w[W_ADM_RETRY],
        })
    } else {
        None
    };
    let url = load_str(&w[W_URL0..W_URL0 + URL_WORDS], ulen);
    // The hot path stores 0 rather than hashing; recompute from the
    // stored (possibly truncated) key at read time. A nonzero word means
    // an eager path (explain) hashed the full key already.
    let fingerprint = if w[W_FP] != 0 { w[W_FP] } else { fingerprint64(&url) };
    RequestRecord {
        seq: w[W_SEQ],
        disposition: Disposition::from_code(meta & 0xff),
        status: ((meta >> 8) & 0xffff) as u16,
        trace: TraceId(((w[W_TRACE_HI] as u128) << 64) | w[W_TRACE_LO] as u128),
        span: SpanId(w[W_SPAN]),
        fingerprint,
        tenant: load_str(&w[W_TENANT0..W_TENANT0 + TENANT_WORDS], tlen),
        url,
        truncated: flags & FLAG_TRUNCATED != 0,
        explain: flags & FLAG_EXPLAIN != 0,
        slow: flags & FLAG_SLOW != 0,
        stages_ns: std::array::from_fn(|i| w[W_STAGE0 + i]),
        total_ns: w[W_TOTAL],
        vtime_execute_ns: w[W_VT_EXEC],
        vtime_encode_ns: w[W_VT_ENC],
        bytes_out: w[W_BYTES_OUT],
        verdict: CacheVerdict::from_code((meta >> 32) & 0xff),
        cost,
        admission,
    }
}

// ---------------------------------------------------------------------------
// Base64 (for the explain envelope's byte-exact payload)
// ---------------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 (RFC 4648, padded). The explain envelope carries the
/// response payload through this so compressed bodies survive JSON.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { B64[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { B64[n as usize & 63] as char } else { '=' });
    }
    out
}

/// Inverse of [`base64_encode`]; `None` on malformed input.
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        Some(match c {
            b'A'..=b'Z' => (c - b'A') as u32,
            b'a'..=b'z' => (c - b'a' + 26) as u32,
            b'0'..=b'9' => (c - b'0' + 52) as u32,
            b'+' => 62,
            b'/' => 63,
            _ => return None,
        })
    }
    let s = s.as_bytes();
    if !s.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    for chunk in s.chunks(4) {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || chunk[..4 - pad].contains(&b'=') {
            return None;
        }
        let mut n = 0u32;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | val(c)?;
        }
        n <<= 6 * pad;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draft_with<'a>(url: &'a str, seq_hint: u64) -> Draft<'a> {
        let mut d = Draft::new(url, "anonymous", TraceId(seq_hint as u128 + 1), SpanId(7));
        d.fingerprint = fingerprint64(url);
        d.disposition = Disposition::Hit;
        d.status = 200;
        d.verdict = CacheVerdict::Valid;
        d.total_ns = 1_000;
        d.stages_ns[STAGE_CACHE] = 1_000;
        d.bytes_out = 42;
        d
    }

    #[test]
    fn record_roundtrips_every_field() {
        let rec = QueryRecorder::new(16, 0.0);
        let mut d = Draft::new("/v1/metrics?start=a&end=b", "tenant-x", TraceId(0xabcd), SpanId(9));
        d.fingerprint = 0xfeed;
        d.disposition = Disposition::Miss;
        d.status = 200;
        d.verdict = CacheVerdict::Invalidated;
        d.explain = true;
        d.stages_ns = [1, 2, 3, 4, 5, 6];
        d.total_ns = 21;
        d.vtime_execute_ns = 1_000_000;
        d.vtime_encode_ns = 2_000_000;
        d.bytes_out = 711;
        let est = QueryCost { points: 100, bytes: 800, queries: 5, ..QueryCost::default() };
        let act = QueryCost {
            points: 90,
            bytes: 750,
            queries: 5,
            blocks_cold: 2,
            bytes_cold: 64,
            ..QueryCost::default()
        };
        d.cost = Some(CostPair { estimated: est, actual: act, estimated_ns: 500, actual_ns: 450 });
        d.admission = Some(AdmissionSnapshot {
            decision: AdmissionDecision::Charged,
            estimated_secs: 1.5,
            tokens_before: 10.0,
            tokens_after: 8.5,
            rate: 2.0,
            burst: 20.0,
            retry_after_secs: 0,
        });
        rec.record(&d);
        let got = rec.recent(&RecordFilter::default());
        assert_eq!(got.len(), 1);
        let r = &got[0];
        assert_eq!(r.seq, 0);
        assert_eq!(r.disposition, Disposition::Miss);
        assert_eq!(r.status, 200);
        assert_eq!(r.trace, TraceId(0xabcd));
        assert_eq!(r.span, SpanId(9));
        assert_eq!(r.fingerprint, 0xfeed);
        assert_eq!(r.tenant, "tenant-x");
        assert_eq!(r.url, "/v1/metrics?start=a&end=b");
        assert!(r.explain && !r.truncated);
        assert_eq!(r.stages_ns, [1, 2, 3, 4, 5, 6]);
        assert_eq!(r.vtime_execute_ns, 1_000_000);
        assert_eq!(r.bytes_out, 711);
        assert_eq!(r.verdict, CacheVerdict::Invalidated);
        let cost = r.cost.expect("cost present");
        assert_eq!(cost.actual.bytes_cold, 64);
        assert_eq!(cost.estimated.points, 100);
        let adm = r.admission.expect("admission present");
        assert_eq!(adm.decision, AdmissionDecision::Charged);
        assert_eq!(adm.tokens_after, 8.5);
    }

    #[test]
    fn ring_recycles_oldest_slots() {
        let rec = QueryRecorder::new(16, 0.0);
        for i in 0..40u64 {
            rec.record(&draft_with("/u", i));
        }
        let all = rec.recent(&RecordFilter { limit: Some(100), ..RecordFilter::default() });
        assert_eq!(all.len(), 16, "ring holds exactly capacity");
        assert_eq!(all[0].seq, 39, "newest first");
        assert_eq!(all.last().unwrap().seq, 24, "oldest surviving = head - capacity");
        assert_eq!(rec.recorded(), 40);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn filters_match_disposition_tenant_and_min_ms() {
        let rec = QueryRecorder::new(64, 0.0);
        let mut a = draft_with("/a", 0);
        a.disposition = Disposition::Miss;
        a.total_ns = 5_000_000; // 5 ms
        rec.record(&a);
        let mut b = draft_with("/b", 1);
        b.tenant = "rogue";
        rec.record(&b);
        rec.record(&draft_with("/c", 2));

        let miss = rec.recent(&RecordFilter {
            disposition: Some(Disposition::Miss),
            ..RecordFilter::default()
        });
        assert_eq!(miss.len(), 1);
        assert_eq!(miss[0].url, "/a");

        let slow = rec.recent(&RecordFilter { min_ms: Some(1.0), ..RecordFilter::default() });
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].url, "/a");

        let rogue = rec
            .recent(&RecordFilter { tenant: Some("rogue".to_string()), ..RecordFilter::default() });
        assert_eq!(rogue.len(), 1);
        assert_eq!(rogue[0].url, "/b");

        let limited = rec.recent(&RecordFilter { limit: Some(2), ..RecordFilter::default() });
        assert_eq!(limited.len(), 2);
    }

    #[test]
    fn by_trace_finds_all_records_of_a_trace() {
        let rec = QueryRecorder::new(64, 0.0);
        for i in 0..6u64 {
            let mut d = draft_with("/t", i);
            d.trace = TraceId(if i % 2 == 0 { 0x11 } else { 0x22 });
            rec.record(&d);
        }
        let found = rec.by_trace(TraceId(0x11));
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|r| r.trace == TraceId(0x11)));
        assert!(rec.by_trace(TraceId(0x99)).is_empty());
    }

    #[test]
    fn slow_records_pin_and_survive_ring_recycling() {
        let rec = QueryRecorder::new(16, 1.0); // 1 ms threshold
        let mut slow = draft_with("/slow", 0);
        slow.disposition = Disposition::Miss;
        slow.vtime_execute_ns = 5_000_000; // 5 ms modelled
        rec.record(&slow);
        // Lap the ring twice; the pinned record must survive.
        for i in 0..40u64 {
            rec.record(&draft_with("/fast", i));
        }
        let pinned = rec.slow_log();
        assert_eq!(pinned.len(), 1);
        assert_eq!(pinned[0].url, "/slow");
        assert!(pinned[0].slow);
        let live = rec.recent(&RecordFilter { limit: Some(100), ..RecordFilter::default() });
        assert!(live.iter().all(|r| r.url != "/slow"), "ring copy recycled");
    }

    #[test]
    fn long_strings_truncate_and_flag() {
        let rec = QueryRecorder::new(16, 0.0);
        let long_url = format!("/v1/metrics?{}", "x".repeat(400));
        let mut d = draft_with(&long_url, 0);
        d.tenant = "a-tenant-name-well-beyond-twenty-four-bytes";
        rec.record(&d);
        let got = &rec.recent(&RecordFilter::default())[0];
        assert!(got.truncated);
        assert_eq!(got.url.len(), URL_BYTES);
        assert_eq!(got.tenant.len(), TENANT_BYTES);
        assert!(long_url.starts_with(&got.url));
    }

    #[test]
    fn fingerprint_is_stable_and_key_sensitive() {
        let a = fingerprint64("/v1/metrics?start=1&end=2");
        assert_eq!(a, fingerprint64("/v1/metrics?start=1&end=2"));
        assert_ne!(a, fingerprint64("/v1/metrics?start=1&end=3"));
        assert_ne!(fingerprint64(""), fingerprint64("\0"));
    }

    #[test]
    fn base64_roundtrips_arbitrary_bytes() {
        for len in [0usize, 1, 2, 3, 4, 57, 256] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let enc = base64_encode(&data);
            assert_eq!(base64_decode(&enc).expect("decodes"), data, "len {len}");
        }
        assert_eq!(base64_encode(b"Mon"), "TW9u");
        assert_eq!(base64_encode(b"M"), "TQ==");
        assert!(base64_decode("bad!").is_none());
        assert!(base64_decode("abc").is_none());
    }

    #[test]
    fn ticks_convert_to_plausible_nanos() {
        let t0 = ticks_now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let ns = ticks_to_ns(ticks_now().saturating_sub(t0));
        assert!(ns > 2_000_000, "5 ms sleep measured as {ns} ns");
        assert!(ns < 1_000_000_000, "5 ms sleep measured as {ns} ns");
    }

    #[test]
    fn record_json_shape_carries_cost_and_admission() {
        let rec = QueryRecorder::new(16, 0.0);
        let mut d = draft_with("/v1/metrics?x=1", 0);
        d.disposition = Disposition::Rejected;
        d.status = 429;
        d.admission = Some(AdmissionSnapshot {
            decision: AdmissionDecision::RejectedTenantBudget,
            estimated_secs: 3.0,
            tokens_before: 1.0,
            tokens_after: 1.0,
            rate: 2.0,
            burst: 20.0,
            retry_after_secs: 1,
        });
        rec.record(&d);
        let doc = rec.debug_json(&RecordFilter::default());
        assert_eq!(doc.get("capacity").unwrap().as_i64().unwrap(), 16);
        let reqs = doc.get("requests").unwrap().as_array().unwrap();
        assert_eq!(reqs.len(), 1);
        let adm = reqs[0].get("admission").expect("admission block");
        assert_eq!(adm.get("decision").unwrap().as_str().unwrap(), "rejected_tenant_budget");
        assert_eq!(adm.get("retry_after_secs").unwrap().as_i64().unwrap(), 1);
        assert!(reqs[0].get("cost").is_none(), "no cost block without execution");
    }
}
