//! Restart equivalence at the HTTP boundary: a Metrics Builder serving
//! from a crash-recovered database must answer `/v1/metrics` with the
//! exact bytes an uninterrupted deployment would produce.
//!
//! The tsdb-level crash tests (`crates/tsdb/tests/wal_crash.rs`) prove
//! the engine replays a consistent prefix; this test proves nothing is
//! lost in translation through the whole serving stack — planner,
//! executor, response assembly, JSON rendering, and the compressed
//! variant — because dashboards diff documents, not shard contents.

use monster_builder::service::{router, ServiceConfig};
use monster_http::{Request, Response, Router, Status};
use monster_tsdb::recover::{copy_dir_killed_at, wal_extent};
use monster_tsdb::{DataPoint, Db, DbConfig};
use monster_util::{EpochSecs, NodeId};
use std::sync::Arc;

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("monster-restart-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One collection interval of the standard two-node Power fleet.
fn batch_at(ids: &[NodeId], i: i64) -> Vec<DataPoint> {
    ids.iter()
        .map(|n| {
            DataPoint::new("Power", EpochSecs::new(i * 60))
                .tag("NodeId", n.bmc_addr())
                .tag("Label", "NodePower")
                .field_f64("Reading", 250.0 + (i % 37) as f64)
        })
        .collect()
}

fn get(router: &Router, url: &str) -> Response {
    router.dispatch(&Request::get(url))
}

#[test]
fn recovered_service_serves_byte_identical_documents() {
    let dir = fresh_dir("main");
    let config = DbConfig::default();
    let ids = NodeId::enumerate(2, 4);

    // The deployment that will crash: WAL-backed, fed through the staged
    // ingest path like a real collector, synced, then killed hard — the
    // process image is gone, only the directory remains. `copy_dir_killed_at`
    // at the full extent models a kill after the final group commit.
    let (db, _) = Db::recover(config, &dir).unwrap();
    // The uninterrupted twin: same writes, never restarted.
    let twin = Arc::new(Db::new(config));
    {
        let mut stager = db.stager_with_capacity(64);
        let mut twin_stager = twin.stager_with_capacity(64);
        for i in 0..60i64 {
            let b = batch_at(&ids, i);
            stager.stage_batch(&b).unwrap();
            twin_stager.stage_batch(&b).unwrap();
        }
    }
    db.wal_sync().unwrap();
    drop(db);

    let killed = fresh_dir("killed");
    let extent = wal_extent(&dir).unwrap();
    copy_dir_killed_at(&dir, &killed, extent).unwrap();
    let (recovered, report) = Db::recover(config, &killed).unwrap();
    assert_eq!(report.records_failed, 0);
    assert!(report.replayed_points > 0);

    let service_recovered = router(Arc::new(recovered), ids.clone(), ServiceConfig::default());
    let service_twin = router(Arc::clone(&twin), ids, ServiceConfig::default());

    let urls = [
        "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m",
        "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=10m&aggregation=mean",
        "/v1/metrics?start=1970-01-01T00:30:00Z&end=1970-01-01T01:00:00Z&interval=1m&aggregation=min",
        "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m&compress=true",
    ];
    for url in urls {
        let a = get(&service_recovered, url);
        let b = get(&service_twin, url);
        assert_eq!(a.status, Status::OK, "{url}");
        assert_eq!(b.status, Status::OK, "{url}");
        assert_eq!(
            a.body, b.body,
            "recovered service diverged from the uninterrupted twin on {url}"
        );
        // And each side's cache hit re-serves those same bytes.
        let again = get(&service_recovered, url);
        assert_eq!(again.headers.get("X-Cache"), Some("hit"));
        assert_eq!(again.body, b.body, "{url}");
    }

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&killed).ok();
}

/// A kill *before* the final group commit serves a consistent — possibly
/// shorter — history: the recovered service must still agree byte-for-byte
/// with a twin fed the replayed prefix, and never 500 or serve a torn
/// document.
#[test]
fn torn_tail_service_serves_a_consistent_prefix() {
    let dir = fresh_dir("torn");
    let config = DbConfig::default();
    let ids = NodeId::enumerate(2, 4);

    let (db, _) = Db::recover(config, &dir).unwrap();
    let batches: Vec<Vec<DataPoint>> = (0..60).map(|i| batch_at(&ids, i)).collect();
    for b in &batches {
        db.write_batch(b).unwrap();
    }
    // No explicit sync: the tail of the log is fair game for the kill.
    drop(db);

    let killed = fresh_dir("torn-killed");
    let extent = wal_extent(&dir).unwrap();
    // Cut mid-record at ~70% of the log.
    copy_dir_killed_at(&dir, &killed, extent * 7 / 10).unwrap();
    let (recovered, report) = Db::recover(config, &killed).unwrap();
    let k = report.replayed_records as usize;
    assert!(k < batches.len(), "cut at 70% must lose some unsynced tail");

    let twin = Arc::new(Db::new(config));
    for b in &batches[..k] {
        twin.write_batch(b).unwrap();
    }

    let service_recovered = router(Arc::new(recovered), ids.clone(), ServiceConfig::default());
    let service_twin = router(Arc::clone(&twin), ids, ServiceConfig::default());
    let url = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";
    let a = get(&service_recovered, url);
    let b = get(&service_twin, url);
    assert_eq!(a.status, Status::OK);
    assert_eq!(a.body, b.body, "torn-tail recovery must serve the twin's prefix document");

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&killed).ok();
}
