//! HELP-gated metric registration for the flight recorder.
//!
//! The recorder's metric families (`monster_builder_qlog_*`,
//! `monster_builder_slow_queries_total`,
//! `monster_builder_cost_estimate_ratio{stage=...}`) register inside
//! `QueryRecorder::new` — so a deployment that disables the recorder
//! exposes *none* of them, and a dashboard can tell "recorder off" from
//! "no slow queries yet" by the family's absence. The obs registry is
//! process-global, which is why this assertion lives in its own
//! integration-test binary: any other test that constructs an enabled
//! service would pollute the exposition. For the same reason this file
//! holds exactly ONE `#[test]` — the disabled-state scrape must happen
//! before any enabled recorder exists in the process.

use monster_builder::service::{router, QlogConfig, ServiceConfig};
use monster_http::{Request, Router};
use monster_tsdb::{Db, DbConfig};
use monster_util::NodeId;
use std::sync::Arc;

const QLOG_FAMILIES: [&str; 4] = [
    "monster_builder_qlog_records_total",
    "monster_builder_qlog_dropped_total",
    "monster_builder_slow_queries_total",
    "monster_builder_cost_estimate_ratio",
];

fn service(qlog: QlogConfig) -> Router {
    router(
        Arc::new(Db::new(DbConfig::default())),
        NodeId::enumerate(2, 4),
        ServiceConfig { qlog, ..ServiceConfig::default() },
    )
}

fn scrape(service: &Router) -> String {
    let resp = service.dispatch(&Request::get("/metrics"));
    assert_eq!(resp.status.0, 200);
    String::from_utf8(resp.body.to_vec()).expect("utf-8 exposition")
}

#[test]
fn recorder_metrics_register_only_when_the_recorder_is_enabled() {
    // Phase 1 — disabled: no recorder is ever constructed, so the
    // exposition must not mention any qlog family, and the ring-backed
    // endpoints 404.
    let off = service(QlogConfig { enabled: false, ..QlogConfig::default() });
    let text = scrape(&off);
    for family in QLOG_FAMILIES {
        assert!(
            !text.contains(family),
            "`{family}` leaked into the exposition with the recorder disabled"
        );
    }
    assert_eq!(off.dispatch(&Request::get("/debug/requests")).status.0, 404);
    assert_eq!(
        off.dispatch(&Request::get("/debug/requests/00000000000000000000000000000001")).status.0,
        404
    );

    // Phase 2 — enabled (same process, same global registry): every
    // family appears, each with a `# HELP` line, and `/debug/requests`
    // serves the (empty) ring.
    let on = service(QlogConfig::default());
    let text = scrape(&on);
    for family in QLOG_FAMILIES {
        assert!(text.contains(family), "`{family}` missing with the recorder enabled");
        assert!(
            text.lines().any(|l| {
                l.strip_prefix("# HELP ")
                    .is_some_and(|rest| rest.split(['{', ' ']).next() == Some(family))
            }),
            "`{family}` has no HELP line"
        );
    }
    // The ratio histogram is labeled per stage.
    for stage in ["seconds", "points", "bytes", "blocks"] {
        let series = format!("monster_builder_cost_estimate_ratio{{stage=\"{stage}\"}}");
        assert!(text.contains(&series), "`{series}` missing from the exposition");
    }
    assert_eq!(on.dispatch(&Request::get("/debug/requests")).status.0, 200);
}
