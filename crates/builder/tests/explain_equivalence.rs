//! Property test: `?explain=true` never changes the bytes a caller gets.
//!
//! The explain envelope carries the response payload base64-coded next to
//! the flight-recorder record. For any interleaving of writes (appends
//! and backfills) and queries, the decoded payload must be **byte
//! identical** to the same request without `explain`, and the status must
//! match — whatever the disposition (hit, miss, negative 400, rejected
//! 429, or a coalesced follower). The mechanism under test is cache-key
//! normalization: `explain` is stripped before the cache/flight lookup,
//! so both forms share one entry and the payload cannot diverge even in
//! principle — this test would catch a regression where the explain form
//! re-executes (a racing write could then produce different bytes) or
//! pollutes the cache with envelopes.

use monster_builder::qlog::base64_decode;
use monster_builder::service::{router, QlogConfig, ServiceConfig};
use monster_builder::AdmissionConfig;
use monster_http::{Request, Response, Router};
use monster_tsdb::{DataPoint, Db, DbConfig};
use monster_util::{EpochSecs, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

const HORIZON: i64 = 7_200; // two hours of writable timestamps

/// `1970-01-01T..Z` for a small epoch-seconds value (< 86 400).
fn rfc3339(ts: i64) -> String {
    format!("1970-01-01T{:02}:{:02}:{:02}Z", ts / 3600, (ts % 3600) / 60, ts % 60)
}

#[derive(Debug, Clone)]
enum Op {
    Write(Vec<PointSpec>),
    Query(QuerySpec),
}

#[derive(Debug, Clone)]
struct PointSpec {
    measurement: &'static str,
    node: usize,
    ts: i64,
    value: f64,
}

#[derive(Debug, Clone)]
struct QuerySpec {
    start: i64,
    len: i64,
    interval: &'static str,
    aggregation: &'static str, // "median" is invalid → deterministic 400
    compress: bool,
    explain_first: bool,
}

impl QuerySpec {
    fn url(&self) -> String {
        let mut url = format!(
            "/v1/metrics?start={}&end={}&interval={}&aggregation={}",
            rfc3339(self.start),
            rfc3339(self.start + self.len),
            self.interval,
            self.aggregation
        );
        if self.compress {
            url.push_str("&compress=true");
        }
        url
    }
}

fn arb_point() -> impl Strategy<Value = PointSpec> {
    (
        prop_oneof![Just("Power"), Just("Thermal"), Just("UGE")],
        0..3usize,
        0..HORIZON,
        -1000.0..1000.0f64,
    )
        .prop_map(|(measurement, node, ts, value)| PointSpec { measurement, node, ts, value })
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    (
        0..HORIZON,
        60..HORIZON,
        prop_oneof![Just("1m"), Just("5m"), Just("10m")],
        prop_oneof![Just("max"), Just("max"), Just("mean"), Just("median")],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(start, len, interval, aggregation, compress, explain_first)| QuerySpec {
            start,
            len,
            interval,
            aggregation,
            compress,
            explain_first,
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(arb_point(), 1..12).prop_map(Op::Write),
        arb_query().prop_map(Op::Query),
    ]
}

fn build(spec: &PointSpec, nodes: &[NodeId]) -> DataPoint {
    let node = nodes[spec.node];
    let p =
        DataPoint::new(spec.measurement, EpochSecs::new(spec.ts)).tag("NodeId", node.bmc_addr());
    match spec.measurement {
        "Power" => p.tag("Label", "NodePower").field_f64("Reading", spec.value),
        "Thermal" => p.tag("Label", "CPU1 Temp").field_f64("Reading", spec.value),
        _ => p.field_f64("CPUUsage", spec.value).field_f64("MemUsed", spec.value.abs()),
    }
}

/// Decode an explain envelope: (payload bytes, disposition, encoding).
fn open_envelope(resp: &Response) -> (Vec<u8>, String, String) {
    let doc = resp.json_body().expect("explain response is JSON");
    let payload = base64_decode(doc.get("payload_base64").unwrap().as_str().unwrap())
        .expect("payload_base64 decodes");
    let disposition =
        doc.get("explain").unwrap().get("disposition").unwrap().as_str().unwrap().to_string();
    let encoding = doc.get("payload_encoding").unwrap().as_str().unwrap().to_string();
    (payload, disposition, encoding)
}

/// Dispatch `url` explain-on and explain-off (in the given order) and
/// assert byte identity. Returns the explain disposition.
fn assert_equivalent(
    router: &Router,
    url: &str,
    explain_first: bool,
) -> Result<String, prop::test_runner::TestCaseError> {
    let explain_url = format!("{url}&explain=true");
    let (plain, wrapped) = if explain_first {
        let w = router.dispatch(&Request::get(&explain_url));
        (router.dispatch(&Request::get(url)), w)
    } else {
        let p = router.dispatch(&Request::get(url));
        (p, router.dispatch(&Request::get(&explain_url)))
    };
    prop_assert!(wrapped.status == plain.status, "status under explain, url {}", url);
    let (payload, disposition, encoding) = open_envelope(&wrapped);
    prop_assert!(payload == plain.body.to_vec(), "payload bytes, url {}", url);
    let plain_encoding = plain.headers.get("Content-Encoding").unwrap_or("identity");
    prop_assert!(encoding == plain_encoding, "payload encoding, url {}", url);
    Ok(disposition)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn explain_payload_is_byte_identical_across_interleavings(
        ops in prop::collection::vec(arb_op(), 1..20),
    ) {
        let db = Arc::new(Db::new(DbConfig::default()));
        let nodes = NodeId::enumerate(3, 4);
        let service = router(
            Arc::clone(&db),
            nodes.to_vec(),
            ServiceConfig {
                admission: AdmissionConfig { enabled: false, ..AdmissionConfig::default() },
                ..ServiceConfig::default()
            },
        );
        for op in &ops {
            match op {
                Op::Write(points) => {
                    let batch: Vec<DataPoint> =
                        points.iter().map(|s| build(s, &nodes)).collect();
                    db.write_batch(&batch).unwrap();
                }
                Op::Query(spec) => {
                    let url = spec.url();
                    let disposition = assert_equivalent(&service, &url, spec.explain_first)?;
                    if spec.aggregation == "median" {
                        prop_assert!(disposition == "negative", "url {}", &url);
                    }
                    // Run the pair again: now both sides are warm and the
                    // explain form must report (and share) the hit.
                    let disposition = assert_equivalent(&service, &url, spec.explain_first)?;
                    let expected = if spec.aggregation == "median" { "negative" } else { "hit" };
                    prop_assert!(disposition == expected, "url {} expected {} got {}", &url, expected, disposition);
                }
            }
        }
    }
}

fn seeded_service(admission: AdmissionConfig) -> Router {
    let db = Arc::new(Db::new(DbConfig::default()));
    let nodes = NodeId::enumerate(2, 4);
    let mut batch = Vec::new();
    for i in 0..60i64 {
        for &n in &nodes {
            batch.push(
                DataPoint::new("Power", EpochSecs::new(i * 60))
                    .tag("NodeId", n.bmc_addr())
                    .tag("Label", "NodePower")
                    .field_f64("Reading", 250.0 + i as f64),
            );
        }
    }
    db.write_batch(&batch).unwrap();
    router(db, nodes, ServiceConfig { admission, ..ServiceConfig::default() })
}

const URL: &str = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";

/// The 429 disposition: the envelope preserves status, `Retry-After`,
/// and the rejection body bytes.
#[test]
fn explain_is_byte_identical_for_rejected_requests() {
    let service = seeded_service(AdmissionConfig {
        enabled: true,
        cheap_secs: 0.0,
        reject_secs: 0.0,
        ..AdmissionConfig::default()
    });
    let plain = service.dispatch(&Request::get(URL));
    assert_eq!(plain.status.0, 429);
    let wrapped = service.dispatch(&Request::get(&format!("{URL}&explain=true")));
    assert_eq!(wrapped.status.0, 429);
    assert_eq!(
        wrapped.headers.get("Retry-After"),
        plain.headers.get("Retry-After"),
        "Retry-After must survive the envelope"
    );
    let (payload, disposition, _) = open_envelope(&wrapped);
    assert_eq!(payload, plain.body.to_vec());
    assert_eq!(disposition, "rejected");
}

/// The coalesced disposition: under a concurrent burst mixing explain-on
/// and explain-off requests, every payload is byte-identical regardless
/// of which thread led, followed, or hit.
#[test]
fn explain_is_byte_identical_under_coalescing() {
    let service =
        Arc::new(seeded_service(AdmissionConfig { enabled: false, ..AdmissionConfig::default() }));
    let mut handles = Vec::new();
    for i in 0..8 {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let explain = i % 2 == 0;
            let url = if explain { format!("{URL}&explain=true") } else { URL.to_string() };
            let resp = service.dispatch(&Request::get(&url));
            assert_eq!(resp.status.0, 200);
            if explain {
                let (payload, disposition, _) = open_envelope(&resp);
                assert!(
                    ["hit", "miss", "coalesced"].contains(&disposition.as_str()),
                    "unexpected disposition {disposition}"
                );
                payload
            } else {
                resp.body.to_vec()
            }
        }));
    }
    let bodies: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0]);
    }
}

/// The recorder-disabled configuration still honors `?explain=true` —
/// the record is assembled per request, inline — and still normalizes
/// the cache key.
#[test]
fn explain_works_with_the_recorder_disabled() {
    let db = Arc::new(Db::new(DbConfig::default()));
    let nodes = NodeId::enumerate(2, 4);
    db.write(
        DataPoint::new("Power", EpochSecs::new(60))
            .tag("NodeId", "10.101.1.1")
            .tag("Label", "NodePower")
            .field_f64("Reading", 250.0),
    )
    .unwrap();
    let service = router(
        db,
        nodes,
        ServiceConfig {
            qlog: QlogConfig { enabled: false, ..QlogConfig::default() },
            ..ServiceConfig::default()
        },
    );
    let plain = service.dispatch(&Request::get(URL));
    let wrapped = service.dispatch(&Request::get(&format!("{URL}&explain=true")));
    assert_eq!(wrapped.status, plain.status);
    let (payload, disposition, _) = open_envelope(&wrapped);
    assert_eq!(payload, plain.body.to_vec());
    assert_eq!(disposition, "hit", "explain joins the normalized cache entry");
    // But the ring-backed endpoint is gone.
    assert_eq!(service.dispatch(&Request::get("/debug/requests")).status.0, 404);
}
