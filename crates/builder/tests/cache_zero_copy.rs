//! A cache hit must not copy body bytes.
//!
//! The first-generation `ResponseCache` deep-cloned the stored `Response`
//! on every hit — for a 1 MiB dashboard document served to 10 000
//! subscribers, that is 10 GiB of memcpy for bytes that never change.
//! Bodies are now `Arc<[u8]>` behind `monster_http::Body`, so a hit
//! clones a pointer. A counting `#[global_allocator]` proves it: the
//! cache-level hit path performs **zero** allocations, and a full
//! per-request serve (header clone + `X-Cache` stamp) allocates orders of
//! magnitude less than the body size.

use monster_builder::qlog::{self, Disposition, Draft, QueryRecorder, STAGE_CACHE};
use monster_builder::{ResponseCache, Validity};
use monster_http::Response;
use monster_obs::{SpanId, TraceId};
use monster_tsdb::{Db, DbConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static BYTES: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

const BODY_LEN: usize = 1 << 20; // 1 MiB

/// Run `f` with the counting window open; returns (allocations, bytes).
fn counted(f: impl FnOnce()) -> (usize, usize) {
    ALLOCS.store(0, Ordering::SeqCst);
    BYTES.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCS.load(Ordering::SeqCst), BYTES.load(Ordering::SeqCst))
}

#[test]
fn cache_hits_copy_zero_body_bytes() {
    let db = Db::new(DbConfig::default());
    let cache = ResponseCache::new(8);
    let body = vec![0x5Au8; BODY_LEN];
    cache.put("panel", Validity::Always, Response::bytes(body, "application/json"));
    // Warm: the first get may touch counter registry internals.
    let warm = cache.get("panel", &db).expect("present");
    assert_eq!(warm.body.len(), BODY_LEN);

    const HITS: usize = 100;
    let (allocs, bytes) = counted(|| {
        for _ in 0..HITS {
            let hit = cache.get("panel", &db).expect("present");
            assert_eq!(hit.body.len(), BODY_LEN);
        }
    });
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "the cache hit path must be allocation-free: {HITS} hits allocated {bytes} bytes in {allocs} allocations"
    );
}

#[test]
fn flight_recording_on_the_hit_path_is_allocation_free() {
    // The PR-10 recorder rides the same warm path the test above
    // protects: timing stamps, fingerprint, and the seqlock ring write
    // must all stay off the heap, or recording would regress the
    // zero-copy hit guarantee.
    let db = Db::new(DbConfig::default());
    let cache = ResponseCache::new(8);
    let recorder = QueryRecorder::new(64, 0.0);
    let key = "/v1/metrics?start=1970-01-01T00:00:00Z&end=1970-01-01T01:00:00Z&interval=5m";
    let body = vec![0x5Au8; BODY_LEN];
    cache.put(key, Validity::Always, Response::bytes(body, "application/json"));
    // Warm: first probe + first record touch registry/calibration state.
    let (warm, _) = cache.probe(key, &db);
    assert_eq!(warm.expect("present").body.len(), BODY_LEN);
    {
        let d = Draft::new(key, "anonymous", TraceId(1), SpanId(1));
        recorder.record(&d);
    }

    const HITS: usize = 100;
    let (allocs, bytes) = counted(|| {
        for i in 0..HITS {
            // Exactly what the service's hit disposition does per
            // request, minus the (pre-existing) header clone.
            let t0 = qlog::ticks_now();
            let (hit, verdict) = cache.probe(key, &db);
            assert_eq!(hit.expect("present").body.len(), BODY_LEN);
            let mut d = Draft::new(key, "anonymous", TraceId(i as u128 + 2), SpanId(7));
            d.fingerprint = qlog::fingerprint64(key);
            d.disposition = Disposition::Hit;
            d.verdict = verdict;
            d.status = 200;
            d.stages_ns[STAGE_CACHE] = qlog::ticks_to_ns(qlog::ticks_now().wrapping_sub(t0));
            d.total_ns = d.stages_ns[STAGE_CACHE];
            d.bytes_out = BODY_LEN as u64;
            recorder.record(&d);
        }
    });
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "recording a hit must be allocation-free: {HITS} recorded hits \
         allocated {bytes} bytes in {allocs} allocations"
    );
    assert_eq!(recorder.recorded(), HITS as u64 + 1);
    assert_eq!(recorder.dropped(), 0);
}

#[test]
fn per_request_serving_shares_the_body_storage() {
    let db = Db::new(DbConfig::default());
    let cache = ResponseCache::new(8);
    let body = vec![0x5Au8; BODY_LEN];
    cache.put("panel", Validity::Always, Response::bytes(body, "application/json"));
    let shared = cache.get("panel", &db).expect("present");

    // What the service does per request: clone the response (headers) and
    // stamp per-request headers. The body must remain the same storage.
    const SERVES: usize = 50;
    let mut out: Vec<Response> = Vec::with_capacity(SERVES);
    let (_allocs, bytes) = counted(|| {
        for _ in 0..SERVES {
            let mut resp = (*shared).clone();
            resp.headers.set("X-Cache", "hit");
            out.push(resp);
        }
    });
    for resp in &out {
        assert_eq!(resp.body.as_ptr(), shared.body.as_ptr(), "body storage must be shared");
    }
    // Headers and the Vec push allocate a little; the 1 MiB payload must
    // not be part of it — leave two orders of magnitude of headroom.
    assert!(
        bytes < SERVES * BODY_LEN / 100,
        "per-request serving copied body-scale memory: {bytes} bytes for {SERVES} serves"
    );
}
