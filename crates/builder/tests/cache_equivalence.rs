//! Property test: the cached + coalescing service is observationally
//! identical to a cache-off service.
//!
//! Both routers share ONE `Db`. The baseline router (`cache_entries: 0`,
//! `coalesce: false`) executes every request fresh; the cached router may
//! serve from its watermark-validity cache. For any interleaving of
//! writes (in-order appends and backfills) and queries, every response —
//! including 400s served by the negative cache — must be **byte
//! identical** to a fresh execution at the same point in time. If the
//! watermark validity rule ever held an entry past a write that changed
//! its window, the bodies would diverge and this test would shrink to the
//! offending interleaving.
//!
//! Admission is disabled on both sides: it rejects by modelled cost, not
//! by result, so it is equivalence-irrelevant and would only inject 429s.

use monster_builder::service::{router, ServiceConfig};
use monster_builder::AdmissionConfig;
use monster_http::{Request, Router};
use monster_tsdb::{DataPoint, Db, DbConfig};
use monster_util::{EpochSecs, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

const HORIZON: i64 = 7_200; // two hours of writable timestamps

/// `1970-01-01T..Z` for a small epoch-seconds value (< 86 400).
fn rfc3339(ts: i64) -> String {
    format!("1970-01-01T{:02}:{:02}:{:02}Z", ts / 3600, (ts % 3600) / 60, ts % 60)
}

#[derive(Debug, Clone)]
enum Op {
    /// Write a batch. Timestamps are arbitrary within the horizon, so
    /// interleavings naturally include backfills below the watermark.
    Write(Vec<PointSpec>),
    /// Dispatch the same URL against both routers, twice against the
    /// cached one (the second round exercises the hit path).
    Query(QuerySpec),
}

#[derive(Debug, Clone)]
struct PointSpec {
    measurement: &'static str,
    node: usize,
    ts: i64,
    value: f64,
}

#[derive(Debug, Clone)]
struct QuerySpec {
    start: i64,
    len: i64,
    interval: &'static str,
    aggregation: &'static str, // "median" is invalid → deterministic 400
}

impl QuerySpec {
    fn url(&self) -> String {
        format!(
            "/v1/metrics?start={}&end={}&interval={}&aggregation={}",
            rfc3339(self.start),
            rfc3339(self.start + self.len),
            self.interval,
            self.aggregation
        )
    }
}

fn arb_point() -> impl Strategy<Value = PointSpec> {
    (
        prop_oneof![Just("Power"), Just("Thermal"), Just("UGE")],
        0..3usize,
        0..HORIZON,
        -1000.0..1000.0f64,
    )
        .prop_map(|(measurement, node, ts, value)| PointSpec { measurement, node, ts, value })
}

fn arb_query() -> impl Strategy<Value = QuerySpec> {
    (
        0..HORIZON,
        60..HORIZON,
        prop_oneof![Just("1m"), Just("5m"), Just("10m")],
        prop_oneof![Just("max"), Just("max"), Just("mean"), Just("median")],
    )
        .prop_map(|(start, len, interval, aggregation)| QuerySpec {
            start,
            len,
            interval,
            aggregation,
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(arb_point(), 1..12).prop_map(Op::Write),
        arb_query().prop_map(Op::Query),
    ]
}

fn build(spec: &PointSpec, nodes: &[NodeId]) -> DataPoint {
    let node = nodes[spec.node];
    let p =
        DataPoint::new(spec.measurement, EpochSecs::new(spec.ts)).tag("NodeId", node.bmc_addr());
    match spec.measurement {
        "Power" => p.tag("Label", "NodePower").field_f64("Reading", spec.value),
        "Thermal" => p.tag("Label", "CPU1 Temp").field_f64("Reading", spec.value),
        _ => p.field_f64("CPUUsage", spec.value).field_f64("MemUsed", spec.value.abs()),
    }
}

fn service_pair(db: &Arc<Db>, nodes: &[NodeId]) -> (Router, Router) {
    let off = AdmissionConfig { enabled: false, ..AdmissionConfig::default() };
    let cached = router(
        Arc::clone(db),
        nodes.to_vec(),
        ServiceConfig { admission: off, ..ServiceConfig::default() },
    );
    let baseline = router(
        Arc::clone(db),
        nodes.to_vec(),
        ServiceConfig {
            cache_entries: 0,
            coalesce: false,
            admission: off,
            ..ServiceConfig::default()
        },
    );
    (cached, baseline)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cached_service_is_byte_identical_to_cache_off(
        ops in prop::collection::vec(arb_op(), 1..24),
    ) {
        let db = Arc::new(Db::new(DbConfig::default()));
        let nodes = NodeId::enumerate(3, 4);
        let (cached, baseline) = service_pair(&db, &nodes);
        for op in &ops {
            match op {
                Op::Write(points) => {
                    let batch: Vec<DataPoint> =
                        points.iter().map(|s| build(s, &nodes)).collect();
                    db.write_batch(&batch).unwrap();
                }
                Op::Query(spec) => {
                    let url = spec.url();
                    let fresh = baseline.dispatch(&Request::get(&url));
                    prop_assert!(
                        fresh.headers.get("X-Cache") == Some("miss"),
                        "baseline must never cache"
                    );
                    // First cached dispatch may hit or miss depending on
                    // what earlier ops did; either way the bytes must
                    // match a fresh execution.
                    let first = cached.dispatch(&Request::get(&url));
                    prop_assert!(first.status == fresh.status, "url {}", &url);
                    prop_assert!(first.body == fresh.body, "url {}", &url);
                    // Second dispatch is a guaranteed cache hit (nothing
                    // was written in between) and must serve the same
                    // bytes again.
                    let second = cached.dispatch(&Request::get(&url));
                    prop_assert!(second.headers.get("X-Cache") == Some("hit"), "url {}", &url);
                    prop_assert!(second.body == fresh.body, "url {}", &url);
                }
            }
        }
    }
}
