//! Canonical Huffman coding: length assignment, encode tables, decode.
//!
//! Codes are canonical (lexicographically assigned by length, then symbol),
//! so only the per-symbol code *lengths* travel in the container header.
//! Code length is capped at [`MAX_BITS`]; when the optimal tree exceeds the
//! cap, frequencies are repeatedly halved (clamping at one) and the tree is
//! rebuilt — the standard simple length-limiting heuristic.

use crate::bitio::{BitReader, BitWriter};
use monster_util::{Error, Result};

/// DEFLATE's code-length cap; 15 bits suffice for our block sizes.
pub const MAX_BITS: u32 = 15;

/// Compute canonical code lengths for `freqs` (one entry per symbol).
///
/// Symbols with zero frequency get length 0 (no code). If only one symbol
/// occurs it still gets a 1-bit code so the decoder can make progress.
pub fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let mut freqs = freqs.to_vec();
    loop {
        let lens = huffman_lengths(&freqs);
        let max = lens.iter().copied().max().unwrap_or(0);
        if max <= MAX_BITS {
            return lens;
        }
        // Flatten the distribution and retry; converges because frequencies
        // trend toward uniform.
        for f in freqs.iter_mut() {
            if *f > 1 {
                *f = (*f).div_ceil(2);
            }
        }
    }
}

/// Unlimited-depth Huffman lengths via pairing on a min-heap of
/// (weight, node). Ties break on node index so output is deterministic.
fn huffman_lengths(freqs: &[u64]) -> Vec<u32> {
    let n = freqs.len();
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lens = vec![0u32; n];
    match used.len() {
        0 => return lens,
        1 => {
            lens[used[0]] = 1;
            return lens;
        }
        _ => {}
    }

    // Internal tree: nodes 0..n are leaves; parents appended after.
    let mut weight: Vec<u64> = freqs.to_vec();
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        used.iter().map(|&i| Reverse((freqs[i], i))).collect();
    while heap.len() > 1 {
        let Reverse((w1, a)) = heap.pop().unwrap();
        let Reverse((w2, b)) = heap.pop().unwrap();
        let idx = weight.len();
        weight.push(w1 + w2);
        parent.push(usize::MAX);
        parent[a] = idx;
        parent[b] = idx;
        heap.push(Reverse((w1 + w2, idx)));
    }
    for &leaf in &used {
        let mut depth = 0;
        let mut node = leaf;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lens[leaf] = depth;
    }
    lens
}

/// Assign canonical codes from lengths. Returns, per symbol, `(code, len)`;
/// unused symbols get `(0, 0)`.
pub fn canonical_codes(lens: &[u32]) -> Vec<(u32, u32)> {
    let max_len = lens.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; (max_len + 1) as usize];
    for &l in lens {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; (max_len + 2) as usize];
    let mut code = 0u32;
    for bits in 1..=max_len {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    lens.iter()
        .map(|&l| {
            if l == 0 {
                (0, 0)
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                (c, l)
            }
        })
        .collect()
}

/// Encoder: canonical codes, emitted MSB-first within the code (the DEFLATE
/// convention) onto an LSB-first bit stream.
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<(u32, u32)>,
}

impl Encoder {
    /// Build from per-symbol code lengths.
    pub fn from_lengths(lens: &[u32]) -> Self {
        Encoder { codes: canonical_codes(lens) }
    }

    /// Emit `sym`'s code. Panics (debug) if the symbol has no code.
    pub fn encode(&self, w: &mut BitWriter, sym: usize) {
        let (code, len) = self.codes[sym];
        debug_assert!(len > 0, "encoding symbol {sym} with no code");
        // Reverse the code so the decoder reads MSB-of-code first from the
        // LSB-first stream.
        let rev = (code.reverse_bits()) >> (32 - len);
        w.write(rev as u64, len);
    }

    /// Bit length of `sym`'s code (0 when absent).
    pub fn len_of(&self, sym: usize) -> u32 {
        self.codes[sym].1
    }
}

/// Decoder over canonical codes: walks the code ranges length by length.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `first_code[l]` = smallest canonical code of length l.
    first_code: Vec<u32>,
    /// `first_index[l]` = index into `symbols` of that code.
    first_index: Vec<u32>,
    /// Count of codes per length.
    count: Vec<u32>,
    /// Symbols ordered by (length, symbol).
    symbols: Vec<u32>,
    max_len: u32,
}

impl Decoder {
    /// Build from per-symbol code lengths; errors on over-subscribed
    /// (invalid Kraft sum) length sets.
    pub fn from_lengths(lens: &[u32]) -> Result<Self> {
        let max_len = lens.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            return Err(Error::Corrupt("huffman table with no codes".into()));
        }
        if max_len > MAX_BITS {
            return Err(Error::Corrupt("huffman code length exceeds cap".into()));
        }
        let mut count = vec![0u32; (max_len + 1) as usize];
        for &l in lens {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Kraft inequality check: sum 2^(max-l) must not exceed 2^max.
        let mut kraft: u64 = 0;
        for l in 1..=max_len {
            kraft += (count[l as usize] as u64) << (max_len - l);
        }
        if kraft > 1u64 << max_len {
            return Err(Error::Corrupt("over-subscribed huffman lengths".into()));
        }
        let mut symbols: Vec<u32> = Vec::new();
        for l in 1..=max_len {
            for (sym, &sl) in lens.iter().enumerate() {
                if sl == l {
                    symbols.push(sym as u32);
                }
            }
        }
        let mut first_code = vec![0u32; (max_len + 1) as usize];
        let mut first_index = vec![0u32; (max_len + 1) as usize];
        let mut code = 0u32;
        let mut index = 0u32;
        for l in 1..=max_len {
            code <<= 1;
            first_code[l as usize] = code;
            first_index[l as usize] = index;
            code += count[l as usize];
            index += count[l as usize];
        }
        Ok(Decoder { first_code, first_index, count, symbols, max_len })
    }

    /// Decode one symbol from the reader.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32> {
        let mut code = 0u32;
        for l in 1..=self.max_len {
            code = (code << 1) | r.read_bit()?;
            let idx = l as usize;
            if self.count[idx] > 0
                && code < self.first_code[idx] + self.count[idx]
                && code >= self.first_code[idx]
            {
                let off = code - self.first_code[idx];
                return Ok(self.symbols[(self.first_index[idx] + off) as usize]);
            }
        }
        Err(Error::Corrupt("invalid huffman code".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(freqs: &[u64], stream: &[usize]) {
        let lens = code_lengths(freqs);
        let enc = Encoder::from_lengths(&lens);
        let dec = Decoder::from_lengths(&lens).unwrap();
        let mut w = BitWriter::new();
        for &s in stream {
            enc.encode(&mut w, s);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &s in stream {
            assert_eq!(dec.decode(&mut r).unwrap(), s as u32);
        }
    }

    #[test]
    fn skewed_alphabet_round_trips() {
        let freqs = [1000, 500, 100, 10, 1, 0, 3];
        let stream = [0, 1, 0, 2, 4, 6, 0, 1, 1, 3];
        round_trip(&freqs, &stream);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let lens = code_lengths(&[0, 42, 0]);
        assert_eq!(lens, vec![0, 1, 0]);
        round_trip(&[0, 42, 0], &[1, 1, 1]);
    }

    #[test]
    fn lengths_satisfy_kraft_and_optimality_bound() {
        let freqs: Vec<u64> = (1..=64).map(|i| i * i).collect();
        let lens = code_lengths(&freqs);
        let kraft: f64 = lens.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9);
        // More frequent symbols never get longer codes.
        for i in 1..lens.len() {
            assert!(lens[i] <= lens[i - 1], "lengths must be non-increasing with freq");
        }
    }

    #[test]
    fn length_cap_enforced_on_pathological_freqs() {
        // Fibonacci frequencies force maximal skew.
        let mut freqs = vec![1u64, 1];
        for i in 2..40 {
            let next = freqs[i - 1] + freqs[i - 2];
            freqs.push(next);
        }
        let lens = code_lengths(&freqs);
        assert!(lens.iter().all(|&l| l <= MAX_BITS));
        // Still decodable.
        assert!(Decoder::from_lengths(&lens).is_ok());
    }

    #[test]
    fn decoder_rejects_oversubscribed() {
        // Three 1-bit codes cannot coexist.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
        assert!(Decoder::from_lengths(&[0, 0]).is_err());
        assert!(Decoder::from_lengths(&[16]).is_err());
    }

    #[test]
    fn decoder_detects_dangling_code() {
        let lens = code_lengths(&[5, 5, 1, 0]);
        let dec = Decoder::from_lengths(&lens).unwrap();
        // All-ones bits beyond the deepest code is invalid for this table
        // only if the table is incomplete; craft an incomplete table:
        let dec2 = Decoder::from_lengths(&[2, 2, 2]).unwrap(); // one 2-bit slot unused
        let buf = [0b0000_0011u8]; // code "11" read MSB-first = unused slot
        let mut r = BitReader::new(&buf);
        // read_bit yields LSB first: bits 1,1 -> code 0b11.
        assert!(dec2.decode(&mut r).is_err());
        let _ = dec;
    }

    #[test]
    fn encoder_len_matches_assigned_lengths() {
        let lens = code_lengths(&[10, 5, 1]);
        let enc = Encoder::from_lengths(&lens);
        for (sym, &l) in lens.iter().enumerate() {
            assert_eq!(enc.len_of(sym), l);
        }
    }

    #[test]
    fn canonical_codes_are_lexicographic() {
        let codes = canonical_codes(&[2, 1, 3, 3]);
        // len-1 symbol gets 0; len-2 gets 10; len-3 get 110, 111.
        assert_eq!(codes[1], (0b0, 1));
        assert_eq!(codes[0], (0b10, 2));
        assert_eq!(codes[2], (0b110, 3));
        assert_eq!(codes[3], (0b111, 3));
    }
}
