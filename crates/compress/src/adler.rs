//! Adler-32 checksum (RFC 1950), the integrity check zlib streams carry.

const MOD: u32 = 65_521;
/// Largest n such that 255·n·(n+1)/2 + (n+1)·(MOD−1) stays below 2³² — the
/// standard deferred-modulo block size from the zlib reference code.
const NMAX: usize = 5552;

/// Compute the Adler-32 checksum of `data`.
pub fn adler32(data: &[u8]) -> u32 {
    let mut a: u32 = 1;
    let mut b: u32 = 0;
    for chunk in data.chunks(NMAX) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= MOD;
        b %= MOD;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 1950 reference values.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"a"), 0x0062_0062);
        assert_eq!(adler32(b"abc"), 0x024d_0127);
        assert_eq!(adler32(b"Wikipedia"), 0x11E6_0398);
    }

    #[test]
    fn deferred_modulo_matches_naive() {
        // Exercise the NMAX chunking path against a bytewise-mod reference.
        let data: Vec<u8> = (0..20_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut a: u32 = 1;
        let mut b: u32 = 0;
        for &byte in &data {
            a = (a + byte as u32) % MOD;
            b = (b + a) % MOD;
        }
        assert_eq!(adler32(&data), (b << 16) | a);
    }

    #[test]
    fn sensitive_to_any_byte_flip() {
        let mut data = vec![7u8; 1000];
        let base = adler32(&data);
        data[500] ^= 1;
        assert_ne!(adler32(&data), base);
    }
}
