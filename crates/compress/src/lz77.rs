//! LZ77 sliding-window match search with hash chains and lazy matching.

/// Compression effort level, 1 (fastest) to 9 (best ratio).
///
/// Level tunes the hash-chain search depth and whether lazy matching
/// (deferring a match by one byte when the next position matches longer)
/// is enabled — the same dials zlib's levels turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Level(u8);

impl Level {
    /// Construct a level, clamped into 1..=9.
    pub fn new(level: u8) -> Self {
        Level(level.clamp(1, 9))
    }

    /// Fastest (level 1).
    pub const FAST: Level = Level(1);
    /// Best ratio (level 9).
    pub const BEST: Level = Level(9);

    /// The numeric level.
    pub fn get(self) -> u8 {
        self.0
    }

    /// Maximum hash-chain positions examined per match attempt.
    fn max_chain(self) -> usize {
        match self.0 {
            1 => 4,
            2 => 8,
            3 => 16,
            4 => 32,
            5 => 64,
            6 => 128,
            7 => 256,
            8 => 512,
            _ => 1024,
        }
    }

    /// Lazy matching kicks in from level 4.
    fn lazy(self) -> bool {
        self.0 >= 4
    }

    /// Stop searching early once a match of this length is found.
    fn good_enough(self) -> usize {
        match self.0 {
            1..=3 => 16,
            4..=6 => 64,
            _ => MAX_MATCH,
        }
    }
}

impl Default for Level {
    /// Level 6, zlib's default trade-off.
    fn default() -> Self {
        Level(6)
    }
}

/// Window size: matches may reach back this far.
pub const WINDOW: usize = 32 * 1024;
/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 3;
/// Maximum match length (DEFLATE's cap).
pub const MAX_MATCH: usize = 258;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes starting `dist` bytes back.
    Match {
        /// Match length, `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Backward distance, `1..=WINDOW`.
        dist: u16,
    },
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], 0]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Tokenize `data` with the given effort level.
pub fn tokenize(data: &[u8], level: Level) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 3 + 8);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h] = most recent position with hash h; prev[i % WINDOW] = previous
    // position in the chain. usize::MAX = empty.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];
    let max_chain = level.max_chain();
    let good = level.good_enough();

    let insert = |head: &mut [usize], prev: &mut [usize], data: &[u8], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            prev[i % WINDOW] = head[h];
            head[h] = i;
        }
    };

    let find_match = |head: &[usize], prev: &[usize], data: &[u8], i: usize| -> (usize, usize) {
        if i + MIN_MATCH > data.len() {
            return (0, 0);
        }
        let max_len = MAX_MATCH.min(data.len() - i);
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut cand = head[hash3(data, i)];
        let mut chain = 0usize;
        while cand != usize::MAX && chain < max_chain {
            if cand >= i || i - cand > WINDOW {
                break;
            }
            // Quick reject: check the byte one past the current best.
            if best_len == 0 || data[cand + best_len] == data[i + best_len] {
                let mut l = 0usize;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l >= good || l == max_len {
                        break;
                    }
                }
            }
            let next = prev[cand % WINDOW];
            // Stale chain entries (overwritten ring slots) go backwards.
            if next != usize::MAX && next >= cand {
                break;
            }
            cand = next;
            chain += 1;
        }
        if best_len >= MIN_MATCH {
            (best_len, best_dist)
        } else {
            (0, 0)
        }
    };

    let mut i = 0usize;
    while i < n {
        let (len, dist) = find_match(&head, &prev, data, i);
        if len == 0 {
            tokens.push(Token::Literal(data[i]));
            insert(&mut head, &mut prev, data, i);
            i += 1;
            continue;
        }
        // Lazy matching: if the next position has a strictly longer match,
        // emit this byte as a literal instead.
        if level.lazy() && len < MAX_MATCH && i + 1 < n {
            insert(&mut head, &mut prev, data, i);
            let (next_len, _) = find_match(&head, &prev, data, i + 1);
            if next_len > len {
                tokens.push(Token::Literal(data[i]));
                i += 1;
                continue;
            }
            // Keep the current match; positions inside it still enter the
            // dictionary below (starting from i+1 since i was inserted).
            for j in i + 1..(i + len).min(n) {
                insert(&mut head, &mut prev, data, j);
            }
        } else {
            for j in i..(i + len).min(n) {
                insert(&mut head, &mut prev, data, j);
            }
        }
        tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
        i += len;
    }
    tokens
}

/// Expand tokens back into bytes. `hint` pre-sizes the output buffer.
pub fn detokenize(tokens: &[Token], hint: usize) -> Result<Vec<u8>, monster_util::Error> {
    let mut out: Vec<u8> = Vec::with_capacity(hint);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(monster_util::Error::Corrupt(format!(
                        "match distance {dist} exceeds output {}",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                // Overlapping copies are the point (RLE via dist < len).
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(data: &[u8], level: Level) {
        let toks = tokenize(data, level);
        let back = detokenize(&toks, data.len()).unwrap();
        assert_eq!(back, data, "round trip failed at level {:?}", level);
    }

    #[test]
    fn round_trips_all_levels() {
        let data = b"the quick brown fox jumps over the lazy dog; the quick brown fox again";
        for l in 1..=9 {
            rt(data, Level::new(l));
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        rt(b"", Level::default());
        rt(b"a", Level::default());
        rt(b"ab", Level::default());
        rt(b"abc", Level::default());
    }

    #[test]
    fn long_runs_compress_to_few_tokens() {
        let data = vec![b'x'; 10_000];
        let toks = tokenize(&data, Level::default());
        // A run compresses to ~1 literal + len/MAX_MATCH matches.
        assert!(toks.len() < 60, "got {} tokens", toks.len());
        rt(&data, Level::default());
    }

    #[test]
    fn repeated_json_finds_long_matches() {
        let unit = br#"{"NodeId":"10.101.1.1","Reading":273.8},"#;
        let data = unit.repeat(200);
        let toks = tokenize(&data, Level::default());
        let match_tokens = toks.iter().filter(|t| matches!(t, Token::Match { .. })).count();
        assert!(match_tokens > 0);
        assert!(toks.len() < data.len() / 10);
        rt(&data, Level::default());
    }

    #[test]
    fn incompressible_data_round_trips() {
        // Pseudo-random bytes: few matches, mostly literals.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xFF) as u8
            })
            .collect();
        for l in [1, 6, 9] {
            rt(&data, Level::new(l));
        }
    }

    #[test]
    fn higher_level_never_many_more_tokens() {
        let unit = b"abcdefgh-abcdefgh==abcdefgh";
        let data = unit.repeat(300);
        let fast = tokenize(&data, Level::FAST).len();
        let best = tokenize(&data, Level::BEST).len();
        assert!(best <= fast, "best {best} vs fast {fast}");
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        let toks = [Token::Match { len: 3, dist: 5 }];
        assert!(detokenize(&toks, 8).is_err());
        let toks = [Token::Literal(1), Token::Match { len: 3, dist: 0 }];
        assert!(detokenize(&toks, 8).is_err());
    }

    #[test]
    fn level_clamps() {
        assert_eq!(Level::new(0).get(), 1);
        assert_eq!(Level::new(99).get(), 9);
        assert_eq!(Level::default().get(), 6);
    }

    #[test]
    fn matches_beyond_window_are_not_used() {
        // A repeated prefix separated by > WINDOW junk cannot be referenced.
        let mut data = b"SIGNATURE-BLOCK".to_vec();
        let mut x: u64 = 12345;
        for _ in 0..(WINDOW + 1000) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            data.push((x >> 33) as u8 | 0x80); // avoid accidental ASCII matches
        }
        data.extend_from_slice(b"SIGNATURE-BLOCK");
        rt(&data, Level::BEST);
        let toks = tokenize(&data, Level::BEST);
        for t in &toks {
            if let Token::Match { dist, .. } = t {
                assert!((*dist as usize) <= WINDOW);
            }
        }
    }
}
