//! LSB-first bit-level I/O, as used by the DEFLATE family.

use monster_util::{Error, Result};

/// Accumulates bits least-significant-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Append the low `n` bits of `bits` (n ≤ 57).
    pub fn write(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 57, "write chunk too wide");
        debug_assert!(n == 64 || bits < (1u64 << n), "value wider than bit count");
        self.acc |= bits << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Pad to a byte boundary with zero bits and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xFF) as u8);
        }
        self.out
    }

    /// Bits written so far (including unflushed).
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }
}

/// Reads bits least-significant-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    byte_pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Read from `data` starting at its first byte.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, byte_pos: 0, acc: 0, nbits: 0 }
    }

    fn refill(&mut self) {
        while self.nbits <= 56 && self.byte_pos < self.data.len() {
            self.acc |= (self.data[self.byte_pos] as u64) << self.nbits;
            self.byte_pos += 1;
            self.nbits += 8;
        }
    }

    /// Read `n` bits (n ≤ 57); errors at end of stream.
    pub fn read(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 57);
        if n == 0 {
            return Ok(0);
        }
        self.refill();
        if self.nbits < n {
            return Err(Error::Corrupt("bit stream exhausted".into()));
        }
        let v = self.acc & ((1u64 << n) - 1);
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Read a single bit.
    pub fn read_bit(&mut self) -> Result<u32> {
        Ok(self.read(1)? as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xABCD, 16);
        w.write(1, 1);
        w.write(0x3FFFF, 18);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read(3).unwrap(), 0b101);
        assert_eq!(r.read(16).unwrap(), 0xABCD);
        assert_eq!(r.read(1).unwrap(), 1);
        assert_eq!(r.read(18).unwrap(), 0x3FFFF);
    }

    #[test]
    fn lsb_first_layout() {
        let mut w = BitWriter::new();
        w.write(1, 1); // bit 0 of byte 0
        w.write(0, 1);
        w.write(1, 1); // bit 2
        let buf = w.finish();
        assert_eq!(buf, vec![0b0000_0101]);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read(8).unwrap(), 0xFF);
        assert!(r.read(1).is_err());
    }

    #[test]
    fn zero_width_reads_ok() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read(0).unwrap(), 0);
        assert!(r.read(1).is_err());
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.write(0xFF, 8);
        assert_eq!(w.bit_len(), 10);
    }
}
