//! `monster-compress` — a from-scratch DEFLATE-family codec ("mzlib").
//!
//! The paper's final optimization (§IV-B4, Figs. 18–19) compresses Metrics
//! Builder JSON responses with zlib before transmission, shrinking payloads
//! to ≈5 % and roughly doubling end-to-end response speed. The workspace
//! builds its own codec in the same family: LZ77 sliding-window matching
//! (32 KiB window, 3–258-byte matches) followed by canonical Huffman
//! entropy coding, framed with an Adler-32 integrity checksum.
//!
//! The container format ("MZ1") is private to MonSTer — both producer and
//! consumer live in this workspace — but the compression machinery is the
//! real thing: hash-chain match search with lazy evaluation, length/distance
//! symbol alphabets with extra bits, and per-block canonical code tables.
//!
//! # Quick use
//!
//! ```
//! use monster_compress::{compress, decompress, Level};
//! let data = br#"{"nodes": [{"power": 273.8}, {"power": 273.8}]}"#.repeat(50);
//! let packed = compress(&data, Level::default());
//! assert!(packed.len() < data.len() / 4);
//! assert_eq!(decompress(&packed).unwrap(), data);
//! ```

#![warn(missing_docs)]

mod adler;
pub mod bitio;
mod format;
pub mod huffman;
mod lz77;

pub use adler::adler32;
pub use format::{compress, decompress, CompressStats};
pub use lz77::Level;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_shape_holds() {
        let data = br#"{"nodes": [{"power": 273.8}]}"#.repeat(100);
        let packed = compress(&data, Level::default());
        assert!(packed.len() < data.len() / 4);
        assert_eq!(decompress(&packed).unwrap(), data);
    }
}
