//! The "MZ1" container: header, Huffman-coded token blocks, checksum.
//!
//! Layout:
//!
//! ```text
//! magic "MZ1\0" | level u8 | orig_len varint | mode u8
//! mode 0 (stored): raw bytes
//! mode 1 (coded):  litlen code lengths (4b each, 286 syms)
//!                  dist code lengths   (4b each, 30 syms)
//!                  bit-packed token stream, EOB-terminated
//! adler32 of original data (4 bytes LE)
//! ```
//!
//! Length/distance symbols use DEFLATE's alphabets (29 length codes with
//! extra bits, 30 distance codes), so ratios are comparable to zlib's.

use crate::adler::adler32;
use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{code_lengths, Decoder, Encoder};
use crate::lz77::{detokenize, tokenize, Level, Token, MAX_MATCH, MIN_MATCH};
use monster_util::{Error, Result};

const MAGIC: &[u8; 4] = b"MZ1\0";
/// 256 literals + EOB + 29 length codes.
const NUM_LITLEN: usize = 286;
const EOB: usize = 256;
const NUM_DIST: usize = 30;

/// (base length, extra bits) per length code 257..=285.
const LEN_TABLE: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// (base distance, extra bits) per distance code 0..=29.
const DIST_TABLE: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

fn len_to_sym(len: u16) -> (usize, u16, u8) {
    debug_assert!((MIN_MATCH as u16..=MAX_MATCH as u16).contains(&len));
    // Find the last code whose base <= len.
    let mut idx = LEN_TABLE.len() - 1;
    for (i, &(base, _)) in LEN_TABLE.iter().enumerate() {
        if base > len {
            idx = i - 1;
            break;
        }
    }
    let (base, extra) = LEN_TABLE[idx];
    (257 + idx, len - base, extra)
}

fn dist_to_sym(dist: u16) -> (usize, u16, u8) {
    debug_assert!(dist >= 1);
    let mut idx = DIST_TABLE.len() - 1;
    for (i, &(base, _)) in DIST_TABLE.iter().enumerate() {
        if base > dist {
            idx = i - 1;
            break;
        }
    }
    let (base, extra) = DIST_TABLE[idx];
    (idx, dist - base, extra)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let b = *data.get(*pos).ok_or_else(|| Error::Corrupt("truncated varint".into()))?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Corrupt("varint too long".into()));
        }
    }
}

/// Statistics from a compression run (ratio reporting for Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressStats {
    /// Input size in bytes.
    pub input_bytes: usize,
    /// Output (container) size in bytes.
    pub output_bytes: usize,
}

impl CompressStats {
    /// `output / input`, i.e. ≈0.05 for the paper's JSON payloads.
    pub fn ratio(&self) -> f64 {
        if self.input_bytes == 0 {
            1.0
        } else {
            self.output_bytes as f64 / self.input_bytes as f64
        }
    }
}

/// Compress `data` into an MZ1 container.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let tokens = tokenize(data, level);

    // Frequency pass.
    let mut lit_freq = [0u64; NUM_LITLEN];
    let mut dist_freq = [0u64; NUM_DIST];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                lit_freq[len_to_sym(len).0] += 1;
                dist_freq[dist_to_sym(dist).0] += 1;
            }
        }
    }
    lit_freq[EOB] += 1;

    let lit_lens = code_lengths(&lit_freq);
    let dist_lens = code_lengths(&dist_freq);
    let lit_enc = Encoder::from_lengths(&lit_lens);
    let dist_enc = Encoder::from_lengths(&dist_lens);

    let mut w = BitWriter::new();
    // Code length tables: 4 bits per symbol.
    for &l in &lit_lens {
        w.write(l as u64, 4);
    }
    for &l in &dist_lens {
        w.write(l as u64, 4);
    }
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_enc.encode(&mut w, b as usize),
            Token::Match { len, dist } => {
                let (sym, extra_val, extra_bits) = len_to_sym(len);
                lit_enc.encode(&mut w, sym);
                w.write(extra_val as u64, extra_bits as u32);
                let (dsym, dextra_val, dextra_bits) = dist_to_sym(dist);
                dist_enc.encode(&mut w, dsym);
                w.write(dextra_val as u64, dextra_bits as u32);
            }
        }
    }
    lit_enc.encode(&mut w, EOB);
    let body = w.finish();

    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(MAGIC);
    out.push(level.get());
    write_varint(&mut out, data.len() as u64);
    if body.len() >= data.len() {
        // Stored mode: coding did not help (tiny or incompressible input).
        out.push(0);
        out.extend_from_slice(data);
    } else {
        out.push(1);
        out.extend_from_slice(&body);
    }
    out.extend_from_slice(&adler32(data).to_le_bytes());
    out
}

/// Decompress an MZ1 container, verifying the checksum.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    if data.len() < MAGIC.len() + 2 + 4 || &data[..4] != MAGIC {
        return Err(Error::Corrupt("bad MZ1 magic".into()));
    }
    let mut pos = 5; // magic + level byte
    let orig_len = read_varint(data, &mut pos)? as usize;
    let mode = *data.get(pos).ok_or_else(|| Error::Corrupt("truncated header".into()))?;
    pos += 1;
    if data.len() < pos + 4 {
        return Err(Error::Corrupt("missing checksum".into()));
    }
    let (body, sum_bytes) = data[pos..].split_at(data.len() - pos - 4);
    let expect_sum = u32::from_le_bytes(sum_bytes.try_into().expect("4 bytes"));

    let out = match mode {
        0 => {
            if body.len() != orig_len {
                return Err(Error::Corrupt("stored length mismatch".into()));
            }
            body.to_vec()
        }
        1 => {
            let mut r = BitReader::new(body);
            let mut lit_lens = vec![0u32; NUM_LITLEN];
            for l in lit_lens.iter_mut() {
                *l = r.read(4)? as u32;
            }
            let mut dist_lens = vec![0u32; NUM_DIST];
            for l in dist_lens.iter_mut() {
                *l = r.read(4)? as u32;
            }
            let lit_dec = Decoder::from_lengths(&lit_lens)?;
            // An all-literal stream legally has no distance codes.
            let dist_dec = Decoder::from_lengths(&dist_lens).ok();
            let mut tokens: Vec<Token> = Vec::new();
            loop {
                let sym = lit_dec.decode(&mut r)? as usize;
                if sym == EOB {
                    break;
                }
                if sym < 256 {
                    tokens.push(Token::Literal(sym as u8));
                    continue;
                }
                let idx = sym - 257;
                if idx >= LEN_TABLE.len() {
                    return Err(Error::Corrupt(format!("bad length symbol {sym}")));
                }
                let (base, extra) = LEN_TABLE[idx];
                let len = base + r.read(extra as u32)? as u16;
                let dd = dist_dec
                    .as_ref()
                    .ok_or_else(|| Error::Corrupt("match without distance table".into()))?;
                let dsym = dd.decode(&mut r)? as usize;
                if dsym >= DIST_TABLE.len() {
                    return Err(Error::Corrupt(format!("bad distance symbol {dsym}")));
                }
                let (dbase, dextra) = DIST_TABLE[dsym];
                let dist = dbase + r.read(dextra as u32)? as u16;
                tokens.push(Token::Match { len, dist });
            }
            detokenize(&tokens, orig_len)?
        }
        m => return Err(Error::Corrupt(format!("unknown mode {m}"))),
    };

    if out.len() != orig_len {
        return Err(Error::Corrupt(format!(
            "length mismatch: header {orig_len}, decoded {}",
            out.len()
        )));
    }
    if adler32(&out) != expect_sum {
        return Err(Error::Corrupt("adler32 mismatch".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(data: &[u8], level: Level) -> CompressStats {
        let packed = compress(data, level);
        let back = decompress(&packed).expect("decompress");
        assert_eq!(back, data);
        CompressStats { input_bytes: data.len(), output_bytes: packed.len() }
    }

    #[test]
    fn round_trips_representative_payloads() {
        for l in [Level::FAST, Level::default(), Level::BEST] {
            rt(b"", l);
            rt(b"x", l);
            rt(b"hello hello hello hello", l);
            rt(&vec![0u8; 4096], l);
            rt(&(0u16..=255).map(|b| b as u8).collect::<Vec<_>>(), l);
        }
    }

    #[test]
    fn json_payload_reaches_paper_like_ratio() {
        // Metrics Builder responses are highly repetitive JSON; the paper
        // observed ~5% compressed size (Fig. 18).
        let mut doc = String::from("[");
        for i in 0..2000 {
            doc.push_str(&format!(
                r#"{{"time":{},"NodeId":"10.101.{}.{}","Label":"NodePower","Reading":{}.{}}},"#,
                1_583_792_296 + i * 60,
                i % 118 + 1,
                i % 4 + 1,
                250 + i % 60,
                i % 10,
            ));
        }
        doc.push(']');
        let stats = rt(doc.as_bytes(), Level::default());
        assert!(
            stats.ratio() < 0.10,
            "expected <10% ratio on repetitive JSON, got {:.3}",
            stats.ratio()
        );
    }

    #[test]
    fn stored_mode_for_incompressible_input() {
        let mut x: u64 = 42;
        let data: Vec<u8> = (0..256)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        let packed = compress(&data, Level::BEST);
        // Container overhead only: magic(4)+level(1)+varint(2)+mode(1)+sum(4).
        assert!(packed.len() <= data.len() + 12);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn corruption_detected() {
        let data = b"some payload worth protecting".repeat(20);
        let packed = compress(&data, Level::default());
        // Flip a byte somewhere in the body.
        for idx in [6, packed.len() / 2, packed.len() - 1] {
            let mut bad = packed.clone();
            bad[idx] ^= 0x40;
            assert!(decompress(&bad).is_err(), "corruption at {idx} not caught");
        }
    }

    #[test]
    fn truncation_detected() {
        let packed = compress(b"abcabcabcabc", Level::default());
        for cut in [0, 3, 5, packed.len() - 1] {
            assert!(decompress(&packed[..cut]).is_err());
        }
    }

    #[test]
    fn rejects_wrong_magic() {
        assert!(decompress(b"NOPE\x06\x00\x00\x00\x00\x00\x00").is_err());
    }

    #[test]
    fn higher_levels_do_not_regress_much() {
        let unit = br#"{"a":1,"b":"xyz","c":[1,2,3]}"#;
        let data = unit.repeat(500);
        let fast = rt(&data, Level::FAST).output_bytes;
        let best = rt(&data, Level::BEST).output_bytes;
        assert!(best as f64 <= fast as f64 * 1.02, "best {best} fast {fast}");
    }

    #[test]
    fn symbol_tables_cover_extremes() {
        assert_eq!(len_to_sym(3), (257, 0, 0));
        assert_eq!(len_to_sym(258).0, 285);
        assert_eq!(len_to_sym(10), (264, 0, 0));
        assert_eq!(len_to_sym(11), (265, 0, 1));
        assert_eq!(len_to_sym(12), (265, 1, 1));
        assert_eq!(dist_to_sym(1), (0, 0, 0));
        assert_eq!(dist_to_sym(32768).0, 29);
        assert_eq!(dist_to_sym(5), (4, 0, 1));
        assert_eq!(dist_to_sym(6), (4, 1, 1));
    }

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn stats_ratio() {
        let s = CompressStats { input_bytes: 1000, output_bytes: 50 };
        assert!((s.ratio() - 0.05).abs() < 1e-12);
        assert_eq!(CompressStats { input_bytes: 0, output_bytes: 0 }.ratio(), 1.0);
    }
}
