//! Property tests: compress → decompress is the identity for arbitrary
//! byte strings at every level, and corrupted containers never decode to
//! a wrong answer silently.

use monster_compress::{compress, decompress, Level};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096), lvl in 1u8..=9) {
        let packed = compress(&data, Level::new(lvl));
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn round_trip_repetitive(data in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'{', b'}']), 0..8192)) {
        let packed = compress(&data, Level::default());
        prop_assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress(&data);
    }

    #[test]
    fn bit_flip_never_silently_corrupts(
        data in prop::collection::vec(any::<u8>(), 32..512),
        byte_idx in any::<usize>(),
        bit in 0u8..8,
    ) {
        let packed = compress(&data, Level::default());
        let mut bad = packed.clone();
        let idx = byte_idx % bad.len();
        bad[idx] ^= 1 << bit;
        // Either detected as corrupt, or (if the flip hit e.g. the level
        // byte, which doesn't affect decoding) decodes to the original.
        if let Ok(out) = decompress(&bad) {
            prop_assert_eq!(out, data);
        }
    }
}
