//! Crash-matrix tests: kill the WAL byte stream at *any* offset and the
//! database must recover to a consistent prefix — never panic, never lose
//! an acknowledged batch, never resurrect half a batch.
//!
//! The kill model is `recover::copy_dir_killed_at`: cold-tier segment
//! files survive intact (fsync-then-rename is atomic), the WAL byte
//! stream — segments concatenated in sequence order — is cut at an
//! arbitrary offset. Offsets below the last group-commit boundary model
//! data the OS never flushed; the contract is that everything **acked**
//! (covered by a completed fsync) is at or below any legal kill offset.

use monster_tsdb::recover::{copy_dir_killed_at, wal_extent};
use monster_tsdb::{DataPoint, Db, DbConfig, Query, TierConfig, WalTuning};
use monster_util::EpochSecs;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("monster-wal-crash-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mk_batch(pts: &[(i64, f64)]) -> Vec<DataPoint> {
    pts.iter()
        .enumerate()
        .map(|(i, &(t, v))| {
            DataPoint::new("m", EpochSecs::new(t))
                .tag("n", if i % 3 == 0 { "a" } else { "b" })
                .field_f64("v", v)
        })
        .collect()
}

fn query_all(db: &Db) -> monster_tsdb::ResultSet {
    let q = Query::select("m", "v", EpochSecs::new(0), EpochSecs::new(10_000));
    db.query(&q).unwrap().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property. For an arbitrary batch sequence, explicit
    /// sync cadence, and kill offset anywhere in the WAL byte stream:
    ///
    /// * recovery succeeds and replays a *record-aligned* prefix — exactly
    ///   the first `k` batches for some `k`, no partial batch;
    /// * point accounting is exact: the recovered database is
    ///   indistinguishable (stats, watermarks, query results) from a fresh
    ///   twin fed the same `k` batches;
    /// * if the kill offset is at or past the durable boundary (the bytes
    ///   covered by the last group commit), `k` covers every acknowledged
    ///   batch — fsynced data is never lost.
    #[test]
    fn kill_at_any_byte_offset_recovers_a_consistent_prefix(
        batches in prop::collection::vec(
            prop::collection::vec((0i64..10_000, -1e6f64..1e6), 1..20),
            1..12,
        ),
        sync_every in 1usize..5,
        cut_per_mille in 0u64..=1000,
    ) {
        let dir = fresh_dir("prop");
        let config = DbConfig {
            shard_duration: 1000,
            // Tiny segments exercise rolling; explicit-sync-only tuning
            // makes the ack boundary deterministic per case.
            wal: WalTuning {
                segment_bytes: 2048,
                sync_bytes: usize::MAX,
                sync_interval: Duration::from_secs(3600),
            },
            ..DbConfig::default()
        };
        let (db, _) = Db::recover(config, &dir).unwrap();
        for (i, b) in batches.iter().enumerate() {
            db.write_batch(&mk_batch(b)).unwrap();
            if (i + 1) % sync_every == 0 {
                db.wal_sync().unwrap();
            }
        }
        let status = db.wal_status().unwrap();
        let acked = status.acked_records;
        let unsynced = status.unsynced_bytes as u64;
        drop(db);

        let extent = wal_extent(&dir).unwrap();
        let durable = extent - unsynced;
        let cut = extent * cut_per_mille / 1000;
        let copy = fresh_dir("prop-copy");
        copy_dir_killed_at(&dir, &copy, cut).unwrap();

        let (recovered, report) = Db::recover(config, &copy).unwrap();
        prop_assert_eq!(report.records_failed, 0);
        let k = report.replayed_records as usize;
        prop_assert!(k <= batches.len());
        if cut >= durable {
            prop_assert!(
                k as u64 >= acked,
                "kill at {} >= durable boundary {} lost acked batches: {} < {}",
                cut, durable, k, acked
            );
        }

        // Record-aligned prefix, bit-for-bit: stats, watermarks, results.
        let twin = Db::new(config);
        for b in &batches[..k] {
            twin.write_batch(&mk_batch(b)).unwrap();
        }
        prop_assert_eq!(recovered.stats().points, twin.stats().points);
        prop_assert_eq!(recovered.stats().cardinality, twin.stats().cardinality);
        prop_assert_eq!(recovered.measurement_marks(), twin.measurement_marks());
        prop_assert_eq!(query_all(&recovered), query_all(&twin));

        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&copy).ok();
    }
}

/// Staged ingest replays bit-for-bit: a stager renders its flush in
/// shard-sorted run order, which is exactly how `write_batch` re-groups
/// the record at replay — so a recovered database answers queries
/// byte-identically to an uninterrupted twin staged the same way.
#[test]
fn staged_ingest_survives_restart_bit_for_bit() {
    let dir = fresh_dir("staged");
    let config = DbConfig { shard_duration: 1000, ..DbConfig::default() };
    let (db, _) = Db::recover(config, &dir).unwrap();
    let twin = Db::new(config);
    {
        let mut stager = db.stager_with_capacity(64);
        let mut twin_stager = twin.stager_with_capacity(64);
        for i in 0..300i64 {
            let batch = vec![
                DataPoint::new("Power", EpochSecs::new(i * 13 % 5000))
                    .tag("NodeId", format!("10.101.1.{}", i % 4 + 1))
                    .field_f64("Reading", 250.0 + i as f64)
                    .field_i64("Health", i % 3),
                DataPoint::new("NodeJobs", EpochSecs::new(i * 13 % 5000))
                    .tag("NodeId", format!("10.101.1.{}", i % 4 + 1))
                    .field_str("JobList", format!("['{}']", 1_290_000 + i)),
            ];
            stager.stage_batch(&batch).unwrap();
            twin_stager.stage_batch(&batch).unwrap();
        }
        // Drop publishes and (on the durable db) forces a group commit.
    }
    drop(db);

    let (recovered, report) = Db::recover(config, &dir).unwrap();
    assert!(!report.torn_tail);
    assert_eq!(recovered.stats().points, twin.stats().points);
    assert_eq!(recovered.stats().cardinality, twin.stats().cardinality);
    assert_eq!(recovered.measurement_marks(), twin.measurement_marks());
    for (m, f) in [("Power", "Reading"), ("Power", "Health"), ("NodeJobs", "JobList")] {
        let q = Query::select(m, f, EpochSecs::new(0), EpochSecs::new(10_000));
        let (a, _) = recovered.query(&q).unwrap();
        let (b, _) = twin.query(&q).unwrap();
        assert_eq!(a, b, "recovered {m}.{f} diverged from the uninterrupted twin");
    }
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

/// Tiering + WAL reclamation + crash: cold shards come back from their
/// immutable segment files, hot shards from WAL replay, and the reclaimed
/// WAL bytes are genuinely not needed.
#[test]
fn tiering_then_crash_recovers_both_tiers() {
    let dir = fresh_dir("tiering");
    let config = DbConfig {
        shard_duration: 86_400,
        disk: monster_sim::DiskModel::SSD,
        tiering: Some(TierConfig::days(2)),
        // Small segments so daily history spans several sealed WAL files
        // and reclamation has something to delete.
        wal: WalTuning { segment_bytes: 32 << 10, ..WalTuning::default() },
        ..DbConfig::default()
    };
    let (db, _) = Db::recover(config, &dir).unwrap();
    for day in 0..5i64 {
        let batch: Vec<DataPoint> = (0..1440)
            .map(|i| {
                DataPoint::new("Power", EpochSecs::new(day * 86_400 + i * 60))
                    .tag("NodeId", "10.101.1.1")
                    .field_f64("Reading", 200.0 + (i % 100) as f64)
            })
            .collect();
        db.write_batch(&batch).unwrap();
    }
    db.wal_sync().unwrap();

    let report = db.tier_cold_shards(EpochSecs::new(5 * 86_400)).unwrap();
    assert_eq!(report.shards_tiered, 3);
    assert!(report.segment_bytes_written > 0);
    assert!(report.wal_segments_reclaimed >= 1, "{report:?}");
    for day in 0..3i64 {
        assert!(
            dir.join(format!("shard-{}.seg", day * 86_400)).exists(),
            "missing segment file for day {day}"
        );
    }
    let whole = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(5 * 86_400))
        .aggregate(monster_tsdb::Aggregation::Mean)
        .group_by_time(3600);
    let (before, _) = db.query(&whole).unwrap();
    drop(db);

    let (recovered, rec) = Db::recover(config, &dir).unwrap();
    assert_eq!(rec.segment_files_loaded, 3);
    assert_eq!(rec.segment_points, 3 * 1440);
    assert_eq!(recovered.stats().points, 5 * 1440);
    let (after, cost) = recovered.query(&whole).unwrap();
    assert_eq!(before, after, "tiered + recovered answers diverged");
    // Cold shards come back cold: history is still priced by the archive
    // device after a restart.
    assert!(cost.bytes_cold > 0 && cost.bytes_cold < cost.bytes, "{cost:?}");
    // And the recovered database keeps logging.
    recovered
        .write(
            DataPoint::new("Power", EpochSecs::new(5 * 86_400))
                .tag("NodeId", "10.101.1.1")
                .field_f64("Reading", 199.0),
        )
        .unwrap();
    recovered.wal_sync().unwrap();
    assert!(recovered.wal_status().unwrap().acked_records >= 1);
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}

/// Dropped shards do not come back: retention deletes the cold-tier
/// segment file along with the shard, so recovery cannot resurrect data
/// the operator already aged out.
#[test]
fn retention_after_tiering_does_not_resurrect_on_recovery() {
    let dir = fresh_dir("retention");
    let config = DbConfig {
        shard_duration: 86_400,
        tiering: Some(TierConfig::days(1)),
        // Small segments so the dropped day's WAL records live in sealed
        // segments that tiering reclaims; records still in the active
        // segment would replay (and rely on the collector re-enforcing
        // retention, the documented fallback).
        wal: WalTuning { segment_bytes: 4 << 10, ..WalTuning::default() },
        ..DbConfig::default()
    };
    let (db, _) = Db::recover(config, &dir).unwrap();
    for day in 0..3i64 {
        let batch: Vec<DataPoint> = (0..100)
            .map(|i| {
                DataPoint::new("Power", EpochSecs::new(day * 86_400 + i * 60))
                    .tag("NodeId", "10.101.1.1")
                    .field_f64("Reading", i as f64)
            })
            .collect();
        db.write_batch(&batch).unwrap();
    }
    db.tier_cold_shards(EpochSecs::new(3 * 86_400)).unwrap();
    assert!(dir.join("shard-0.seg").exists());
    // Drop day 0 entirely.
    assert_eq!(db.drop_shards_before(EpochSecs::new(86_400)), 1);
    assert!(!dir.join("shard-0.seg").exists(), "retention must delete the segment file");
    drop(db);
    let (recovered, _) = Db::recover(config, &dir).unwrap();
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(86_400));
    let (rs, _) = recovered.query(&q).unwrap();
    assert_eq!(rs.point_count(), 0, "dropped day resurrected by recovery");
    assert_eq!(recovered.stats().points, 200);
    drop(recovered);
    std::fs::remove_dir_all(&dir).ok();
}
