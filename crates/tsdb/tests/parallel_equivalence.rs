//! Property test: the sharded engine's parallel shard scans are
//! observationally identical to the single-threaded reference execution.
//!
//! `DbConfig::scan_workers = 1` runs every (series, shard) scan on the
//! calling thread in plan order — the reference. `scan_workers = 8` fans
//! the same scans across a worker pool. Because per-scan output is
//! collected and merged in deterministic series-major, shard-time order,
//! the two must agree *byte for byte*: same series, same points, same
//! float values (the window aggregator's running sums are order-dependent,
//! so even a reordering that preserved sets would show up here), and the
//! same physical cost counters.

use monster_tsdb::query::Aggregation;
use monster_tsdb::{DataPoint, Db, DbConfig, Fill, Query};
use monster_util::EpochSecs;
use proptest::prelude::*;

const SHARD: i64 = 600; // 10-minute shards → plenty of fan-out width
const HORIZON: i64 = 6 * SHARD;

/// Small closed vocabularies so series collide and queries match data.
fn arb_point() -> impl Strategy<Value = DataPoint> {
    (
        prop_oneof![Just("Power"), Just("Thermal")],
        prop_oneof![Just("n1"), Just("n2"), Just("n3"), Just("n4")],
        prop_oneof![Just("a"), Just("b")],
        0..HORIZON,
        any::<f64>().prop_filter("finite", |f| f.is_finite()),
    )
        .prop_map(|(m, node, label, ts, reading)| {
            DataPoint::new(m, EpochSecs::new(ts))
                .tag("NodeId", node)
                .tag("Label", label)
                .field_f64("Reading", reading)
                .field_i64("Sequence", ts)
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop_oneof![Just("Power"), Just("Thermal")],
        prop_oneof![Just("Reading"), Just("Sequence"), Just("Missing")],
        prop_oneof![
            Just(None),
            Just(Some(Aggregation::Max)),
            Just(Some(Aggregation::Min)),
            Just(Some(Aggregation::Mean)),
            Just(Some(Aggregation::Sum)),
            Just(Some(Aggregation::Count)),
        ],
        prop_oneof![Just(Fill::None), Just(Fill::Zero), Just(Fill::Previous)],
        prop_oneof![Just(None), (1usize..40).prop_map(Some)],
        prop_oneof![Just(None), Just(Some("n1")), Just(Some("n2")), Just(Some("nX"))],
        (0..HORIZON, 1..HORIZON),
    )
        .prop_map(|(m, field, agg, fill, limit, node, (start, len))| {
            let mut q = Query::select(m, field, EpochSecs::new(start), EpochSecs::new(start + len));
            q.agg = agg;
            if agg.is_some() {
                q = q.group_by_time(120);
                q.fill = fill;
            }
            q.limit = limit;
            if let Some(n) = node {
                q = q.where_tag("NodeId", n);
            }
            q
        })
}

fn db_with(points: &[DataPoint], scan_workers: usize) -> Db {
    let db = Db::new(DbConfig { shard_duration: SHARD, scan_workers, ..DbConfig::default() });
    // Single-point batches in input order: same-timestamp duplicates land
    // in identical append order in both engines.
    for p in points {
        db.write(p.clone()).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_scans_match_reference(
        points in prop::collection::vec(arb_point(), 1..120),
        queries in prop::collection::vec(arb_query(), 1..6),
    ) {
        let reference = db_with(&points, 1);
        let parallel = db_with(&points, 8);
        prop_assert_eq!(reference.stats(), parallel.stats());
        for q in &queries {
            let (rs1, c1) = reference.query(q).unwrap();
            let (rs8, c8) = parallel.query(q).unwrap();
            // Byte-identical result sets: same series order, timestamps,
            // and bit-exact float values.
            prop_assert_eq!(&rs1, &rs8);
            prop_assert_eq!(c1, c8);
        }
    }

    #[test]
    fn compaction_preserves_equivalence(
        points in prop::collection::vec(arb_point(), 1..120),
        q in arb_query(),
    ) {
        // Sealed blocks and raw tails scan through the same merge path.
        let reference = db_with(&points, 1);
        let parallel = db_with(&points, 8);
        parallel.compact();
        let (rs1, _) = reference.query(&q).unwrap();
        let (rs8, _) = parallel.query(&q).unwrap();
        prop_assert_eq!(rs1, rs8);
    }
}
