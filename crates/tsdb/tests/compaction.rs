//! Compaction behaviour: sealing raw tails shrinks at-rest volume without
//! changing query answers.

use monster_tsdb::query::Aggregation;
use monster_tsdb::{DataPoint, Db, DbConfig, Query};
use monster_util::EpochSecs;

/// Many slow series: 64 nodes × 500 samples each stays below the 1024-point
/// self-seal threshold, so everything sits in raw tails.
fn seeded() -> Db {
    let db = Db::new(DbConfig::default());
    let mut batch = Vec::new();
    for i in 0..500i64 {
        for n in 0..64 {
            batch.push(
                DataPoint::new("Power", EpochSecs::new(i * 60))
                    .tag("NodeId", format!("10.101.1.{n}"))
                    .field_f64("Reading", 250.0 + (i % 11) as f64),
            );
        }
    }
    db.write_batch(&batch).unwrap();
    db
}

fn full_query(db: &Db) -> monster_tsdb::ResultSet {
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(500 * 60))
        .aggregate(Aggregation::Mean)
        .group_by_time(600);
    db.query(&q).unwrap().0
}

#[test]
fn compaction_shrinks_volume_and_preserves_answers() {
    let db = seeded();
    assert_eq!(db.tail_points(), 32_000, "fixture should be all-tail");
    let before_bytes = db.stats().encoded_bytes;
    let before_answers = full_query(&db);

    let (sealed, saved) = db.compact();
    assert_eq!(sealed, 64);
    assert!(saved > 0, "saved {saved}");
    assert_eq!(db.tail_points(), 0);
    // Regular 60 s cadence + small value vocabulary: sealed blocks are
    // far smaller than 16 B/point raw.
    let after_bytes = db.stats().encoded_bytes;
    assert!(after_bytes * 3 < before_bytes, "before {before_bytes} after {after_bytes}");
    assert_eq!(full_query(&db), before_answers);
}

#[test]
fn compaction_is_idempotent() {
    let db = seeded();
    db.compact();
    let (sealed, saved) = db.compact();
    assert_eq!(sealed, 0);
    assert_eq!(saved, 0);
}

#[test]
fn writes_after_compaction_keep_working() {
    let db = seeded();
    db.compact();
    db.write(
        DataPoint::new("Power", EpochSecs::new(500 * 60))
            .tag("NodeId", "10.101.1.0")
            .field_f64("Reading", 999.0),
    )
    .unwrap();
    assert_eq!(db.tail_points(), 1);
    let q = Query::select("Power", "Reading", EpochSecs::new(500 * 60), EpochSecs::new(501 * 60));
    let (rs, _) = db.query(&q).unwrap();
    assert_eq!(rs.point_count(), 1);
}
