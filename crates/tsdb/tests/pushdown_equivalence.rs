//! Property tests: aggregation pushdown (zone-map summaries for sealed
//! blocks) is observationally identical to the full-decode read path.
//!
//! Two levels of equivalence are checked:
//!
//! 1. **Pushdown vs forced decode, always** — `DbConfig::pushdown =
//!    false` decodes every eligible block and re-folds the identical
//!    per-block partial, so the two paths must agree *byte for byte* for
//!    any window/range/aggregation, including windows that straddle
//!    blocks and shards. The physical cost must show the trade:
//!    `pushdown.blocks + pushdown.blocks_summarized ==
//!    full_decode.blocks`.
//! 2. **Against the uncompacted per-point reference, for block-aligned
//!    workloads** — when the window divides the shard duration and each
//!    column holds at most one sealed block per shard (always true here:
//!    ≤ 160 points, block capacity 1024), every bucket receives at most
//!    one partial, so the merged fold is arithmetically the *same
//!    association* as the per-point fold and even float `sum`/`mean`
//!    match bit-exactly.

use monster_tsdb::query::Aggregation;
use monster_tsdb::{DataPoint, Db, DbConfig, Fill, Query};
use monster_util::EpochSecs;
use proptest::prelude::*;

const SHARD: i64 = 600; // 10-minute shards
const HORIZON: i64 = 6 * SHARD;

/// Small closed vocabularies so series collide and queries match data.
/// Every point carries a float, an int, a string, and a bool field, so
/// Count pushdown over non-numeric columns is exercised too.
fn arb_point() -> impl Strategy<Value = DataPoint> {
    (
        prop_oneof![Just("Power"), Just("Thermal")],
        prop_oneof![Just("n1"), Just("n2"), Just("n3"), Just("n4")],
        0..HORIZON,
        any::<f64>().prop_filter("finite", |f| f.is_finite()),
        prop_oneof![Just("ok"), Just("warn"), Just("down")],
        any::<bool>(),
    )
        .prop_map(|(m, node, ts, reading, state, healthy)| {
            DataPoint::new(m, EpochSecs::new(ts))
                .tag("NodeId", node)
                .field_f64("Reading", reading)
                .field_i64("Sequence", ts)
                .field_str("State", state)
                .field_bool("Healthy", healthy)
        })
}

fn arb_agg() -> impl Strategy<Value = Aggregation> {
    prop_oneof![
        Just(Aggregation::Max),
        Just(Aggregation::Min),
        Just(Aggregation::Mean),
        Just(Aggregation::Sum),
        Just(Aggregation::Count),
        Just(Aggregation::First),
        Just(Aggregation::Last),
    ]
}

fn arb_field() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("Reading"), Just("Sequence"), Just("State"), Just("Healthy"), Just("Missing")]
}

#[derive(Debug, Clone)]
struct QuerySpec {
    measurement: &'static str,
    field: &'static str,
    agg: Aggregation,
    fill: Fill,
    window: i64,
    node: Option<&'static str>,
    start: i64,
    len: i64,
}

impl QuerySpec {
    fn build(&self) -> Query {
        let mut q = Query::select(
            self.measurement,
            self.field,
            EpochSecs::new(self.start),
            EpochSecs::new(self.start + self.len),
        )
        .aggregate(self.agg)
        .group_by_time(self.window);
        q.fill = self.fill;
        if let Some(n) = self.node {
            q = q.where_tag("NodeId", n);
        }
        q
    }
}

fn arb_query(window: impl Strategy<Value = i64>) -> impl Strategy<Value = QuerySpec> {
    (
        prop_oneof![Just("Power"), Just("Thermal")],
        arb_field(),
        arb_agg(),
        prop_oneof![Just(Fill::None), Just(Fill::Zero), Just(Fill::Previous)],
        window,
        prop_oneof![Just(None), Just(Some("n1")), Just(Some("n2")), Just(Some("nX"))],
        (0..HORIZON, 1..HORIZON),
    )
        .prop_map(|(measurement, field, agg, fill, window, node, (start, len))| QuerySpec {
            measurement,
            field,
            agg,
            fill,
            window,
            node,
            start,
            len,
        })
}

fn db_with(points: &[DataPoint], pushdown: bool, compact: bool) -> Db {
    let db = Db::new(DbConfig { shard_duration: SHARD, pushdown, ..DbConfig::default() });
    // Single-point batches in input order: same-timestamp duplicates land
    // in identical append order in every engine.
    for p in points {
        db.write(p.clone()).unwrap();
    }
    if compact {
        db.compact();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pushdown vs forced full decode: bit-identical results for ANY
    /// window, plus the block-accounting invariant.
    #[test]
    fn pushdown_matches_forced_decode_for_any_window(
        points in prop::collection::vec(arb_point(), 1..160),
        queries in prop::collection::vec(arb_query(1..HORIZON), 1..6),
    ) {
        let pushed = db_with(&points, true, true);
        let forced = db_with(&points, false, true);
        for spec in &queries {
            let q = spec.build();
            let (rs_p, c_p) = pushed.query(&q).unwrap();
            let (rs_f, c_f) = forced.query(&q).unwrap();
            prop_assert!(rs_p == rs_f, "spec {:?}", spec);
            // Same plan-level counters...
            prop_assert_eq!(c_p.index_entries, c_f.index_entries);
            prop_assert_eq!(c_p.series, c_f.series);
            prop_assert_eq!(c_p.shards_scanned, c_f.shards_scanned);
            // ...and every sealed block either decoded or summarized.
            prop_assert_eq!(c_p.blocks + c_p.blocks_summarized, c_f.blocks);
            prop_assert_eq!(c_f.blocks_summarized, 0);
            // Summarized blocks decode no points.
            prop_assert!(c_p.points <= c_f.points);
        }
    }

    /// Shard-aligned windows: the summary path also matches the
    /// *uncompacted* per-point reference bit for bit (each bucket gets at
    /// most one partial, so the float folds associate identically).
    #[test]
    fn pushdown_matches_per_point_reference_for_aligned_windows(
        points in prop::collection::vec(arb_point(), 1..160),
        queries in prop::collection::vec(
            arb_query(prop_oneof![Just(60i64), Just(120), Just(200), Just(300), Just(600)]),
            1..6,
        ),
    ) {
        let reference = db_with(&points, true, false); // raw tails: per-point
        let pushed = db_with(&points, true, true);
        let forced = db_with(&points, false, true);
        for spec in &queries {
            let q = spec.build();
            let (rs_r, _) = reference.query(&q).unwrap();
            let (rs_p, _) = pushed.query(&q).unwrap();
            let (rs_f, _) = forced.query(&q).unwrap();
            prop_assert!(rs_r == rs_p, "reference vs pushdown, spec {:?}", spec);
            prop_assert!(rs_p == rs_f, "pushdown vs forced, spec {:?}", spec);
        }
    }
}

/// Deterministic sanity check that the property tests above actually
/// exercise the summary path: a whole-shard window over sealed data must
/// summarize, and still match the per-point reference bit for bit.
#[test]
fn aligned_whole_range_query_actually_summarizes() {
    let points: Vec<DataPoint> = (0..HORIZON)
        .step_by(7)
        .map(|ts| {
            DataPoint::new("Power", EpochSecs::new(ts))
                .tag("NodeId", "n1")
                .field_f64("Reading", 0.1 + (ts % 41) as f64 * 0.3)
        })
        .collect();
    let reference = db_with(&points, true, false);
    let pushed = db_with(&points, true, true);
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(HORIZON))
        .aggregate(Aggregation::Mean)
        .group_by_time(SHARD);
    let (rs_r, c_r) = reference.query(&q).unwrap();
    let (rs_p, c_p) = pushed.query(&q).unwrap();
    assert_eq!(rs_r, rs_p);
    assert_eq!(c_p.blocks_summarized, 6, "one summarized block per shard");
    assert_eq!(c_p.points, 0);
    assert!(c_r.points > 0);
}
