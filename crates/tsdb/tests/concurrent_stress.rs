//! Stress test for the sharded-lock engine: concurrent writers, queriers,
//! retention enforcement, and snapshot export all running against one
//! database, with point-count conservation checked at the end.
//!
//! The conservation invariant: every point a writer successfully wrote is
//! either still queryable or was removed by a retention pass —
//! `written == stats().points + dropped-by-retention` — and the O(1)
//! incremental statistics agree exactly with a full walk of the shards
//! ([`Db::recompute_stats`]).

use monster_tsdb::query::Aggregation;
use monster_tsdb::snapshot;
use monster_tsdb::{DataPoint, Db, DbConfig, Query};
use monster_util::EpochSecs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const SHARD: i64 = 300; // 5-minute shards → many shards, much churn
const WRITERS: usize = 4;
const POINTS_PER_WRITER: usize = 1500;

fn point(writer: usize, i: usize) -> DataPoint {
    let ts = (i as i64) * 20; // writers cover the same timeline in lockstep
    DataPoint::new("Power", EpochSecs::new(ts))
        .tag("NodeId", format!("10.101.1.{writer}"))
        .field_f64("Reading", 200.0 + (i % 97) as f64)
}

#[test]
fn writers_queriers_retention_and_snapshots_conserve_points() {
    let db = Arc::new(Db::new(DbConfig {
        shard_duration: SHARD,
        scan_workers: 4,
        ..DbConfig::default()
    }));
    // Points retention removed, per its own exact accounting (shards
    // dropped while writers were still filling them stay conserved because
    // `drop_shards_before_counted` reports exactly what each shard held at
    // tombstone time, and tombstoned shards are never appended to).
    let retained_away = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        // Writers: mixed batch sizes, all to the same measurement.
        for w in 0..WRITERS {
            let db = Arc::clone(&db);
            s.spawn(move || {
                let mut i = 0usize;
                while i < POINTS_PER_WRITER {
                    let batch_len = (1 + i % 37).min(POINTS_PER_WRITER - i);
                    let batch: Vec<DataPoint> = (i..i + batch_len).map(|j| point(w, j)).collect();
                    db.write_batch(&batch).unwrap();
                    i += batch_len;
                }
            });
        }
        // Queriers: windowed aggregations racing the writers.
        for _ in 0..2 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for _ in 0..60 {
                    let q = Query::select(
                        "Power",
                        "Reading",
                        EpochSecs::new(0),
                        EpochSecs::new(POINTS_PER_WRITER as i64 * 20),
                    )
                    .aggregate(Aggregation::Count)
                    .group_by_time(SHARD);
                    let (_rs, cost) = db.query(&q).unwrap();
                    // Bound by the whole timeline's shard count (the map
                    // churns underneath us, so only the static bound holds).
                    assert!(cost.shards_scanned <= (POINTS_PER_WRITER * 20) / SHARD as usize + 1);
                }
            });
        }
        // Retention: repeatedly drop everything older than a rising
        // horizon, recording how many points each pass removed.
        {
            let db = Arc::clone(&db);
            let away = Arc::clone(&retained_away);
            s.spawn(move || {
                for step in 1..=10i64 {
                    let horizon = step * 2 * SHARD;
                    let (_shards, points) = db.drop_shards_before_counted(EpochSecs::new(horizon));
                    away.fetch_add(points, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            });
        }
        // Snapshot exporter: full-database walks while everything churns.
        {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for _ in 0..5 {
                    // The walk must complete without deadlock or panic
                    // while shards churn; its point count is a moving
                    // target, so only the final (quiesced) walk is checked.
                    let _ = snapshot::write_snapshot(&db).unwrap();
                    std::thread::yield_now();
                }
            });
        }
    });

    // Conservation: written == live + removed-by-retention. The write and
    // retention paths account independently (atomic deltas vs per-shard
    // subtraction), so any double-count or leak shows up here.
    let written = WRITERS * POINTS_PER_WRITER;
    let live = db.stats().points;
    let away = retained_away.load(Ordering::Relaxed);
    assert_eq!(live + away, written, "live {live} + retained-away {away} != {written}");

    // The O(1) counters must agree exactly with a full shard walk.
    assert_eq!(db.stats(), db.recompute_stats());

    // Quiesced: a count over the whole timeline sees exactly the live set.
    let q = Query::select(
        "Power",
        "Reading",
        EpochSecs::new(0),
        EpochSecs::new(POINTS_PER_WRITER as i64 * 20),
    )
    .aggregate(Aggregation::Count)
    .group_by_time(SHARD);
    let (rs, _) = db.query(&q).unwrap();
    let counted: f64 =
        rs.series.iter().flat_map(|s| s.points.iter()).filter_map(|(_, v)| v.as_f64()).sum();
    assert_eq!(counted as usize, live);

    // A final snapshot walk sees the same live set too.
    let (_bytes, snap) = snapshot::write_snapshot(&db).unwrap();
    assert_eq!(snap.points, live);
}
