//! Behavioural tests for `fill()` and `LIMIT` — the InfluxQL conveniences
//! analysis consumers lean on when series have collection gaps (BMC
//! timeouts leave holes; see the failure-injection suite).

use monster_tsdb::query::{parse_query, Aggregation, Fill};
use monster_tsdb::{DataPoint, Db, DbConfig, FieldValue, Query};
use monster_util::EpochSecs;

/// Samples at minutes 0-4 and 10-14 of an hour, leaving a 5-window gap at
/// minutes 5-9 when grouped by 60 s.
fn gappy_db() -> Db {
    let db = Db::new(DbConfig::default());
    for m in (0..5).chain(10..15) {
        db.write(
            DataPoint::new("Power", EpochSecs::new(m * 60))
                .tag("NodeId", "10.101.1.1")
                .field_f64("Reading", 100.0 + m as f64 * 10.0),
        )
        .unwrap();
    }
    db
}

fn run(db: &Db, fill: Fill, range_end: i64) -> Vec<(i64, f64)> {
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(range_end))
        .aggregate(Aggregation::Max)
        .group_by_time(60)
        .fill(fill);
    let (rs, _) = db.query(&q).unwrap();
    rs.series[0].points.iter().map(|(t, v)| (t.as_secs(), v.as_f64().unwrap())).collect()
}

#[test]
fn fill_none_omits_gap_windows() {
    let db = gappy_db();
    let pts = run(&db, Fill::None, 900);
    assert_eq!(pts.len(), 10);
    assert!(pts.iter().all(|(t, _)| !(300..600).contains(t)));
}

#[test]
fn fill_zero_materializes_whole_range() {
    let db = gappy_db();
    let pts = run(&db, Fill::Zero, 1080); // 18 windows
    assert_eq!(pts.len(), 18);
    // Gap windows are zero; trailing empty windows too.
    let at = |t: i64| pts.iter().find(|(pt, _)| *pt == t).unwrap().1;
    assert_eq!(at(300), 0.0);
    assert_eq!(at(540), 0.0);
    assert_eq!(at(900), 0.0);
    assert_eq!(at(0), 100.0);
    assert_eq!(at(600), 200.0);
}

#[test]
fn fill_previous_carries_forward() {
    let db = gappy_db();
    let pts = run(&db, Fill::Previous, 1080);
    let at = |t: i64| pts.iter().find(|(pt, _)| *pt == t).unwrap().1;
    // Gap carries minute 4's value (140).
    assert_eq!(at(300), 140.0);
    assert_eq!(at(540), 140.0);
    // Trailing windows carry minute 14's value (240).
    assert_eq!(at(1020), 240.0);
    // No windows before the first sample.
    assert_eq!(pts[0].0, 0);
}

#[test]
fn fill_linear_interpolates_interior_gaps() {
    let db = gappy_db();
    let pts = run(&db, Fill::Linear, 1080);
    let at = |t: i64| pts.iter().find(|(pt, _)| *pt == t).unwrap().1;
    // Between (240,140) and (600,200): value at 300 is 140 + 60*(60/360).
    assert!((at(300) - 150.0).abs() < 1e-9);
    assert!((at(420) - 170.0).abs() < 1e-9);
    assert!((at(540) - 190.0).abs() < 1e-9);
    // Linear does not extrapolate past the last sample.
    assert_eq!(pts.last().unwrap().0, 840);
}

#[test]
fn limit_truncates_per_series() {
    let db = gappy_db();
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(900))
        .aggregate(Aggregation::Max)
        .group_by_time(60)
        .limit(3);
    let (rs, _) = db.query(&q).unwrap();
    assert_eq!(rs.series[0].points.len(), 3);
    assert_eq!(rs.series[0].points[0].0, EpochSecs::new(0));

    // Raw select honours LIMIT too.
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(900)).limit(2);
    let (rs, _) = db.query(&q).unwrap();
    assert_eq!(rs.series[0].points.len(), 2);
}

#[test]
fn parser_round_trips_fill_and_limit() {
    let text = "SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
                time >= '2020-04-20T12:00:00Z' AND time < '2020-04-21T12:00:00Z' \
                GROUP BY time(5m) fill(previous) LIMIT 100";
    let q = parse_query(text).unwrap();
    assert_eq!(q.fill, Fill::Previous);
    assert_eq!(q.limit, Some(100));
    let q2 = parse_query(&q.to_influxql()).unwrap();
    assert_eq!(q, q2);
    // fill(0) spelling.
    let q = parse_query(
        "SELECT mean(v) FROM m WHERE time >= 0 AND time < 100 GROUP BY time(10s) fill(0)",
    )
    .unwrap();
    assert_eq!(q.fill, Fill::Zero);
}

#[test]
fn parser_rejects_bad_fill_and_limit() {
    for bad in [
        "SELECT mean(v) FROM m WHERE time >= 0 AND time < 100 GROUP BY time(10s) fill(bogus)",
        "SELECT mean(v) FROM m WHERE time >= 0 AND time < 100 GROUP BY time(10s) fill()",
        "SELECT v FROM m WHERE time >= 0 AND time < 100 LIMIT 0",
        "SELECT v FROM m WHERE time >= 0 AND time < 100 LIMIT x",
        // fill without GROUP BY is invalid.
        "SELECT mean(v) FROM m WHERE time >= 0 AND time < 100 fill(0)",
    ] {
        assert!(parse_query(bad).is_err(), "accepted {bad:?}");
    }
}

#[test]
fn fill_zero_on_empty_series_returns_all_windows() {
    let db = Db::new(DbConfig::default());
    db.write(
        DataPoint::new("Power", EpochSecs::new(5000)).tag("NodeId", "n1").field_f64("Reading", 1.0),
    )
    .unwrap();
    // Query a disjoint range: series matches, but no in-range data, so the
    // series has no points at all (fill only applies once data exists —
    // InfluxDB behaves the same for fully-empty series).
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(300))
        .aggregate(Aggregation::Max)
        .group_by_time(60)
        .fill(Fill::Previous);
    let (rs, _) = db.query(&q).unwrap();
    assert!(rs.series.is_empty() || rs.series[0].points.is_empty());
    let _ = FieldValue::Float(0.0);
}
