//! Steady-state ingest must not allocate per point.
//!
//! Before the sharded-lock rework, `Shard::append` built a
//! `(SeriesId, String)` column key per point — one heap allocation per
//! field value written, forever. With interned `FieldId`s the key is two
//! `Copy` u32s, so once series/fields/columns/tails are warm, a
//! `write_batch` allocates only its O(log n) grouping buffers.
//!
//! A counting `#[global_allocator]` proves it. The tests in this file
//! share the counter, so they serialize on `GATE` — nothing else may run
//! while a counting window is open.

use monster_tsdb::{DataPoint, Db, DbConfig};
use monster_util::EpochSecs;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

const NODES: usize = 50;

fn batch_at(ts: i64) -> Vec<DataPoint> {
    (0..NODES)
        .map(|n| {
            DataPoint::new("Power", EpochSecs::new(ts))
                .tag("NodeId", format!("10.101.1.{n}"))
                .tag("Label", "NodePower")
                .field_f64("Reading", 250.0 + n as f64)
                .field_i64("Health", ts % 3)
        })
        .collect()
}

#[test]
fn steady_state_ingest_does_not_allocate_per_point() {
    let _gate = GATE.lock().unwrap();
    let db = Db::new(DbConfig::default());

    // Warm-up: create series, intern fields, materialize the shard and
    // every column, and grow each column tail past the batch sizes below.
    for i in 0..40 {
        db.write_batch(&batch_at(i * 60)).unwrap();
    }

    // Steady state: same series, same shard, pre-built batches.
    let batches: Vec<Vec<DataPoint>> = (40..60).map(|i| batch_at(i * 60)).collect();
    let points_written: usize = batches.iter().map(Vec::len).sum::<usize>() * 2; // 2 fields

    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    for b in &batches {
        db.write_batch(b).unwrap();
    }
    COUNTING.store(false, Ordering::Relaxed);
    let allocs = ALLOCS.load(Ordering::Relaxed);

    // The old engine allocated a String key per field value — at least
    // one allocation per point (2000 here). The new hot path allocates
    // only per-batch bookkeeping (id vectors, the shard-group buffer, obs
    // lookups): a small constant per batch, far below one per point.
    assert!(
        allocs < points_written / 10,
        "steady-state ingest allocated {allocs} times for {points_written} points"
    );
}

/// The staged write path is *strictly* allocation-free once warm: scratch
/// id buffers, run arenas, the slot map, and the flush ordering are all
/// retained across flushes, and no column seals inside the window (60
/// points per column < BLOCK_SIZE), so a whole stage-and-flush cycle
/// performs zero heap allocations.
#[test]
fn warm_staging_cycle_does_not_allocate() {
    let _gate = GATE.lock().unwrap();
    let db = Db::new(DbConfig::default());
    let mut stager = db.stager(); // default threshold ≫ this test's volume

    // Warm-up: materialize series/fields/columns, grow every run arena and
    // column tail past what the counting window needs, and complete full
    // flush cycles so the slot map and ordering buffers reach capacity.
    // Three cycles of 20 leave each column tail at len 60 / capacity 80
    // (amortized doubling: 20 → 40 → 80), so the counted cycle's 20 points
    // land exactly at capacity without a growth step.
    for cycle in 0..3 {
        for i in 0..20 {
            stager.stage_batch(&batch_at((cycle * 20 + i) * 60)).unwrap();
        }
        stager.flush().unwrap();
    }

    // Steady state: the same shape staged and flushed again.
    let batches: Vec<Vec<DataPoint>> = (60..80).map(|i| batch_at(i * 60)).collect();
    let points_written: usize = batches.iter().map(Vec::len).sum::<usize>() * 2; // 2 fields

    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    for b in &batches {
        stager.stage_batch(b).unwrap();
    }
    stager.flush().unwrap();
    COUNTING.store(false, Ordering::Relaxed);
    let allocs = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        allocs, 0,
        "warm staging cycle allocated {allocs} times for {points_written} points"
    );
    assert_eq!(db.stats().points, points_written + 3 * points_written); // warm + counted
}

/// Durability does not cost the zero-allocation property: with the WAL
/// on, a warm stage-and-flush cycle renders its log record into a
/// retained `wal_buf`, frames it through the WAL's reusable scratch, and
/// issues plain `write(2)`s — still zero heap allocations. (Group-commit
/// syncs and segment rolls are syscall-only and amortized outside the
/// window: the default 8 MiB segment never rolls on this volume.)
#[test]
fn warm_staging_cycle_with_wal_does_not_allocate() {
    let _gate = GATE.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("monster-alloc-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (db, _) = Db::recover(DbConfig::default(), &dir).unwrap();
    {
        let mut stager = db.stager();

        // Same warm-up math as the in-memory test, plus one extra flush so
        // `wal_buf` and the WAL frame scratch reach their steady capacity.
        for cycle in 0..3 {
            for i in 0..20 {
                stager.stage_batch(&batch_at((cycle * 20 + i) * 60)).unwrap();
            }
            stager.flush().unwrap();
        }

        let batches: Vec<Vec<DataPoint>> = (60..80).map(|i| batch_at(i * 60)).collect();
        let points_written: usize = batches.iter().map(Vec::len).sum::<usize>() * 2;

        ALLOCS.store(0, Ordering::Relaxed);
        COUNTING.store(true, Ordering::Relaxed);
        for b in &batches {
            stager.stage_batch(b).unwrap();
        }
        stager.flush().unwrap();
        COUNTING.store(false, Ordering::Relaxed);
        let allocs = ALLOCS.load(Ordering::Relaxed);

        assert_eq!(
            allocs, 0,
            "warm WAL-backed staging cycle allocated {allocs} times for {points_written} points"
        );
    }
    assert!(db.wal_status().unwrap().appended_records >= 4);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-stage proof: resolution, append, and wire accounting are each
/// individually allocation-free once warm (the batch-level test above
/// bounds what's left: grouping buffers and obs bookkeeping).
#[test]
fn warm_engine_stages_do_not_allocate() {
    let _gate = GATE.lock().unwrap();
    // Stage bisect with public engine parts.
    use monster_tsdb::series::{SeriesIndex, SeriesKey};
    use monster_tsdb::shard::Shard;
    let mut idx = SeriesIndex::new();
    let warm = batch_at(0);
    for p in &warm {
        idx.get_or_create(&SeriesKey::of(p));
        for (name, _) in &p.fields {
            idx.intern_field(name);
        }
    }
    let b3 = batch_at(42 * 60);
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let mut n = 0usize;
    for p in &b3 {
        if idx.id_of_point(p).is_some() {
            n += 1;
        }
        for (name, _) in &p.fields {
            let _ = idx.field_id(name);
        }
    }
    COUNTING.store(false, Ordering::Relaxed);
    assert_eq!(n, b3.len());
    assert_eq!(ALLOCS.load(Ordering::Relaxed), 0, "warm id resolution allocated");

    let mut shard = Shard::new(0, i64::MAX);
    for i in 0..40 {
        for (j, p) in batch_at(i * 60).iter().enumerate() {
            for (fi, (_, v)) in p.fields.iter().enumerate() {
                shard
                    .append(
                        monster_tsdb::SeriesId(j as u32),
                        monster_tsdb::FieldId(fi as u32),
                        p.time.as_secs(),
                        v,
                    )
                    .unwrap();
            }
        }
    }
    let b4 = batch_at(43 * 60);
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    for (j, p) in b4.iter().enumerate() {
        for (fi, (_, v)) in p.fields.iter().enumerate() {
            shard
                .append(
                    monster_tsdb::SeriesId(j as u32),
                    monster_tsdb::FieldId(fi as u32),
                    p.time.as_secs(),
                    v,
                )
                .unwrap();
        }
    }
    COUNTING.store(false, Ordering::Relaxed);
    assert_eq!(ALLOCS.load(Ordering::Relaxed), 0, "warm shard append allocated");

    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let wire: usize = b4.iter().map(DataPoint::wire_size).sum();
    COUNTING.store(false, Ordering::Relaxed);
    assert!(wire > 0);
    assert_eq!(ALLOCS.load(Ordering::Relaxed), 0, "wire-size accounting allocated");
}
