//! Behavioural tests for `drop_measurement` — the operational cleanup for
//! cardinality accidents (the previous schema's per-job measurements).

use monster_tsdb::query::Aggregation;
use monster_tsdb::{DataPoint, Db, DbConfig, Query};
use monster_util::EpochSecs;

fn seeded() -> Db {
    let db = Db::new(DbConfig::default());
    let mut batch = Vec::new();
    for i in 0..100i64 {
        batch.push(
            DataPoint::new("Power", EpochSecs::new(i * 60))
                .tag("NodeId", "10.101.1.1")
                .field_f64("Reading", 250.0),
        );
        // The cardinality accident: one measurement per job.
        batch.push(
            DataPoint::new(format!("Job_{}", 1_290_000 + i), EpochSecs::new(i * 60))
                .tag("Owner", "abdumal")
                .field_i64("State", 1),
        );
    }
    db.write_batch(&batch).unwrap();
    db
}

#[test]
fn drop_removes_data_and_series() {
    let db = seeded();
    let before = db.stats();
    assert_eq!(before.measurements, 101);

    let mut dropped_series = 0;
    for i in 0..100i64 {
        dropped_series += db.drop_measurement(&format!("Job_{}", 1_290_000 + i));
    }
    assert_eq!(dropped_series, 100);

    let after = db.stats();
    assert_eq!(after.measurements, 1);
    assert_eq!(after.cardinality, 1);
    assert_eq!(after.points, 100); // only Power remains
    assert!(after.encoded_bytes < before.encoded_bytes);

    // Dropped data is unqueryable.
    let q = Query::select("Job_1290000", "State", EpochSecs::new(0), EpochSecs::new(10_000));
    let (rs, _) = db.query(&q).unwrap();
    assert!(rs.series.is_empty());

    // Survivors are untouched.
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(100 * 60))
        .aggregate(Aggregation::Count);
    let (rs, _) = db.query(&q).unwrap();
    assert_eq!(rs.series[0].points[0].1.as_f64(), Some(100.0));
}

#[test]
fn drop_unknown_measurement_is_noop() {
    let db = seeded();
    assert_eq!(db.drop_measurement("Nope"), 0);
    assert_eq!(db.stats().measurements, 101);
}

#[test]
fn writes_after_drop_recreate_the_measurement() {
    let db = seeded();
    db.drop_measurement("Power");
    db.write(
        DataPoint::new("Power", EpochSecs::new(0))
            .tag("NodeId", "10.101.1.2")
            .field_f64("Reading", 300.0),
    )
    .unwrap();
    let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(60));
    let (rs, _) = db.query(&q).unwrap();
    assert_eq!(rs.series.len(), 1);
    assert_eq!(rs.series[0].key.tag("NodeId"), Some("10.101.1.2"));
    // Old Power data stayed dropped.
    assert_eq!(rs.point_count(), 1);
}

#[test]
fn meta_queries_reflect_drops() {
    let db = seeded();
    db.drop_measurement("Power");
    assert!(!db.measurements().contains(&"Power".to_string()));
    assert!(db.series_keys(Some("Power")).is_empty());
    assert!(db.tag_keys("Power").is_empty());
}
