//! Property tests across the TSDB stack: codecs, line protocol, and
//! query/aggregation invariants.

use monster_tsdb::query::Aggregation;
use monster_tsdb::{DataPoint, Db, DbConfig, FieldValue, Query};
use monster_util::EpochSecs;
use proptest::prelude::*;

fn arb_field_value() -> impl Strategy<Value = FieldValue> {
    prop_oneof![
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(FieldValue::Float),
        any::<i64>().prop_map(FieldValue::Int),
        any::<bool>().prop_map(FieldValue::Bool),
        "[ -~]{0,24}".prop_map(FieldValue::Str),
    ]
}

fn arb_point() -> impl Strategy<Value = DataPoint> {
    (
        "[a-zA-Z][a-zA-Z0-9_]{0,8}",
        prop::collection::vec(("[a-zA-Z][a-zA-Z0-9_]{0,6}", "[a-zA-Z0-9._-]{1,10}"), 0..3),
        prop::collection::vec(("[a-zA-Z][a-zA-Z0-9_]{0,6}", arb_field_value()), 1..4),
        -1_000_000_000i64..4_000_000_000i64,
    )
        .prop_map(|(m, tags, fields, ts)| {
            let mut p = DataPoint::new(m, EpochSecs::new(ts));
            // Dedup tag/field keys to keep points canonical.
            let mut seen = std::collections::HashSet::new();
            for (k, v) in tags {
                if seen.insert(k.clone()) {
                    p = p.tag(k, v);
                }
            }
            let mut seen = std::collections::HashSet::new();
            for (k, v) in fields {
                if seen.insert(k.clone()) {
                    p = p.field(k, v);
                }
            }
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn line_protocol_round_trips(p in arb_point()) {
        let line = monster_tsdb::lineproto::encode(&p);
        let back = monster_tsdb::lineproto::parse(&line).unwrap();
        prop_assert_eq!(back, p);
    }

    #[test]
    fn timestamps_codec_round_trips(ts in prop::collection::vec(-4_000_000_000i64..4_000_000_000, 0..300)) {
        let enc = monster_tsdb::encode::timestamps::encode(&ts);
        prop_assert_eq!(monster_tsdb::encode::timestamps::decode(&enc, ts.len()).unwrap(), ts);
    }

    #[test]
    fn floats_codec_round_trips(vals in prop::collection::vec(any::<f64>().prop_filter("finite", |f| f.is_finite()), 0..300)) {
        let enc = monster_tsdb::encode::floats::encode(&vals);
        let dec = monster_tsdb::encode::floats::decode(&enc, vals.len()).unwrap();
        prop_assert_eq!(dec, vals);
    }

    #[test]
    fn ints_codec_round_trips(vals in prop::collection::vec(any::<i64>(), 0..300)) {
        let enc = monster_tsdb::encode::ints::encode(&vals);
        prop_assert_eq!(monster_tsdb::encode::ints::decode(&enc, vals.len()).unwrap(), vals);
    }

    #[test]
    fn strings_codec_round_trips(vals in prop::collection::vec("\\PC{0,16}", 0..100)) {
        let enc = monster_tsdb::encode::strings::encode(&vals);
        prop_assert_eq!(monster_tsdb::encode::strings::decode(&enc, vals.len()).unwrap(), vals);
    }

    /// Whole-block array decoding (`decode_into`, reused dirty buffer) is
    /// bit-identical to the point-at-a-time streaming reference decoder,
    /// for every codec.
    #[test]
    fn timestamps_batch_decode_matches_streaming(ts in prop::collection::vec(-4_000_000_000i64..4_000_000_000, 0..300)) {
        use monster_tsdb::encode::timestamps;
        let enc = timestamps::encode(&ts);
        let mut arr = vec![i64::MIN; 7]; // dirty reused buffer
        timestamps::decode_into(&enc, ts.len(), &mut arr).unwrap();
        let streamed: Vec<i64> = timestamps::iter(&enc, ts.len()).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&arr, &streamed);
        prop_assert_eq!(arr, ts);
    }

    #[test]
    fn floats_batch_decode_matches_streaming(vals in prop::collection::vec(any::<f64>(), 0..300)) {
        use monster_tsdb::encode::floats;
        let enc = floats::encode(&vals);
        let mut arr = vec![f64::NAN; 7];
        floats::decode_into(&enc, vals.len(), &mut arr).unwrap();
        let streamed: Vec<f64> = floats::iter(&enc, vals.len()).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(arr.len(), vals.len());
        for i in 0..vals.len() {
            // Bit-identical, including NaN payloads and signed zeros.
            prop_assert_eq!(arr[i].to_bits(), streamed[i].to_bits());
            prop_assert_eq!(arr[i].to_bits(), vals[i].to_bits());
        }
    }

    #[test]
    fn ints_batch_decode_matches_streaming(vals in prop::collection::vec(any::<i64>(), 0..300)) {
        use monster_tsdb::encode::ints;
        let enc = ints::encode(&vals);
        let mut arr = vec![i64::MAX; 7];
        ints::decode_into(&enc, vals.len(), &mut arr).unwrap();
        let streamed: Vec<i64> = ints::iter(&enc, vals.len()).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&arr, &streamed);
        prop_assert_eq!(arr, vals);
    }

    #[test]
    fn bools_batch_decode_matches_streaming(vals in prop::collection::vec(any::<bool>(), 0..300)) {
        use monster_tsdb::encode::bools;
        let enc = bools::encode(&vals);
        let mut arr = vec![true; 7];
        bools::decode_into(&enc, vals.len(), &mut arr).unwrap();
        let streamed: Vec<bool> = bools::iter(&enc, vals.len()).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&arr, &streamed);
        prop_assert_eq!(arr, vals);
    }

    #[test]
    fn strings_batch_decode_matches_streaming(vals in prop::collection::vec("\\PC{0,16}", 0..100)) {
        use monster_tsdb::encode::strings;
        let enc = strings::encode(&vals);
        let mut arr = vec!["residue".to_string(); 3];
        strings::decode_into(&enc, vals.len(), &mut arr).unwrap();
        let streamed: Vec<String> = strings::iter(&enc, vals.len()).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(&arr, &streamed);
        prop_assert_eq!(arr, vals);
    }

    /// Truncated or corrupted blocks fail identically (both error or both
    /// succeed with the same values) on the array and streaming paths.
    #[test]
    fn corrupt_blocks_agree_between_paths(
        vals in prop::collection::vec(any::<i64>(), 1..50),
        cut in 0usize..64,
    ) {
        use monster_tsdb::encode::ints;
        let enc = ints::encode(&vals);
        let cut = cut.min(enc.len());
        let data = &enc[..cut];
        let mut arr = Vec::new();
        let array = ints::decode_into(data, vals.len(), &mut arr);
        let streamed: Result<Vec<i64>, _> = ints::iter(data, vals.len()).collect();
        match (array, streamed) {
            (Ok(()), Ok(s)) => prop_assert_eq!(arr, s),
            (Err(_), Err(_)) => {}
            (a, s) => prop_assert!(false, "array={:?} streamed-ok={:?}", a.is_ok(), s.is_ok()),
        }
    }

    /// Staged-then-flushed ingest is indistinguishable from the locked
    /// write path: same query results, same stats.
    #[test]
    fn staging_equals_write_batch(
        pts in prop::collection::vec((0i64..200_000, -1e6f64..1e6), 1..120),
        threshold in 1usize..64,
    ) {
        let staged_db = Db::new(DbConfig { shard_duration: 50_000, ..DbConfig::default() });
        let locked_db = Db::new(DbConfig { shard_duration: 50_000, ..DbConfig::default() });
        let batch: Vec<DataPoint> = pts.iter().enumerate().map(|(i, &(t, v))| {
            DataPoint::new("m", EpochSecs::new(t))
                .tag("n", if i % 3 == 0 { "a" } else { "b" })
                .field_f64("v", v)
        }).collect();
        let mut stager = staged_db.stager_with_capacity(threshold);
        for chunk in batch.chunks(7) {
            stager.stage_batch(chunk).unwrap();
            locked_db.write_batch(chunk).unwrap();
        }
        stager.flush().unwrap();
        prop_assert_eq!(staged_db.stats(), locked_db.stats());
        let q = Query::select("m", "v", EpochSecs::new(0), EpochSecs::new(200_000));
        let (rs_s, _) = staged_db.query(&q).unwrap();
        let (rs_l, _) = locked_db.query(&q).unwrap();
        prop_assert_eq!(rs_s, rs_l);
    }

    /// count() over any windowing equals the number of in-range points.
    #[test]
    fn windowed_count_conserves_points(
        times in prop::collection::vec(0i64..100_000, 1..200),
        window in 1i64..5_000,
    ) {
        let db = Db::new(DbConfig::default());
        for (i, &t) in times.iter().enumerate() {
            db.write(
                DataPoint::new("m", EpochSecs::new(t))
                    .tag("n", "x")
                    .field_f64("v", i as f64),
            ).unwrap();
        }
        let q = Query::select("m", "v", EpochSecs::new(0), EpochSecs::new(100_000))
            .aggregate(Aggregation::Count)
            .group_by_time(window);
        let (rs, _) = db.query(&q).unwrap();
        let total: f64 = rs.series.iter()
            .flat_map(|s| s.points.iter())
            .filter_map(|(_, v)| v.as_f64())
            .sum();
        prop_assert_eq!(total as usize, times.len());
    }

    /// max over windows == global max; min over windows == global min.
    #[test]
    fn window_extremes_bound_global(
        pts in prop::collection::vec((0i64..50_000, -1e6f64..1e6), 1..150),
        window in 1i64..10_000,
    ) {
        let db = Db::new(DbConfig::default());
        for &(t, v) in &pts {
            db.write(
                DataPoint::new("m", EpochSecs::new(t)).tag("n", "x").field_f64("v", v),
            ).unwrap();
        }
        let run = |agg| {
            let q = Query::select("m", "v", EpochSecs::new(0), EpochSecs::new(50_000))
                .aggregate(agg)
                .group_by_time(window);
            let (rs, _) = db.query(&q).unwrap();
            rs.series[0].points.iter().filter_map(|(_, v)| v.as_f64()).collect::<Vec<f64>>()
        };
        let global_max = pts.iter().map(|(_, v)| *v).fold(f64::NEG_INFINITY, f64::max);
        let global_min = pts.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        let maxes = run(Aggregation::Max);
        let mins = run(Aggregation::Min);
        let window_max = maxes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let window_min = mins.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(window_max, global_max);
        prop_assert_eq!(window_min, global_min);
    }

    /// Raw select returns exactly the in-range points, sorted by time.
    #[test]
    fn raw_select_filters_range(
        times in prop::collection::vec(0i64..10_000, 1..100),
        lo in 0i64..5_000,
        len in 1i64..5_000,
    ) {
        let db = Db::new(DbConfig::default());
        for &t in &times {
            db.write(
                DataPoint::new("m", EpochSecs::new(t)).tag("n", "x").field_i64("v", t),
            ).unwrap();
        }
        let hi = lo + len;
        let q = Query::select("m", "v", EpochSecs::new(lo), EpochSecs::new(hi));
        let (rs, _) = db.query(&q).unwrap();
        let got: Vec<i64> = rs.series.first()
            .map(|s| s.points.iter().map(|(t, _)| t.as_secs()).collect())
            .unwrap_or_default();
        let mut expect: Vec<i64> = times.iter().copied().filter(|&t| t >= lo && t < hi).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
