//! Data points: one timestamped observation with tags and fields.

use crate::field::FieldValue;
use monster_util::EpochSecs;

/// A single data point, built fluently:
///
/// ```
/// use monster_tsdb::DataPoint;
/// use monster_util::EpochSecs;
/// let p = DataPoint::new("Power", EpochSecs::new(1_583_792_296))
///     .tag("NodeId", "10.101.1.1")
///     .tag("Label", "NodePower")
///     .field_f64("Reading", 273.8);
/// assert_eq!(p.measurement, "Power");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Target measurement (≈ SQL table).
    pub measurement: String,
    /// Indexed key/value tags, in insertion order.
    pub tags: Vec<(String, String)>,
    /// Field name/value pairs.
    pub fields: Vec<(String, FieldValue)>,
    /// Observation time.
    pub time: EpochSecs,
}

impl DataPoint {
    /// Start a point for `measurement` at `time`.
    pub fn new(measurement: impl Into<String>, time: EpochSecs) -> Self {
        DataPoint { measurement: measurement.into(), tags: Vec::new(), fields: Vec::new(), time }
    }

    /// Add a tag.
    pub fn tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.tags.push((key.into(), value.into()));
        self
    }

    /// Add a float field.
    pub fn field_f64(self, key: impl Into<String>, value: f64) -> Self {
        self.field(key, FieldValue::Float(value))
    }

    /// Add an integer field.
    pub fn field_i64(self, key: impl Into<String>, value: i64) -> Self {
        self.field(key, FieldValue::Int(value))
    }

    /// Add a string field.
    pub fn field_str(self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.field(key, FieldValue::Str(value.into()))
    }

    /// Add a boolean field.
    pub fn field_bool(self, key: impl Into<String>, value: bool) -> Self {
        self.field(key, FieldValue::Bool(value))
    }

    /// Add any field value.
    pub fn field(mut self, key: impl Into<String>, value: FieldValue) -> Self {
        self.fields.push((key.into(), value));
        self
    }

    /// Tag lookup.
    pub fn get_tag(&self, key: &str) -> Option<&str> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Field lookup.
    pub fn get_field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the point is ingestible (at least one field).
    pub fn is_valid(&self) -> bool {
        !self.fields.is_empty() && !self.measurement.is_empty()
    }

    /// Approximate raw size in line-protocol bytes — the unit the Fig. 13
    /// volume accounting uses for "data volume as collected".
    pub fn wire_size(&self) -> usize {
        let mut n = self.measurement.len();
        for (k, v) in &self.tags {
            n += 1 + k.len() + 1 + v.len(); // ,k=v
        }
        n += 1; // space
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                n += 1;
            }
            n += k.len() + 1 + v.wire_size();
        }
        n += 1 + 10; // space + epoch timestamp digits
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4_point() -> DataPoint {
        DataPoint::new("Power", EpochSecs::new(1_583_792_296))
            .tag("NodeId", "10.101.1.1")
            .tag("Label", "NodePower")
            .field_f64("Reading", 273.8)
    }

    #[test]
    fn builder_accumulates() {
        let p = fig4_point();
        assert_eq!(p.get_tag("NodeId"), Some("10.101.1.1"));
        assert_eq!(p.get_tag("Label"), Some("NodePower"));
        assert_eq!(p.get_field("Reading"), Some(&FieldValue::Float(273.8)));
        assert_eq!(p.get_tag("nope"), None);
        assert!(p.is_valid());
    }

    #[test]
    fn fieldless_points_invalid() {
        let p = DataPoint::new("Power", EpochSecs::new(0)).tag("a", "b");
        assert!(!p.is_valid());
        let p = DataPoint::new("", EpochSecs::new(0)).field_f64("x", 1.0);
        assert!(!p.is_valid());
    }

    #[test]
    fn wire_size_matches_encoded_length() {
        let p = fig4_point();
        let encoded = crate::lineproto::encode(&p);
        // wire_size is an estimate; must be within a couple bytes of the
        // actual encoding for unescaped content.
        let diff = (p.wire_size() as i64 - encoded.len() as i64).abs();
        assert!(diff <= 2, "estimate {} actual {}", p.wire_size(), encoded.len());
    }

    #[test]
    fn mixed_field_types() {
        let p = DataPoint::new("JobsInfo", EpochSecs::new(100))
            .tag("JobId", "1291784")
            .field_str("User", "jieyao")
            .field_i64("StartTime", 1_583_792_000)
            .field_i64("TotalNodes", 58)
            .field_bool("Array", false);
        assert_eq!(p.fields.len(), 4);
        assert_eq!(p.get_field("StartTime").unwrap().as_i64(), Some(1_583_792_000));
    }
}
