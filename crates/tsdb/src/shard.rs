//! Time-partitioned shards.
//!
//! The database splits the timeline into fixed-duration shards (default one
//! day, like InfluxDB's retention-policy shard groups). A query only opens
//! the shards overlapping its time range — the reason query time grows with
//! time range in Fig. 10.
//!
//! Since the sharded-lock engine rework, each shard lives behind its own
//! `RwLock` inside [`crate::db::Db`]: writers to different shards append in
//! parallel, and a query's overlapping-shard scans fan out across a worker
//! pool. Columns are keyed by `(SeriesId, FieldId)` — both dense `u32` ids
//! resolved up front in the series index — so the append hot path does no
//! string hashing and no key allocation.

use crate::column::{AggScan, Column, RunSlice, ScanItem, ScanStats};
use crate::field::FieldValue;
use crate::series::{FieldId, SeriesId};
use monster_util::Result;
use std::collections::HashMap;

/// One shard: `[start, end)` on the epoch-seconds timeline.
#[derive(Debug)]
pub struct Shard {
    /// Inclusive start (epoch seconds).
    pub start: i64,
    /// Exclusive end (epoch seconds).
    pub end: i64,
    /// Per-series, per-field columns.
    columns: HashMap<(SeriesId, FieldId), Column>,
    point_count: usize,
    /// Incrementally-maintained sum of the columns' encoded bytes, so the
    /// engine's size accounting is O(1) per operation.
    encoded: usize,
    /// Tombstone set by retention when the shard leaves the shard map. A
    /// writer that raced the removal (it fetched the `Arc` from the map
    /// before the drop) sees the flag after acquiring the shard lock and
    /// re-fetches instead of appending into an orphan.
    dropped: bool,
    /// Set once tiering has exported this shard to an immutable segment
    /// file: scans of a cold shard are priced by the cold-tier disk model
    /// and its WAL records are reclaimable. Data stays readable in place.
    cold: bool,
}

impl Shard {
    /// An empty shard covering `[start, end)`.
    pub fn new(start: i64, end: i64) -> Self {
        assert!(end > start);
        Shard {
            start,
            end,
            columns: HashMap::new(),
            point_count: 0,
            encoded: 0,
            dropped: false,
            cold: false,
        }
    }

    /// True when `ts` belongs to this shard.
    pub fn covers(&self, ts: i64) -> bool {
        ts >= self.start && ts < self.end
    }

    /// Whether the shard overlaps the query range `[qs, qe)`.
    pub fn overlaps(&self, qs: i64, qe: i64) -> bool {
        self.start < qe && qs < self.end
    }

    /// Append one field value for a series. The `(series, field)` key is
    /// two `Copy` ids — zero allocations in the steady state (the column
    /// exists and its tail has capacity).
    pub fn append(
        &mut self,
        series: SeriesId,
        field: FieldId,
        ts: i64,
        value: &FieldValue,
    ) -> Result<()> {
        debug_assert!(self.covers(ts));
        let col = self.columns.entry((series, field)).or_insert_with(|| Column::new(value));
        let before = col.encoded_bytes();
        col.append(ts, value)?;
        self.encoded = self.encoded + col.encoded_bytes() - before;
        self.point_count += 1;
        Ok(())
    }

    /// Bulk-append a typed run of points to one column: one map lookup and
    /// one type check for the whole run, values copied in with
    /// `extend_from_slice`. All-or-nothing — a type-conflicting run leaves
    /// the shard untouched. Block layout is bit-identical to appending the
    /// same points via [`Self::append`].
    pub fn append_run(
        &mut self,
        series: SeriesId,
        field: FieldId,
        ts: &[i64],
        values: RunSlice<'_>,
    ) -> Result<()> {
        if ts.is_empty() {
            return Ok(());
        }
        debug_assert!(ts.iter().all(|&t| self.covers(t)));
        let col = self.columns.entry((series, field)).or_insert_with(|| Column::new_for(values));
        let before = col.encoded_bytes();
        col.append_run(ts, values)?;
        self.encoded = self.encoded + col.encoded_bytes() - before;
        self.point_count += ts.len();
        Ok(())
    }

    /// Append a span of same-`(series, field)` points from the write path's
    /// sorted batch: one column lookup for the whole span, then per-point
    /// appends (values are heterogeneously typed `FieldValue`s, so the type
    /// check stays per point, preserving partial-apply error semantics).
    /// `applied` counts points that landed before any error.
    pub fn append_span(
        &mut self,
        series: SeriesId,
        field: FieldId,
        pts: &[(SeriesId, FieldId, i64, &FieldValue)],
        applied: &mut usize,
    ) -> Result<()> {
        let Some(first) = pts.first() else { return Ok(()) };
        debug_assert!(pts
            .iter()
            .all(|&(s, f, ts, _)| (s, f) == (series, field) && self.covers(ts)));
        let col = self.columns.entry((series, field)).or_insert_with(|| Column::new(first.3));
        let before = col.encoded_bytes();
        let mut res = Ok(());
        for &(_, _, ts, value) in pts {
            if let Err(e) = col.append(ts, value) {
                res = Err(e);
                break;
            }
            self.point_count += 1;
            *applied += 1;
        }
        self.encoded = self.encoded + col.encoded_bytes() - before;
        res
    }

    /// Scan one series' field within `[start, end)`.
    pub fn scan(
        &self,
        series: SeriesId,
        field: FieldId,
        start: i64,
        end: i64,
        f: impl FnMut(i64, FieldValue),
    ) -> Result<ScanStats> {
        match self.columns.get(&(series, field)) {
            Some(col) => col.scan(start, end, f),
            None => Ok(ScanStats::default()),
        }
    }

    /// Aggregation-aware scan of one series' field (zone-map pushdown):
    /// fully contained sealed blocks are emitted as summary partials
    /// without decompression. See [`Column::scan_agg`].
    pub fn scan_agg(
        &self,
        series: SeriesId,
        field: FieldId,
        spec: AggScan,
        emit: impl FnMut(ScanItem),
    ) -> Result<ScanStats> {
        match self.columns.get(&(series, field)) {
            Some(col) => col.scan_agg(spec, emit),
            None => Ok(ScanStats::default()),
        }
    }

    /// Visit every stored (series, field, timestamp, value) in the shard.
    pub fn export(&self, mut f: impl FnMut(SeriesId, FieldId, i64, FieldValue)) -> Result<()> {
        for ((series, field), col) in &self.columns {
            col.scan(i64::MIN, i64::MAX, |ts, v| f(*series, *field, ts, v))?;
        }
        Ok(())
    }

    /// Field values appended in this shard (counts each field write once).
    pub fn point_count(&self) -> usize {
        self.point_count
    }

    /// Encoded at-rest bytes across all columns (O(1), maintained
    /// incrementally on append/seal/drop).
    pub fn encoded_bytes(&self) -> usize {
        self.encoded
    }

    /// Compact: seal every column's raw tail into compressed blocks.
    /// Returns the number of columns sealed.
    pub fn compact(&mut self) -> usize {
        let mut sealed = 0usize;
        for col in self.columns.values_mut() {
            let before = col.encoded_bytes();
            if col.seal_now() {
                sealed += 1;
            }
            self.encoded = self.encoded + col.encoded_bytes() - before;
        }
        sealed
    }

    /// Raw (unsealed) points across all columns.
    pub fn tail_points(&self) -> usize {
        self.columns.values().map(Column::tail_len).sum()
    }

    /// Remove every column belonging to the given series. Returns the
    /// `(points, encoded bytes)` removed, so the engine's incremental
    /// statistics stay exact.
    pub fn drop_series(&mut self, victims: &std::collections::HashSet<SeriesId>) -> (usize, usize) {
        let (points_before, encoded_before) = (self.point_count, self.encoded);
        self.columns.retain(|(sid, _), _| !victims.contains(sid));
        // point_count/encoded track appends; recompute from survivors.
        self.point_count = self.columns.values().map(Column::point_count).sum();
        self.encoded = self.columns.values().map(Column::encoded_bytes).sum();
        (points_before - self.point_count, encoded_before - self.encoded)
    }

    /// Mark the shard as removed from the shard map (see `dropped`).
    pub fn mark_dropped(&mut self) {
        self.dropped = true;
    }

    /// True once retention has removed this shard from the shard map.
    pub fn is_dropped(&self) -> bool {
        self.dropped
    }

    /// Mark the shard as tiered to cold storage (see `cold`).
    pub fn mark_cold(&mut self) {
        self.cold = true;
    }

    /// True once tiering has exported this shard to an immutable segment
    /// file on the cold tier.
    pub fn is_cold(&self) -> bool {
        self.cold
    }

    /// The (series, field) keys of every column in this shard.
    pub fn column_keys(&self) -> Vec<(SeriesId, FieldId)> {
        self.columns.keys().copied().collect()
    }

    /// Number of (series, field) columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_and_overlaps() {
        let s = Shard::new(0, 86_400);
        assert!(s.covers(0));
        assert!(s.covers(86_399));
        assert!(!s.covers(86_400));
        assert!(s.overlaps(-100, 1));
        assert!(s.overlaps(86_399, 100_000));
        assert!(!s.overlaps(86_400, 100_000));
        assert!(!s.overlaps(-100, 0));
    }

    #[test]
    fn append_routes_to_columns() {
        let mut s = Shard::new(0, 1000);
        let sid = SeriesId(0);
        let (reading, other) = (FieldId(0), FieldId(1));
        s.append(sid, reading, 10, &FieldValue::Float(1.0)).unwrap();
        s.append(sid, reading, 20, &FieldValue::Float(2.0)).unwrap();
        s.append(sid, other, 10, &FieldValue::Int(5)).unwrap();
        assert_eq!(s.point_count(), 3);
        assert_eq!(s.column_count(), 2);
        let mut seen = Vec::new();
        s.scan(sid, reading, 0, 1000, |t, v| seen.push((t, v))).unwrap();
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn scan_of_missing_column_is_empty() {
        let s = Shard::new(0, 1000);
        let stats = s.scan(SeriesId(9), FieldId(7), 0, 1000, |_, _| panic!("no data")).unwrap();
        assert_eq!(stats, ScanStats::default());
    }

    #[test]
    fn drop_series_reports_exact_deltas() {
        let mut s = Shard::new(0, 1000);
        for i in 0..10 {
            s.append(SeriesId(0), FieldId(0), i, &FieldValue::Float(i as f64)).unwrap();
            s.append(SeriesId(1), FieldId(0), i, &FieldValue::Float(i as f64)).unwrap();
        }
        let (points_before, encoded_before) = (s.point_count(), s.encoded_bytes());
        let victims = std::collections::HashSet::from([SeriesId(0)]);
        let (dp, db) = s.drop_series(&victims);
        assert_eq!(dp, 10);
        assert_eq!(s.point_count(), points_before - dp);
        assert_eq!(s.encoded_bytes(), encoded_before - db);
        // Incremental byte counter matches a fresh walk.
        let walked: usize = s.column_keys().len(); // survivors only
        assert_eq!(walked, 1);
    }

    #[test]
    fn append_run_matches_point_appends() {
        let mut by_point = Shard::new(0, 10_000);
        let mut by_run = Shard::new(0, 10_000);
        let sid = SeriesId(3);
        let fid = FieldId(1);
        let ts: Vec<i64> = (0..2000).collect();
        let vals: Vec<f64> = (0..2000).map(|i| (i % 13) as f64).collect();
        for (&t, &v) in ts.iter().zip(&vals) {
            by_point.append(sid, fid, t, &FieldValue::Float(v)).unwrap();
        }
        by_run.append_run(sid, fid, &ts, RunSlice::Float(&vals)).unwrap();
        assert_eq!(by_run.point_count(), by_point.point_count());
        assert_eq!(by_run.encoded_bytes(), by_point.encoded_bytes());
        let mut a = Vec::new();
        let mut b = Vec::new();
        by_point.scan(sid, fid, 0, 10_000, |t, v| a.push((t, v))).unwrap();
        by_run.scan(sid, fid, 0, 10_000, |t, v| b.push((t, v))).unwrap();
        assert_eq!(a, b);
        // Conflicting run is all-or-nothing.
        let err = by_run.append_run(sid, fid, &[5000], RunSlice::Int(&[1])).unwrap_err();
        assert!(err.to_string().contains("type conflict"));
        assert_eq!(by_run.point_count(), by_point.point_count());
        assert_eq!(by_run.encoded_bytes(), by_point.encoded_bytes());
    }

    #[test]
    fn append_span_counts_partial_applies() {
        let mut s = Shard::new(0, 1000);
        let sid = SeriesId(0);
        let fid = FieldId(0);
        let good = FieldValue::Float(1.0);
        let bad = FieldValue::Int(2);
        let pts = vec![(sid, fid, 1i64, &good), (sid, fid, 2, &good), (sid, fid, 3, &bad)];
        let mut applied = 0usize;
        let err = s.append_span(sid, fid, &pts, &mut applied).unwrap_err();
        assert!(err.to_string().contains("type conflict"));
        assert_eq!(applied, 2);
        assert_eq!(s.point_count(), 2);
    }

    #[test]
    fn compact_keeps_encoded_counter_consistent() {
        let mut s = Shard::new(0, 100_000);
        for i in 0..500 {
            s.append(SeriesId(0), FieldId(0), i, &FieldValue::Float(250.0)).unwrap();
        }
        let raw = s.encoded_bytes();
        assert_eq!(s.compact(), 1);
        assert!(s.encoded_bytes() < raw, "sealing should shrink at-rest bytes");
        assert_eq!(s.tail_points(), 0);
    }
}
