//! Time-partitioned shards.
//!
//! The database splits the timeline into fixed-duration shards (default one
//! day, like InfluxDB's retention-policy shard groups). A query only opens
//! the shards overlapping its time range — the reason query time grows with
//! time range in Fig. 10.

use crate::column::{Column, ScanStats};
use crate::field::FieldValue;
use crate::series::SeriesId;
use monster_util::Result;
use std::collections::HashMap;

/// One shard: `[start, end)` on the epoch-seconds timeline.
#[derive(Debug)]
pub struct Shard {
    /// Inclusive start (epoch seconds).
    pub start: i64,
    /// Exclusive end (epoch seconds).
    pub end: i64,
    /// Per-series, per-field columns.
    columns: HashMap<(SeriesId, String), Column>,
    point_count: usize,
}

impl Shard {
    /// An empty shard covering `[start, end)`.
    pub fn new(start: i64, end: i64) -> Self {
        assert!(end > start);
        Shard { start, end, columns: HashMap::new(), point_count: 0 }
    }

    /// True when `ts` belongs to this shard.
    pub fn covers(&self, ts: i64) -> bool {
        ts >= self.start && ts < self.end
    }

    /// Whether the shard overlaps the query range `[qs, qe)`.
    pub fn overlaps(&self, qs: i64, qe: i64) -> bool {
        self.start < qe && qs < self.end
    }

    /// Append one field value for a series.
    pub fn append(
        &mut self,
        series: SeriesId,
        field: &str,
        ts: i64,
        value: &FieldValue,
    ) -> Result<()> {
        debug_assert!(self.covers(ts));
        let col =
            self.columns.entry((series, field.to_string())).or_insert_with(|| Column::new(value));
        col.append(ts, value)?;
        self.point_count += 1;
        Ok(())
    }

    /// Scan one series' field within `[start, end)`.
    pub fn scan(
        &self,
        series: SeriesId,
        field: &str,
        start: i64,
        end: i64,
        f: impl FnMut(i64, FieldValue),
    ) -> Result<ScanStats> {
        match self.columns.get(&(series, field.to_string())) {
            Some(col) => col.scan(start, end, f),
            None => Ok(ScanStats::default()),
        }
    }

    /// Visit every stored (series, field, timestamp, value) in the shard.
    pub fn export(&self, mut f: impl FnMut(SeriesId, &str, i64, FieldValue)) -> Result<()> {
        for ((series, field), col) in &self.columns {
            col.scan(i64::MIN, i64::MAX, |ts, v| f(*series, field, ts, v))?;
        }
        Ok(())
    }

    /// Field values appended in this shard (counts each field write once).
    pub fn point_count(&self) -> usize {
        self.point_count
    }

    /// Encoded at-rest bytes across all columns.
    pub fn encoded_bytes(&self) -> usize {
        self.columns.values().map(Column::encoded_bytes).sum()
    }

    /// Compact: seal every column's raw tail into compressed blocks.
    /// Returns the number of columns sealed.
    pub fn compact(&mut self) -> usize {
        self.columns.values_mut().map(|c| usize::from(c.seal_now())).sum()
    }

    /// Raw (unsealed) points across all columns.
    pub fn tail_points(&self) -> usize {
        self.columns.values().map(Column::tail_len).sum()
    }

    /// Remove every column belonging to the given series.
    pub fn drop_series(&mut self, victims: &std::collections::HashSet<SeriesId>) {
        let before: usize = self.columns.len();
        self.columns.retain(|(sid, _), _| !victims.contains(sid));
        // point_count tracks appends; recompute from surviving columns.
        if self.columns.len() != before {
            self.point_count = self.columns.values().map(Column::point_count).sum();
        }
    }

    /// The (series, field) keys of every column in this shard.
    pub fn column_keys(&self) -> Vec<(SeriesId, String)> {
        self.columns.keys().cloned().collect()
    }

    /// Number of (series, field) columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_and_overlaps() {
        let s = Shard::new(0, 86_400);
        assert!(s.covers(0));
        assert!(s.covers(86_399));
        assert!(!s.covers(86_400));
        assert!(s.overlaps(-100, 1));
        assert!(s.overlaps(86_399, 100_000));
        assert!(!s.overlaps(86_400, 100_000));
        assert!(!s.overlaps(-100, 0));
    }

    #[test]
    fn append_routes_to_columns() {
        let mut s = Shard::new(0, 1000);
        let sid = SeriesId(0);
        s.append(sid, "Reading", 10, &FieldValue::Float(1.0)).unwrap();
        s.append(sid, "Reading", 20, &FieldValue::Float(2.0)).unwrap();
        s.append(sid, "Other", 10, &FieldValue::Int(5)).unwrap();
        assert_eq!(s.point_count(), 3);
        assert_eq!(s.column_count(), 2);
        let mut seen = Vec::new();
        s.scan(sid, "Reading", 0, 1000, |t, v| seen.push((t, v))).unwrap();
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn scan_of_missing_column_is_empty() {
        let s = Shard::new(0, 1000);
        let stats = s.scan(SeriesId(9), "none", 0, 1000, |_, _| panic!("no data")).unwrap();
        assert_eq!(stats, ScanStats::default());
    }
}
