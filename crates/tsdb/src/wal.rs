//! Write-ahead log: CRC32-framed, length-prefixed segments with group
//! commit.
//!
//! Every accepted batch is rendered as line-protocol text and appended to
//! the active segment **before** it becomes visible to readers:
//!
//! ```text
//! wal-<seq>.log := "MWALSEG1" record*
//! record        := len:u32le crc32:u32le payload[len]
//! payload       := line-protocol text, one line per point
//! ```
//!
//! The CRC (IEEE 802.3, the `cksum`/zlib polynomial) covers the payload
//! only; the length prefix is validated by bounds-checking against the
//! remaining file. A record torn anywhere — header, payload, or CRC —
//! makes that record and everything after it unrecoverable *by design*:
//! appends are strictly sequential, so a torn frame can only be the
//! unsynced tail (see [`crate::recover`]).
//!
//! # Group commit
//!
//! `write_all` lands every record in the OS page cache immediately;
//! `fdatasync` is deferred until either [`WalTuning::sync_bytes`] of
//! unsynced records accumulate or the oldest unsynced record is older than
//! [`WalTuning::sync_interval`]. One flush durably commits every record
//! written since the last — batches from all writers share the fsync, which
//! is what keeps per-batch durability overhead near zero at collector
//! cadence. A batch counts as **acknowledged** only once a sync covering it
//! completes ([`WalStatus::acked_records`]); [`Wal::sync`] forces the
//! boundary for tests and benches.
//!
//! The appender takes one private mutex, reuses one frame buffer, and
//! performs zero heap allocations in the steady state — the staging path's
//! zero-alloc guarantee (`tests/alloc_steady_state.rs`) holds with the WAL
//! enabled.
//!
//! # Segments and reclamation
//!
//! The active segment rolls at [`WalTuning::segment_bytes`] (synced, then
//! sealed). Sealed segments remember the maximum data timestamp they
//! contain; once tiering has compacted every shard that could hold those
//! timestamps into immutable segment files ([`crate::db::Db::tier_cold_shards`]),
//! [`Wal::reclaim_before`] deletes them. The active segment is never
//! reclaimed.

use monster_util::Result;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Magic bytes opening every WAL segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"MWALSEG1";

/// Frame header size: `u32` length + `u32` CRC.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one record's payload; a length prefix above this is
/// treated as corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: usize = 64 << 20;

// --- CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) ----------------------
// Hand-rolled: the workspace deliberately has no external dependencies.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the checksum framing every WAL record.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Group-commit and segment-rolling knobs ([`crate::DbConfig::wal`]). The
/// WAL itself is enabled by opening the database with a directory
/// ([`crate::db::Db::recover`]); these only tune it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalTuning {
    /// Roll the active segment once it exceeds this many bytes.
    pub segment_bytes: usize,
    /// Group-commit size threshold: fsync once this many unsynced record
    /// bytes accumulate.
    pub sync_bytes: usize,
    /// Group-commit age threshold: fsync when the oldest unsynced record
    /// is older than this (checked on append; callers with latency
    /// deadlines use [`Wal::sync`]).
    pub sync_interval: Duration,
}

impl Default for WalTuning {
    fn default() -> Self {
        WalTuning {
            segment_bytes: 8 << 20,
            sync_bytes: 512 << 10,
            sync_interval: Duration::from_millis(50),
        }
    }
}

/// Appender state snapshot (observability and test assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStatus {
    /// Sealed segments plus the active one.
    pub segments: usize,
    /// Records appended since open (durable or not).
    pub appended_records: u64,
    /// Records covered by a completed fsync — the acknowledgment
    /// boundary: these survive any crash.
    pub acked_records: u64,
    /// Bytes written to the active segment (including its magic).
    pub active_segment_bytes: usize,
    /// Bytes written since the last fsync.
    pub unsynced_bytes: usize,
}

/// One sealed (rolled, fully synced) segment.
#[derive(Debug, Clone, Copy)]
struct SealedSegment {
    seq: u64,
    /// Maximum data timestamp of any record in the segment (`i64::MIN`
    /// when it holds no points).
    max_ts: i64,
}

struct WalInner {
    file: File,
    seq: u64,
    seg_bytes: usize,
    seg_max_ts: i64,
    sealed: Vec<SealedSegment>,
    unsynced_bytes: usize,
    dirty_since: Option<Instant>,
    appended: u64,
    acked: u64,
    /// Reusable frame scratch (header + payload), cleared not shrunk.
    frame: Vec<u8>,
}

/// The write-ahead log appender. One per database; interior mutex, shared
/// by every writer. See the [module docs](self) for format and semantics.
pub struct Wal {
    dir: PathBuf,
    tuning: WalTuning,
    inner: Mutex<WalInner>,
    appends: Arc<monster_obs::Counter>,
    bytes: Arc<monster_obs::Counter>,
    syncs: Arc<monster_obs::Counter>,
    segments_gauge: Arc<monster_obs::Gauge>,
    reclaimed: Arc<monster_obs::Counter>,
}

/// Path of segment `seq` inside `dir`.
pub(crate) fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

/// Parse a segment sequence number out of a file name (`wal-<seq>.log`).
pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

impl Wal {
    /// Open a fresh WAL in `dir`, starting at segment 0. Fails if segment
    /// 0 already exists — recovery ([`crate::db::Db::recover`]) is the
    /// entry point for directories with history.
    pub fn create(dir: impl Into<PathBuf>, tuning: WalTuning) -> Result<Wal> {
        Wal::open_at(dir, tuning, 0, Vec::new())
    }

    /// Open the appender with an explicit next segment sequence and the
    /// sealed segments that survived recovery.
    fn open_at(
        dir: impl Into<PathBuf>,
        tuning: WalTuning,
        next_seq: u64,
        sealed: Vec<SealedSegment>,
    ) -> Result<Wal> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut file =
            OpenOptions::new().write(true).create_new(true).open(segment_path(&dir, next_seq))?;
        file.write_all(SEGMENT_MAGIC)?;
        let wal = Wal {
            dir,
            tuning,
            inner: Mutex::new(WalInner {
                file,
                seq: next_seq,
                seg_bytes: SEGMENT_MAGIC.len(),
                seg_max_ts: i64::MIN,
                sealed,
                unsynced_bytes: SEGMENT_MAGIC.len(),
                dirty_since: Some(Instant::now()),
                appended: 0,
                acked: 0,
                frame: Vec::new(),
            }),
            appends: monster_obs::counter_help(
                "monster_tsdb_wal_appends_total",
                "Records appended to the write-ahead log.",
            ),
            bytes: monster_obs::counter_help(
                "monster_tsdb_wal_bytes_total",
                "Framed bytes written to the write-ahead log.",
            ),
            syncs: monster_obs::counter_help(
                "monster_tsdb_wal_syncs_total",
                "Group commits (fdatasync calls) on the write-ahead log.",
            ),
            segments_gauge: monster_obs::gauge_help(
                "monster_tsdb_wal_segments",
                "Live write-ahead-log segment files (sealed + active).",
            ),
            reclaimed: monster_obs::counter_help(
                "monster_tsdb_wal_reclaimed_segments_total",
                "Sealed WAL segments deleted after their shards were tiered.",
            ),
        };
        wal.segments_gauge.set(wal.inner.lock().sealed.len() as i64 + 1);
        Ok(wal)
    }

    /// Re-open the appender after recovery: `sealed_segments` are the
    /// `(seq, max_ts)` pairs of surviving segment files; the active
    /// segment is created at `next_seq`.
    pub(crate) fn resume(
        dir: impl Into<PathBuf>,
        tuning: WalTuning,
        next_seq: u64,
        sealed_segments: &[(u64, i64)],
    ) -> Result<Wal> {
        let sealed =
            sealed_segments.iter().map(|&(seq, max_ts)| SealedSegment { seq, max_ts }).collect();
        Wal::open_at(dir, tuning, next_seq, sealed)
    }

    /// Append one record (an already-rendered line-protocol batch) to the
    /// active segment. `max_ts` is the maximum data timestamp in the
    /// payload, tracked per segment for reclamation. Returns whether this
    /// append triggered a group commit (the record — and every earlier one
    /// — is durable iff so).
    pub fn append(&self, payload: &[u8], max_ts: i64) -> Result<bool> {
        if payload.is_empty() {
            return Ok(false);
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        inner.frame.clear();
        inner.frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        inner.frame.extend_from_slice(&crc32(payload).to_le_bytes());
        inner.frame.extend_from_slice(payload);
        inner.file.write_all(&inner.frame)?;
        let frame_len = inner.frame.len();
        inner.seg_bytes += frame_len;
        inner.unsynced_bytes += frame_len;
        inner.dirty_since.get_or_insert_with(Instant::now);
        inner.appended += 1;
        inner.seg_max_ts = inner.seg_max_ts.max(max_ts);
        self.appends.inc();
        self.bytes.add(frame_len as u64);

        if inner.seg_bytes >= self.tuning.segment_bytes {
            self.roll(inner)?;
            return Ok(true);
        }
        let due = inner.unsynced_bytes >= self.tuning.sync_bytes
            || inner.dirty_since.map(|t| t.elapsed() >= self.tuning.sync_interval).unwrap_or(false);
        if due {
            self.sync_inner(inner)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Force a group commit: every appended record becomes durable (and
    /// acknowledged) before this returns.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.sync_inner(&mut inner)
    }

    fn sync_inner(&self, inner: &mut WalInner) -> Result<()> {
        if inner.unsynced_bytes > 0 {
            inner.file.sync_data()?;
            self.syncs.inc();
        }
        inner.unsynced_bytes = 0;
        inner.dirty_since = None;
        inner.acked = inner.appended;
        Ok(())
    }

    /// Seal the active segment (sync first, so sealed ⇒ durable) and open
    /// the next one.
    fn roll(&self, inner: &mut WalInner) -> Result<()> {
        self.sync_inner(inner)?;
        inner.sealed.push(SealedSegment { seq: inner.seq, max_ts: inner.seg_max_ts });
        inner.seq += 1;
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(segment_path(&self.dir, inner.seq))?;
        file.write_all(SEGMENT_MAGIC)?;
        inner.file = file;
        inner.seg_bytes = SEGMENT_MAGIC.len();
        inner.seg_max_ts = i64::MIN;
        inner.unsynced_bytes = SEGMENT_MAGIC.len();
        inner.dirty_since = Some(Instant::now());
        self.segments_gauge.set(inner.sealed.len() as i64 + 1);
        Ok(())
    }

    /// Delete every sealed segment whose maximum data timestamp is below
    /// `cut_ts` — safe once all shards that can contain those timestamps
    /// have been compacted into immutable segment files. The active
    /// segment is never touched. Returns the number of segments deleted.
    pub fn reclaim_before(&self, cut_ts: i64) -> Result<usize> {
        let mut inner = self.inner.lock();
        let mut removed = 0usize;
        let mut kept = Vec::with_capacity(inner.sealed.len());
        for seg in inner.sealed.drain(..) {
            if seg.max_ts < cut_ts {
                match std::fs::remove_file(segment_path(&self.dir, seg.seq)) {
                    Ok(()) | Err(_) => {} // already gone is as good as gone
                }
                removed += 1;
            } else {
                kept.push(seg);
            }
        }
        inner.sealed = kept;
        self.segments_gauge.set(inner.sealed.len() as i64 + 1);
        self.reclaimed.add(removed as u64);
        Ok(removed)
    }

    /// Current appender state.
    pub fn status(&self) -> WalStatus {
        let inner = self.inner.lock();
        WalStatus {
            segments: inner.sealed.len() + 1,
            appended_records: inner.appended,
            acked_records: inner.acked,
            active_segment_bytes: inner.seg_bytes,
            unsynced_bytes: inner.unsynced_bytes,
        }
    }

    /// The directory holding the segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Wal {
    /// Best-effort final group commit so an orderly shutdown acknowledges
    /// everything it accepted.
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("monster-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn append_frames_and_rolls_segments() {
        let dir = tmp_dir("roll");
        let tuning = WalTuning { segment_bytes: 64, ..WalTuning::default() };
        let wal = Wal::create(&dir, tuning).unwrap();
        for i in 0..10i64 {
            wal.append(format!("m v={i} {i}").as_bytes(), i).unwrap();
        }
        let status = wal.status();
        assert_eq!(status.appended_records, 10);
        assert!(status.segments > 1, "64-byte segments must roll: {status:?}");
        // Every segment file on disk starts with the magic.
        let mut files = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let bytes = std::fs::read(entry.unwrap().path()).unwrap();
            assert_eq!(&bytes[..8], SEGMENT_MAGIC);
            files += 1;
        }
        assert_eq!(files, status.segments);
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_advances_ack_boundary() {
        let dir = tmp_dir("ack");
        // Huge thresholds: nothing syncs implicitly.
        let tuning = WalTuning {
            segment_bytes: usize::MAX,
            sync_bytes: usize::MAX,
            sync_interval: Duration::from_secs(3600),
        };
        let wal = Wal::create(&dir, tuning).unwrap();
        assert!(!wal.append(b"m v=1 1", 1).unwrap());
        assert!(!wal.append(b"m v=2 2", 2).unwrap());
        assert_eq!(wal.status().acked_records, 0);
        wal.sync().unwrap();
        assert_eq!(wal.status().acked_records, 2);
        assert_eq!(wal.status().unsynced_bytes, 0);
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn size_threshold_triggers_group_commit() {
        let dir = tmp_dir("group");
        let tuning = WalTuning {
            segment_bytes: usize::MAX,
            sync_bytes: 64,
            sync_interval: Duration::from_secs(3600),
        };
        let wal = Wal::create(&dir, tuning).unwrap();
        let mut synced = false;
        for i in 0..20i64 {
            synced |= wal.append(format!("m v={i} {i}").as_bytes(), i).unwrap();
        }
        assert!(synced, "64 sync_bytes must trip within 20 records");
        assert!(wal.status().acked_records > 0);
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reclaim_deletes_only_old_sealed_segments() {
        let dir = tmp_dir("reclaim");
        let tuning = WalTuning { segment_bytes: 48, ..WalTuning::default() };
        let wal = Wal::create(&dir, tuning).unwrap();
        for i in 0..8i64 {
            wal.append(format!("m v={i} {}", i * 100).as_bytes(), i * 100).unwrap();
        }
        let before = wal.status().segments;
        assert!(before > 2);
        // Cut below everything: nothing reclaimable.
        assert_eq!(wal.reclaim_before(0).unwrap(), 0);
        // Cut above everything: all sealed segments go, active survives.
        let removed = wal.reclaim_before(i64::MAX).unwrap();
        assert_eq!(removed, before - 1);
        assert_eq!(wal.status().segments, 1);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // Appends continue on the active segment.
        wal.append(b"m v=9 900", 900).unwrap();
        drop(wal);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_names_round_trip() {
        let p = segment_path(Path::new("/x"), 42);
        assert_eq!(p.file_name().unwrap().to_str().unwrap(), "wal-00000042.log");
        assert_eq!(parse_segment_name("wal-00000042.log"), Some(42));
        assert_eq!(parse_segment_name("wal-7.log"), Some(7));
        assert_eq!(parse_segment_name("shard-100.seg"), None);
        assert_eq!(parse_segment_name("wal-x.log"), None);
    }
}
