//! `monster-tsdb` — an embedded time-series database.
//!
//! MonSTer stores every collected metric in InfluxDB (§III-C of the paper);
//! this crate is the from-scratch substitute. It implements the same data
//! model and the mechanisms the paper's evaluation exercises:
//!
//! * **Data model** — measurements, indexed tags, typed fields, second-
//!   resolution timestamps ([`point`], [`field`]);
//! * **Line protocol** — the text ingest format ([`lineproto`]);
//! * **Series indexing** — series keys, inverted tag index, cardinality
//!   tracking ([`series`]); schema design shows up as series cardinality,
//!   which is what the Fig. 13/14 experiments manipulate;
//! * **Columnar compression** — Gorilla-style delta-of-delta timestamps and
//!   XOR floats, zig-zag varint integers, dictionary strings ([`encode`],
//!   [`mod@column`]);
//! * **Shards** — time-partitioned storage ([`shard`]);
//! * **Query engine** — a mini-InfluxQL parser and executor with
//!   aggregation and `GROUP BY time(...)` downsampling ([`query`]);
//! * **Cost accounting** — every query returns a [`cost::QueryCost`]
//!   alongside its results; converting that cost through a
//!   [`monster_sim::DiskModel`] yields the *simulated* elapsed time used to
//!   reproduce Figs. 10, 12, 14 and 15 deterministically;
//! * **Concurrent execution** — a worker-pool query runner
//!   ([`concurrent`]) that reproduces the 5.5–6.5× speedup of Fig. 15.
//!
//! # Quickstart
//!
//! ```
//! use monster_tsdb::{Db, DbConfig, DataPoint};
//! use monster_util::EpochSecs;
//!
//! let db = Db::new(DbConfig::default());
//! db.write(
//!     DataPoint::new("Power", EpochSecs::new(1_583_792_296))
//!         .tag("NodeId", "10.101.1.1")
//!         .tag("Label", "NodePower")
//!         .field_f64("Reading", 273.8),
//! ).unwrap();
//!
//! let (res, _cost) = db
//!     .query_str("SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' \
//!                 AND time >= '2020-03-09T00:00:00Z' AND time < '2020-03-10T00:00:00Z' \
//!                 GROUP BY time(5m)")
//!     .unwrap();
//! assert_eq!(res.series.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod column;
pub mod concurrent;
pub mod cost;
pub mod db;
pub mod encode;
pub mod field;
pub mod http_api;
pub mod lineproto;
pub mod point;
pub mod query;
pub mod recover;
pub mod retention;
pub mod series;
pub mod shard;
pub mod snapshot;
pub mod staging;
pub mod wal;
pub mod watermark;

pub use column::{AggScan, BlockSummary, DecodeScratch, NumericSummary, RunSlice, ScanItem};
pub use cost::{CostParams, QueryCost, COST_WORDS};
pub use db::{Db, DbConfig, DbStats};
pub use field::FieldValue;
pub use point::DataPoint;
pub use query::{Aggregation, Fill, Query, ResultSet};
pub use recover::RecoveryReport;
pub use retention::{ContinuousQuery, RetentionPolicy, TierConfig, TierReport};
pub use series::{FieldId, SeriesId, SeriesKey};
pub use staging::WriteStager;
pub use wal::{WalStatus, WalTuning};
pub use watermark::MeasurementMark;
