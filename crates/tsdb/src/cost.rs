//! Query cost accounting and the simulated-time model.
//!
//! Every query returns a [`QueryCost`] describing the physical work it did:
//! index entries examined, series and blocks touched, points decoded, bytes
//! read. [`CostParams::split`] converts that work into simulated CPU and
//! I/O time against a storage device model — the mechanism behind the
//! deterministic reproduction of Figs. 10/12/14/15.
//!
//! Calibration notes (constants approximate the paper's stack — InfluxDB
//! 1.x driven by a Python middleware):
//!
//! * `per_query` dominates the ~50 s floor of Fig. 10: the original
//!   Metrics Builder issues ~13 queries × 467 nodes sequentially, each
//!   paying HTTP + parse + plan overhead against the database.
//! * `block_access_factor` derates the raw device seek for block reads:
//!   most TSM block reads hit the page cache / readahead, so the
//!   *effective* per-block latency is a small fraction of a cold seek.
//!   This is what keeps the HDD→SSD win at the paper's 1.5–2.1× instead
//!   of the raw 100× seek ratio.
//! * Scan CPU (`per_point_cpu`) is cheap; the expensive CPU is per
//!   *output* window (aggregation cursor + middleware marshalling), which
//!   lives in the builder's processing model.
//!
//! The *shape* of every figure comes from the physical counters; these
//! constants only set the scale.

use monster_sim::{DiskModel, VDuration};

/// Physical work done by a query (or a batch of queries).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// Index entries examined during planning (scales with database series
    /// cardinality — the §IV-B2 schema effect).
    pub index_entries: usize,
    /// Series actually scanned.
    pub series: usize,
    /// Discrete storage blocks read (≈ seeks on HDD).
    pub blocks: usize,
    /// Sealed blocks answered from their zone-map summary without
    /// decompression (aggregation pushdown). These cost a constant probe
    /// instead of decode CPU and contribute no I/O.
    pub blocks_summarized: usize,
    /// Points decoded and aggregated.
    pub points: usize,
    /// Encoded bytes read from storage.
    pub bytes: usize,
    /// Of `blocks`, the ones read from cold-tiered shards (priced by the
    /// cold disk model when tiering is configured).
    pub blocks_cold: usize,
    /// Of `bytes`, the ones read from cold-tiered shards.
    pub bytes_cold: usize,
    /// Shards overlapping the query range (the fan-out width available to
    /// intra-query parallel scans — see [`CostParams::scan_workers`]).
    pub shards_scanned: usize,
    /// Number of queries this cost covers.
    pub queries: usize,
}

/// Number of counters in a [`QueryCost`] — the width of its
/// [`QueryCost::to_words`] fixed encoding.
pub const COST_WORDS: usize = 10;

impl QueryCost {
    /// Pack the counters into a fixed word array, in declaration order.
    /// The builder's query flight recorder stores costs in a lock-free
    /// ring of word-atomic slots; this is the canonical layout both sides
    /// agree on ([`QueryCost::from_words`] inverts it).
    pub fn to_words(&self) -> [u64; COST_WORDS] {
        [
            self.index_entries as u64,
            self.series as u64,
            self.blocks as u64,
            self.blocks_summarized as u64,
            self.points as u64,
            self.bytes as u64,
            self.blocks_cold as u64,
            self.bytes_cold as u64,
            self.shards_scanned as u64,
            self.queries as u64,
        ]
    }

    /// Inverse of [`QueryCost::to_words`].
    pub fn from_words(w: &[u64; COST_WORDS]) -> QueryCost {
        QueryCost {
            index_entries: w[0] as usize,
            series: w[1] as usize,
            blocks: w[2] as usize,
            blocks_summarized: w[3] as usize,
            points: w[4] as usize,
            bytes: w[5] as usize,
            blocks_cold: w[6] as usize,
            bytes_cold: w[7] as usize,
            shards_scanned: w[8] as usize,
            queries: w[9] as usize,
        }
    }

    /// The counters as a JSON object, one key per field. The wire shape of
    /// the cold-tier subsets matters: `blocks_cold`/`bytes_cold` are
    /// *subsets* of `blocks`/`bytes`, which is how `/debug/requests` and
    /// `?explain=true` consumers must read them.
    pub fn to_json(&self) -> monster_json::Value {
        monster_json::jobj! {
            "index_entries" => self.index_entries as i64,
            "series" => self.series as i64,
            "blocks" => self.blocks as i64,
            "blocks_summarized" => self.blocks_summarized as i64,
            "points" => self.points as i64,
            "bytes" => self.bytes as i64,
            "blocks_cold" => self.blocks_cold as i64,
            "bytes_cold" => self.bytes_cold as i64,
            "shards_scanned" => self.shards_scanned as i64,
            "queries" => self.queries as i64,
        }
    }

    /// Accumulate another cost (sequential composition).
    pub fn absorb(&mut self, other: &QueryCost) {
        self.index_entries += other.index_entries;
        self.series += other.series;
        self.blocks += other.blocks;
        self.blocks_summarized += other.blocks_summarized;
        self.points += other.points;
        self.bytes += other.bytes;
        self.blocks_cold += other.blocks_cold;
        self.bytes_cold += other.bytes_cold;
        self.shards_scanned += other.shards_scanned;
        self.queries += other.queries;
    }
}

/// Conversion constants from physical counters to simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// CPU cost to decode one stored point during a scan, seconds.
    pub per_point_cpu: f64,
    /// Fixed cost per series opened (cursor setup), seconds.
    pub per_series: f64,
    /// Cost per index entry examined during planning, seconds.
    pub per_index_entry: f64,
    /// Fixed cost per query (HTTP round-trip to the DB, parse, plan),
    /// seconds. Scaled by `amplification` because a full-size deployment
    /// issues proportionally more queries.
    pub per_query: f64,
    /// Effective fraction of the device's raw access latency charged per
    /// block read (page cache + readahead derating).
    pub block_access_factor: f64,
    /// CPU cost to probe one sealed block's zone-map summary, seconds. A
    /// summarized block pays this flat fee instead of per-point decode CPU
    /// and block I/O — the headroom the aggregation pushdown converts into
    /// query speedup.
    pub per_summary_probe: f64,
    /// Workload amplification: multiply physical counters by this factor
    /// before costing, used to model the full 467-node cluster while
    /// actually storing a scaled-down node count. 1.0 = no scaling.
    pub amplification: f64,
    /// Modelled intra-query scan parallelism: the scan-side CPU (point
    /// decode + series cursors) divides across
    /// `min(scan_workers, shards_scanned)` workers, mirroring the engine's
    /// fan-out of per-shard scans. Planning and per-query overheads stay
    /// serial, as does I/O (single storage backend). Default 1 — the
    /// paper's stack (InfluxDB 1.x via a Python middleware) scans each
    /// query on one goroutine's worth of effective parallelism, and the
    /// Figs. 10/12/14/15 calibration assumes it.
    pub scan_workers: usize,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            per_point_cpu: 0.03e-6,
            per_series: 0.3e-3,
            per_index_entry: 0.5e-6,
            per_query: 4.5e-3,
            block_access_factor: 0.25,
            per_summary_probe: 0.2e-6,
            amplification: 1.0,
            scan_workers: 1,
        }
    }
}

impl CostParams {
    /// Scale physical counters by `amplification` (see field docs).
    pub fn with_amplification(mut self, amp: f64) -> Self {
        assert!(amp > 0.0);
        self.amplification = amp;
        self
    }

    /// Model `workers`-way intra-query scan parallelism (see field docs).
    pub fn with_scan_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0);
        self.scan_workers = workers;
        self
    }

    /// Split a cost into (CPU time, I/O time) against `disk`.
    ///
    /// CPU parallelizes across query workers; I/O serializes on the single
    /// storage backend — the distinction the concurrent-query simulation
    /// (Fig. 15) depends on. Equivalent to [`CostParams::split_tiered`]
    /// with both tiers on the same device, so the historical calibration
    /// (Figs. 10/12/14/15) is unchanged when tiering is off.
    pub fn split(&self, cost: &QueryCost, disk: &DiskModel) -> (VDuration, VDuration) {
        self.split_tiered(cost, disk, disk)
    }

    /// Like [`CostParams::split`], but I/O charged against two devices:
    /// `blocks_cold`/`bytes_cold` (a subset of `blocks`/`bytes`, accounted
    /// per shard by the scan path) price against `cold`, the rest against
    /// `hot`. This is the live version of the paper's Fig. 12 / Table III
    /// media comparison: one query pays SSD rates on recent shards and HDD
    /// rates on tiered history.
    pub fn split_tiered(
        &self,
        cost: &QueryCost,
        hot: &DiskModel,
        cold: &DiskModel,
    ) -> (VDuration, VDuration) {
        let a = self.amplification;
        let hot_bytes = cost.bytes.saturating_sub(cost.bytes_cold) as f64;
        let hot_blocks = cost.blocks.saturating_sub(cost.blocks_cold) as f64;
        let transfer = hot_bytes * a / hot.read_bw + cost.bytes_cold as f64 * a / cold.read_bw;
        let accesses = (hot_blocks * hot.access_latency
            + cost.blocks_cold as f64 * cold.access_latency)
            * a
            * self.block_access_factor;
        let io = VDuration::from_secs_f64(transfer + accesses);
        // Scan-side CPU divides across the modelled intra-query workers —
        // bounded by the shard fan-out actually available to the query.
        let fanout = self.scan_workers.min(cost.shards_scanned.max(1)).max(1) as f64;
        let scan_cpu = (cost.points as f64 * a * self.per_point_cpu
            + cost.blocks_summarized as f64 * a * self.per_summary_probe
            + cost.series as f64 * a * self.per_series)
            / fanout;
        let serial_cpu = cost.index_entries as f64 * a * self.per_index_entry
            + cost.queries as f64 * a * self.per_query;
        (VDuration::from_secs_f64(scan_cpu + serial_cpu), io)
    }

    /// Simulated elapsed time for `cost` against `disk`, assuming the
    /// queries ran **sequentially** (CPU + I/O back to back).
    pub fn elapsed(&self, cost: &QueryCost, disk: &DiskModel) -> VDuration {
        let (cpu, io) = self.split(cost, disk);
        cpu + io
    }

    /// Sequential elapsed time with tiered I/O pricing (see
    /// [`CostParams::split_tiered`]).
    pub fn elapsed_tiered(&self, cost: &QueryCost, hot: &DiskModel, cold: &DiskModel) -> VDuration {
        let (cpu, io) = self.split_tiered(cost, hot, cold);
        cpu + io
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters() {
        let mut a = QueryCost {
            index_entries: 1,
            series: 2,
            blocks: 3,
            blocks_summarized: 7,
            points: 4,
            bytes: 5,
            shards_scanned: 1,
            queries: 1,
            ..QueryCost::default()
        };
        let b = QueryCost {
            index_entries: 10,
            series: 20,
            blocks: 30,
            blocks_summarized: 70,
            points: 40,
            bytes: 50,
            shards_scanned: 2,
            queries: 1,
            ..QueryCost::default()
        };
        a.absorb(&b);
        assert_eq!(a.points, 44);
        assert_eq!(a.queries, 2);
        assert_eq!(a.bytes, 55);
        assert_eq!(a.shards_scanned, 3);
        assert_eq!(a.blocks_summarized, 77);
    }

    #[test]
    fn scan_workers_divide_scan_cpu_only() {
        // Scan-heavy cost with a 4-shard fan-out.
        let cost = QueryCost {
            index_entries: 100,
            series: 50,
            points: 10_000_000,
            shards_scanned: 4,
            queries: 1,
            ..QueryCost::default()
        };
        let serial = CostParams::default();
        let par = CostParams::default().with_scan_workers(4);
        let t1 = serial.elapsed(&cost, &DiskModel::SSD).as_secs_f64();
        let t4 = par.elapsed(&cost, &DiskModel::SSD).as_secs_f64();
        assert!(t4 < t1, "parallel scans should be cheaper: {t4} vs {t1}");
        // Speedup is bounded by the serial floor (planning + per-query).
        assert!(t1 / t4 < 4.0);
        // Fan-out is capped by the shards actually overlapped: with one
        // shard there is nothing to divide.
        let narrow = QueryCost { shards_scanned: 1, ..cost };
        assert_eq!(par.elapsed(&narrow, &DiskModel::SSD), serial.elapsed(&narrow, &DiskModel::SSD));
        // And the default (scan_workers = 1) reproduces the historical
        // single-threaded model exactly, keeping the paper bands intact.
        assert_eq!(serial.scan_workers, 1);
    }

    #[test]
    fn elapsed_monotone_in_every_counter() {
        let p = CostParams::default();
        let base = QueryCost {
            index_entries: 100,
            series: 10,
            blocks: 10,
            blocks_summarized: 10,
            points: 1000,
            bytes: 100_000,
            shards_scanned: 1,
            queries: 1,
            ..QueryCost::default()
        };
        let t0 = p.elapsed(&base, &DiskModel::SSD);
        for bump in [
            QueryCost { points: 1_000_000, ..base },
            QueryCost { bytes: 100_000_000, ..base },
            QueryCost { blocks: 100_000, ..base },
            QueryCost { blocks_summarized: 100_000_000, ..base },
            QueryCost { series: 5_000, ..base },
            QueryCost { index_entries: 1_000_000, ..base },
            QueryCost { queries: 100, ..base },
        ] {
            assert!(p.elapsed(&bump, &DiskModel::SSD) > t0);
        }
    }

    #[test]
    fn hdd_slower_than_ssd_for_identical_work() {
        let p = CostParams::default();
        // A realistically shaped plan: thousands of queries over blocky
        // storage (the per-query CPU floor keeps the device ratio in the
        // paper's Fig. 12 band rather than the raw seek ratio).
        let cost = QueryCost {
            index_entries: 100_000,
            series: 2_000,
            blocks: 5_000,
            points: 5_000_000,
            bytes: 50_000_000,
            shards_scanned: 7,
            queries: 2_000,
            ..QueryCost::default()
        };
        let hdd = p.elapsed(&cost, &DiskModel::HDD).as_secs_f64();
        let ssd = p.elapsed(&cost, &DiskModel::SSD).as_secs_f64();
        assert!(hdd > ssd);
        let r = hdd / ssd;
        assert!((1.2..4.0).contains(&r), "HDD/SSD ratio {r} out of band");
    }

    #[test]
    fn amplification_scales_all_components() {
        let p1 = CostParams::default();
        let p4 = CostParams::default().with_amplification(4.0);
        let cost = QueryCost {
            index_entries: 1000,
            series: 100,
            blocks: 100,
            blocks_summarized: 40,
            points: 100_000,
            bytes: 10_000_000,
            shards_scanned: 3,
            queries: 5,
            ..QueryCost::default()
        };
        let t1 = p1.elapsed(&cost, &DiskModel::HDD).as_secs_f64();
        let t4 = p4.elapsed(&cost, &DiskModel::HDD).as_secs_f64();
        assert!((t4 / t1 - 4.0).abs() < 0.01, "t4/t1 = {}", t4 / t1);
    }

    #[test]
    fn split_partitions_elapsed() {
        let p = CostParams::default().with_amplification(3.0);
        let cost = QueryCost {
            index_entries: 50,
            series: 10,
            blocks: 2_000,
            blocks_summarized: 500,
            points: 500_000,
            bytes: 40_000_000,
            shards_scanned: 4,
            queries: 13,
            ..QueryCost::default()
        };
        let (cpu, io) = p.split(&cost, &DiskModel::HDD);
        assert!(cpu > VDuration::ZERO && io > VDuration::ZERO);
        assert_eq!(cpu + io, p.elapsed(&cost, &DiskModel::HDD));
    }

    #[test]
    fn tiered_pricing_brackets_and_degenerates_correctly() {
        let p = CostParams::default();
        let io_heavy = QueryCost {
            blocks: 4_000,
            bytes: 80_000_000,
            shards_scanned: 4,
            queries: 1,
            ..QueryCost::default()
        };
        // All hot / all cold: split_tiered degenerates to single-device
        // pricing on the respective tier.
        let all_hot = p.elapsed_tiered(&io_heavy, &DiskModel::SSD, &DiskModel::HDD);
        assert_eq!(all_hot, p.elapsed(&io_heavy, &DiskModel::SSD));
        let all_cold =
            QueryCost { blocks_cold: io_heavy.blocks, bytes_cold: io_heavy.bytes, ..io_heavy };
        assert_eq!(
            p.elapsed_tiered(&all_cold, &DiskModel::SSD, &DiskModel::HDD),
            p.elapsed(&all_cold, &DiskModel::HDD)
        );
        // A half-cold query lands strictly between the pure-SSD and
        // pure-HDD prices — the live Fig. 12 gradient.
        let half = QueryCost {
            blocks_cold: io_heavy.blocks / 2,
            bytes_cold: io_heavy.bytes / 2,
            ..io_heavy
        };
        let mixed = p.elapsed_tiered(&half, &DiskModel::SSD, &DiskModel::HDD);
        assert!(all_hot < mixed && mixed < p.elapsed(&io_heavy, &DiskModel::HDD));
        // Same device on both tiers reproduces the untiered model exactly,
        // whatever the cold counters say — calibration is unchanged.
        assert_eq!(
            p.elapsed_tiered(&half, &DiskModel::HDD, &DiskModel::HDD),
            p.elapsed(&io_heavy, &DiskModel::HDD)
        );
    }

    #[test]
    fn summarized_blocks_cost_far_less_than_decoded_ones() {
        // The same physical data answered two ways: 1000 sealed blocks of
        // 1024 points fully decoded, vs the same blocks probed via their
        // zone maps. Pushdown should be a large win in the model.
        let p = CostParams::default();
        let decoded = QueryCost {
            index_entries: 10,
            series: 1,
            blocks: 1_000,
            points: 1_024_000,
            bytes: 10_240_000,
            shards_scanned: 1,
            queries: 1,
            ..QueryCost::default()
        };
        let summarized = QueryCost {
            index_entries: 10,
            series: 1,
            blocks_summarized: 1_000,
            shards_scanned: 1,
            queries: 1,
            ..QueryCost::default()
        };
        let full = p.elapsed(&decoded, &DiskModel::SSD).as_secs_f64();
        let push = p.elapsed(&summarized, &DiskModel::SSD).as_secs_f64();
        assert!(push < full, "summary probes must be cheaper: {push} vs {full}");
        assert!(full / push > 3.0, "expected a big modelled win, got {}", full / push);
        // The probe itself still costs something: not free, just flat.
        let free = QueryCost { blocks_summarized: 0, ..summarized };
        assert!(p.elapsed(&summarized, &DiskModel::SSD) > p.elapsed(&free, &DiskModel::SSD));
    }
}
