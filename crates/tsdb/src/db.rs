//! The database: write path, shard management, query execution, stats.
//!
//! # Locking hierarchy (sharded-lock engine)
//!
//! The engine holds three kinds of locks, ordered **shard-map → index →
//! shard**; a thread may only acquire a lock *later* in that order while
//! holding an earlier one, so cycles are impossible:
//!
//! * the **shard map** (`RwLock<BTreeMap<i64, Arc<RwLock<Shard>>>>`) — a
//!   short-critical-section outer lock guarding only the map of shard
//!   handles, never shard data;
//! * the **series index** (`RwLock<SeriesIndex>`) — series and field-name
//!   resolution; writers resolve every id *up front* under one read (or,
//!   for new series, one write) acquisition per batch;
//! * the **per-shard locks** (`RwLock<Shard>`) — actual column data.
//!   Writers never hold two shard locks at once: `write_batch` pre-groups
//!   its points by shard and visits the shards one at a time, so writers
//!   to different time shards append fully in parallel and readers only
//!   contend with writers on the shards they actually scan.
//!
//! Write-level statistics (`points`, `encoded_bytes`, …) are maintained
//! incrementally in atomics on the write/seal/retention paths, making
//! [`Db::stats`] O(1) instead of a walk over every column.

use crate::column::{AggScan, ScanItem, ScanStats};
use crate::cost::{CostParams, QueryCost};
use crate::point::DataPoint;
use crate::query::exec::WindowAggregator;
use crate::query::{parse_query, Aggregation, Query, ResultSet, SeriesResult};
use crate::retention::{TierConfig, TierReport};
use crate::series::{FieldId, SeriesId, SeriesIndex, SeriesKey};
use crate::shard::Shard;
use crate::watermark::{MeasurementMark, WatermarkRegistry};
use monster_sim::DiskModel;
use monster_util::pool::ThreadPool;
use monster_util::{Error, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Database configuration.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Shard length in seconds (default one day, like InfluxDB's default
    /// shard group duration for short retention policies).
    pub shard_duration: i64,
    /// Storage device model charged for reads (Figs. 12/14 swap this).
    pub disk: DiskModel,
    /// Simulated-cost conversion constants.
    pub cost: CostParams,
    /// Worker threads a single query may fan its overlapping-shard scans
    /// across (1 = scan sequentially on the calling thread). Results are
    /// byte-identical either way: per-shard scan output is collected in
    /// deterministic order and merged on the calling thread.
    pub scan_workers: usize,
    /// Aggregation pushdown: when a sealed block is fully contained in one
    /// aggregation window (and the query range), answer it from its
    /// zone-map summary instead of decompressing. Results are bit-identical
    /// either way (the forced-decode path folds the same per-block partial
    /// from decoded points); `false` exists as the benchmark baseline.
    pub pushdown: bool,
    /// Write-ahead-log tuning: group-commit thresholds and segment size.
    /// The WAL itself is enabled by opening the database against a
    /// directory via [`Db::recover`]; [`Db::new`] stays memory-only and
    /// these knobs are inert.
    pub wal: crate::wal::WalTuning,
    /// Age-based storage tiering (`None` = single-tier, the historical
    /// behavior): shards older than [`TierConfig::hot_secs`] are compacted
    /// into immutable segment files and their scans priced by
    /// [`TierConfig::cold_disk`] instead of [`DbConfig::disk`]. See
    /// [`Db::tier_cold_shards`].
    pub tiering: Option<TierConfig>,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            shard_duration: 86_400,
            disk: DiskModel::HDD,
            cost: CostParams::default(),
            scan_workers: 4,
            pushdown: true,
            wal: crate::wal::WalTuning::default(),
            tiering: None,
        }
    }
}

/// Database statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DbStats {
    /// Points currently stored (one per field value; drops and retention
    /// reduce this).
    pub points: usize,
    /// Raw line-protocol bytes as received.
    pub wire_bytes: usize,
    /// Encoded at-rest bytes.
    pub encoded_bytes: usize,
    /// Series cardinality.
    pub cardinality: usize,
    /// Number of measurements.
    pub measurements: usize,
    /// Number of shards.
    pub shards: usize,
    /// Write batches accepted.
    pub batches: usize,
}

/// An embedded time-series database. Cloneable across threads via `Arc`;
/// all methods take `&self` (interior locking, sharded as described in the
/// module docs).
pub struct Db {
    config: DbConfig,
    /// Series/field-name resolution. Lock order: after the shard map,
    /// before any shard.
    index: RwLock<SeriesIndex>,
    /// Outer shard map: `shard start → shard handle`. Critical sections on
    /// this lock only clone/insert `Arc`s — never touch shard data.
    shards: RwLock<BTreeMap<i64, Arc<RwLock<Shard>>>>,
    /// Incremental statistics (kept exact by the write/seal/retention/drop
    /// paths; see [`Db::recompute_stats`] for the walking cross-check).
    points: AtomicUsize,
    wire_bytes: AtomicUsize,
    encoded_bytes: AtomicI64,
    batches: AtomicUsize,
    /// Per-measurement ingest watermarks (see [`crate::watermark`]);
    /// updated after each batch applies, read by cache-validity checks.
    watermarks: WatermarkRegistry,
    /// Bumped whenever retention or a measurement drop removes data
    /// without advancing any watermark; cache snapshots taken before the
    /// bump must be considered invalid.
    retention_epoch: AtomicU64,
    /// Pre-resolved lock instrumentation handles (`monster_tsdb_lock_*`),
    /// updated lock-free outside critical sections.
    lock_wait: Arc<monster_obs::Histo>,
    lock_hold: Arc<monster_obs::Histo>,
    /// Write-ahead log, present when the database was opened against a
    /// directory ([`Db::recover`]). Appended *before* batches publish;
    /// its mutex is independent of the engine's lock hierarchy (taken
    /// while holding no engine lock).
    wal: Option<crate::wal::Wal>,
}

impl Db {
    /// Create an empty database.
    pub fn new(config: DbConfig) -> Db {
        assert!(config.shard_duration > 0);
        assert!(config.scan_workers > 0, "scan_workers must be at least 1");
        Db {
            config,
            index: RwLock::new(SeriesIndex::new()),
            shards: RwLock::new(BTreeMap::new()),
            points: AtomicUsize::new(0),
            wire_bytes: AtomicUsize::new(0),
            encoded_bytes: AtomicI64::new(0),
            batches: AtomicUsize::new(0),
            watermarks: WatermarkRegistry::default(),
            retention_epoch: AtomicU64::new(0),
            lock_wait: monster_obs::histo("monster_tsdb_lock_wait_seconds"),
            lock_hold: monster_obs::histo("monster_tsdb_lock_hold_seconds"),
            wal: None,
        }
    }

    /// Attach the write-ahead log after recovery replay (replay must not
    /// re-log the records it is applying).
    pub(crate) fn set_wal(&mut self, wal: crate::wal::Wal) {
        self.wal = Some(wal);
    }

    /// The write-ahead log, when this database is durable.
    pub(crate) fn wal(&self) -> Option<&crate::wal::Wal> {
        self.wal.as_ref()
    }

    /// The series index lock (staging's WAL renderer resolves ids → names
    /// under one read acquisition; lock order: after the shard map, before
    /// any shard).
    pub(crate) fn index(&self) -> &RwLock<SeriesIndex> {
        &self.index
    }

    /// True when writes are logged to a write-ahead log.
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// Appender state of the write-ahead log, if one is attached.
    pub fn wal_status(&self) -> Option<crate::wal::WalStatus> {
        self.wal.as_ref().map(crate::wal::Wal::status)
    }

    /// Force a WAL group commit: every accepted batch is durable when this
    /// returns. No-op without a WAL.
    pub fn wal_sync(&self) -> Result<()> {
        match &self.wal {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Record one lock acquisition: how long we queued for it and how long
    /// we held it. Histogram updates are lock-free and happen after the
    /// guard is dropped (the PR 1 "outside critical sections" convention).
    pub(crate) fn observe_lock(&self, wait_start: Instant, acquired: Instant) {
        // The wait histogram parks an exemplar pointing at whichever trace
        // was stalled, so a lock-contention spike links to the sweep or
        // query that suffered it.
        self.lock_wait.observe_traced(
            acquired.duration_since(wait_start).as_secs_f64(),
            monster_obs::trace::current(),
        );
        self.lock_hold.observe(acquired.elapsed().as_secs_f64());
    }

    /// Fetch the shard covering `start`, creating it if needed. Only the
    /// shard-map lock is touched; the returned handle is locked by the
    /// caller.
    pub(crate) fn shard_for(&self, start: i64) -> Arc<RwLock<Shard>> {
        let wait = Instant::now();
        {
            let map = self.shards.read();
            let acquired = Instant::now();
            if let Some(s) = map.get(&start) {
                let s = Arc::clone(s);
                drop(map);
                self.observe_lock(wait, acquired);
                return s;
            }
        }
        let wait = Instant::now();
        let mut map = self.shards.write();
        let acquired = Instant::now();
        let duration = self.config.shard_duration;
        let s = Arc::clone(
            map.entry(start)
                .or_insert_with(|| Arc::new(RwLock::new(Shard::new(start, start + duration)))),
        );
        drop(map);
        self.observe_lock(wait, acquired);
        s
    }

    /// Snapshot the current shard handles in time order (short shard-map
    /// read; no shard data touched).
    fn shard_handles(&self) -> Vec<Arc<RwLock<Shard>>> {
        let wait = Instant::now();
        let map = self.shards.read();
        let acquired = Instant::now();
        let out = map.values().cloned().collect();
        drop(map);
        self.observe_lock(wait, acquired);
        out
    }

    /// Write one point.
    pub fn write(&self, point: DataPoint) -> Result<()> {
        self.write_batch(&[point])
    }

    /// Write a batch of points atomically per shard with respect to
    /// readers.
    ///
    /// The paper's collector batches ~10 000 points per interval because
    /// that is "the ideal batch size for InfluxDB" (§III-C); here batching
    /// amortizes id resolution (one index acquisition) and shard lookup
    /// (one shard-lock acquisition per distinct shard). The batch is
    /// pre-grouped by shard *before* any shard lock is taken, and all
    /// series/field ids are resolved up front, so the per-point critical
    /// section is a pure `(u32, u32)`-keyed append — no string hashing, no
    /// allocation, and never more than one shard lock held at a time.
    pub fn write_batch(&self, points: &[DataPoint]) -> Result<()> {
        // Joins the collector's interval trace when one is installed on
        // this thread, so "shard 7 write" hangs off "sweep 812". Untraced
        // writes skip the span: steady-state ingest stays allocation-free.
        let mut span = monster_obs::trace::current().map(|ctx| {
            let mut s = monster_obs::Span::child_of("tsdb.write_batch", ctx);
            s.set_attr("points", points.len().to_string());
            s
        });
        Self::validate_points(points)?;

        // --- write-ahead: log the batch before any of it becomes visible --
        // An I/O failure rejects the batch wholesale (nothing applied, so
        // nothing unlogged is readable). One render allocation per batch —
        // the same order of overhead as the pre-grouping below.
        if let Some(wal) = &self.wal {
            let wire_estimate: usize = points.iter().map(DataPoint::wire_size).sum();
            let mut payload = String::with_capacity(wire_estimate + points.len());
            let mut max_ts = i64::MIN;
            for p in points {
                crate::lineproto::encode_into(p, &mut payload);
                payload.push('\n');
                max_ts = max_ts.max(p.time.as_secs());
            }
            wal.append(payload.as_bytes(), max_ts)?;
        }

        // --- resolve all series & field ids up front ---------------------
        let total_fields: usize = points.iter().map(|p| p.fields.len()).sum();
        let mut sids: Vec<Option<SeriesId>> = Vec::with_capacity(points.len());
        let mut fids: Vec<Option<FieldId>> = Vec::with_capacity(total_fields);
        self.resolve_ids(points, &mut sids, &mut fids);

        // --- pre-group by shard (no locks held) --------------------------
        let duration = self.config.shard_duration;
        let mut groups: BTreeMap<i64, Vec<(SeriesId, FieldId, i64, &crate::FieldValue)>> =
            BTreeMap::new();
        let mut fi = 0usize;
        // Per-measurement [min, max] timestamp spans for the watermark
        // registry; batches touch a handful of measurements, so a linear
        // scan beats a map.
        let mut spans: Vec<(&str, i64, i64)> = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let ts = p.time.as_secs();
            let shard_start = ts.div_euclid(duration) * duration;
            let sid = sids[i].expect("series id resolved above");
            match spans.iter_mut().find(|(m, _, _)| *m == p.measurement) {
                Some((_, lo, hi)) => {
                    *lo = (*lo).min(ts);
                    *hi = (*hi).max(ts);
                }
                None => spans.push((&p.measurement, ts, ts)),
            }
            // Capacity for the whole batch: nearly every batch lands in one
            // shard (collector intervals share a timestamp), and the map is
            // batch-lived, so over-reserving beats reallocating.
            let group =
                groups.entry(shard_start).or_insert_with(|| Vec::with_capacity(total_fields));
            for (_, value) in &p.fields {
                group.push((sid, fids[fi].expect("field id resolved above"), ts, value));
                fi += 1;
            }
        }

        // --- apply, one shard lock at a time -----------------------------
        let mut applied = 0usize;
        let mut encoded_delta = 0i64;
        let mut shard_gauges: Vec<(i64, i64)> = Vec::with_capacity(groups.len());
        let mut result: Result<()> = Ok(());
        'groups: for (start, group) in &groups {
            // Retry loop: a retention pass may tombstone the shard between
            // the map lookup and our lock acquisition; appending to such an
            // orphan would silently lose the points, so re-fetch (the map
            // no longer holds it, and a fresh shard is created).
            loop {
                let shard_arc = self.shard_for(*start);
                let wait = Instant::now();
                let mut shard = shard_arc.write();
                let acquired = Instant::now();
                if shard.is_dropped() {
                    drop(shard);
                    self.observe_lock(wait, acquired);
                    continue;
                }
                let bytes_before = shard.encoded_bytes();
                // Walk maximal consecutive same-(series, field) spans: one
                // column lookup per span instead of per point, in exactly
                // the original batch order.
                let mut i = 0usize;
                while i < group.len() {
                    let (sid, fid, _, _) = group[i];
                    let mut j = i + 1;
                    while j < group.len() && group[j].0 == sid && group[j].1 == fid {
                        j += 1;
                    }
                    if let Err(e) = shard.append_span(sid, fid, &group[i..j], &mut applied) {
                        result = Err(e);
                        break;
                    }
                    i = j;
                }
                encoded_delta += shard.encoded_bytes() as i64 - bytes_before as i64;
                shard_gauges.push((*start, shard.point_count() as i64));
                drop(shard);
                self.observe_lock(wait, acquired);
                if result.is_err() {
                    break 'groups;
                }
                break;
            }
        }

        // --- incremental statistics & self-monitoring --------------------
        self.batches.fetch_add(1, Ordering::Relaxed);
        if result.is_ok() {
            let wire: usize = points.iter().map(DataPoint::wire_size).sum();
            self.wire_bytes.fetch_add(wire, Ordering::Relaxed);
        }
        self.note_applied(applied, encoded_delta);
        // Watermarks advance only after shard data is visible to readers
        // (a concurrent cache-validity snapshot may go spuriously stale,
        // never stale-but-valid). A failed batch may still have applied a
        // prefix, so note the spans unconditionally — over-invalidation is
        // safe.
        self.note_measurement_spans(&spans);

        monster_obs::counter("monster_tsdb_write_batches_total").inc();
        monster_obs::histo("monster_tsdb_write_batch_points").observe(points.len() as f64);
        self.update_topology_gauges();
        for (start, count) in &shard_gauges {
            monster_obs::gauge(&format!("monster_tsdb_shard_points{{shard=\"{start}\"}}"))
                .set(*count);
        }
        if let Some(mut span) = span.take() {
            span.set_attr("applied", applied.to_string());
            span.set_attr("shards", shard_gauges.len().to_string());
            span.finish();
        }
        result
    }

    /// Reject batches containing field-less points — whole-batch, before
    /// any state changes. Shared by the locked and staged write paths.
    pub(crate) fn validate_points(points: &[DataPoint]) -> Result<()> {
        for p in points {
            if !p.is_valid() {
                return Err(Error::invalid(format!(
                    "point for measurement {:?} has no fields",
                    p.measurement
                )));
            }
        }
        Ok(())
    }

    /// Resolve every series and field id for `points` into the
    /// caller-provided buffers (cleared first; `fids` gets one entry per
    /// field in point order). One index read-lock acquisition on the fast
    /// path, plus one write acquisition only when new series or field names
    /// appear. Callers that reuse the buffers (the staging path) resolve a
    /// whole batch without allocating.
    pub(crate) fn resolve_ids(
        &self,
        points: &[DataPoint],
        sids: &mut Vec<Option<SeriesId>>,
        fids: &mut Vec<Option<FieldId>>,
    ) {
        sids.clear();
        sids.resize(points.len(), None);
        fids.clear();
        let mut missing = false;
        {
            // Fast path: everything already known — a shared read lock.
            let wait = Instant::now();
            let idx = self.index.read();
            let acquired = Instant::now();
            for (i, p) in points.iter().enumerate() {
                sids[i] = idx.id_of_point(p);
                missing |= sids[i].is_none();
                for (name, _) in &p.fields {
                    let f = idx.field_id(name);
                    missing |= f.is_none();
                    fids.push(f);
                }
            }
            drop(idx);
            self.observe_lock(wait, acquired);
        }
        if missing {
            // Slow path: register new series/fields under the write lock.
            let wait = Instant::now();
            let mut idx = self.index.write();
            let acquired = Instant::now();
            let mut fi = 0usize;
            for (i, p) in points.iter().enumerate() {
                if sids[i].is_none() {
                    sids[i] = Some(idx.get_or_create(&SeriesKey::of(p)));
                }
                for (name, _) in &p.fields {
                    if fids[fi].is_none() {
                        fids[fi] = Some(idx.intern_field(name));
                    }
                    fi += 1;
                }
            }
            drop(idx);
            self.observe_lock(wait, acquired);
        }
    }

    /// Record an accepted batch's wire-level statistics (staging path; the
    /// locked write path inlines the equivalent updates).
    pub(crate) fn note_batch(&self, batch_points: usize, wire_bytes: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.wire_bytes.fetch_add(wire_bytes, Ordering::Relaxed);
        monster_obs::counter("monster_tsdb_write_batches_total").inc();
        monster_obs::histo("monster_tsdb_write_batch_points").observe(batch_points as f64);
    }

    /// Fold applied points and their encoded-size delta into the
    /// incremental statistics (shared by both write paths).
    pub(crate) fn note_applied(&self, applied: usize, encoded_delta: i64) {
        self.points.fetch_add(applied, Ordering::Relaxed);
        self.encoded_bytes.fetch_add(encoded_delta, Ordering::Relaxed);
        monster_obs::counter("monster_tsdb_points_written_total").add(applied as u64);
    }

    /// Fold one applied batch's per-measurement `[min_ts, max_ts]` spans
    /// into the watermark registry. Called after the data is readable
    /// (end of [`Db::write_batch`]; `WriteStager::flush` after its runs
    /// publish).
    pub(crate) fn note_measurement_spans<S: AsRef<str>>(&self, spans: &[(S, i64, i64)]) {
        self.watermarks.note_spans(spans);
    }

    /// Current ingest watermark for `measurement` (default mark if never
    /// written). A shared-lock map lookup — cheap enough to call once per
    /// covered measurement on every cache probe.
    pub fn measurement_mark(&self, measurement: &str) -> MeasurementMark {
        self.watermarks.get(measurement)
    }

    /// Every measurement's current ingest watermark, sorted by name.
    /// Recovery must republish these exactly (the builder's response cache
    /// keys on them); tests compare whole tables. Not a hot-path call.
    pub fn measurement_marks(&self) -> Vec<(String, MeasurementMark)> {
        self.watermarks.snapshot()
    }

    /// Monotone counter bumped whenever retention or a measurement drop
    /// removes data. Cache-validity snapshots record it; a mismatch means
    /// data disappeared without any watermark advancing.
    pub fn retention_epoch(&self) -> u64 {
        self.retention_epoch.load(Ordering::Acquire)
    }

    /// Estimate a query's physical cost *without executing it* — the
    /// planning-time input to cost-based admission. Index cardinality and
    /// series selection are exact (one index read); points/blocks/bytes
    /// are scaled from the incremental statistics by the selected-series
    /// and overlapping-shard fractions. Deterministic for a given database
    /// state, monotone in range width and series count, and intentionally
    /// conservative rather than precise — admission thresholds are set
    /// relative to the same model.
    pub fn estimate_cost(&self, q: &Query) -> QueryCost {
        let mut cost = QueryCost { queries: 1, ..QueryCost::default() };
        if q.validate().is_err() {
            return cost;
        }
        let (card, series) = {
            let idx = self.index.read();
            (idx.cardinality(), idx.select(&q.measurement, &q.predicates).len())
        };
        cost.index_entries = card;
        cost.series = series;
        let (qs, qe) = (q.start.as_secs(), q.end.as_secs());
        let duration = self.config.shard_duration;
        // Prorate each overlapping shard by how much of it the range
        // actually covers, so a 30-minute window prices below a
        // whole-shard scan even when every shard spans a day.
        let (overlap, covered, total_shards) = {
            let map = self.shards.read();
            let mut overlap = 0usize;
            let mut covered = 0.0f64;
            for &start in map.keys() {
                let lo = qs.max(start);
                let hi = qe.min(start + duration);
                if lo < hi {
                    overlap += 1;
                    covered += (hi - lo) as f64 / duration as f64;
                }
            }
            (overlap, covered, map.len())
        };
        cost.shards_scanned = overlap;
        if series == 0 || overlap == 0 {
            return cost;
        }
        let series_frac = series as f64 / card.max(1) as f64;
        let shard_frac = covered / total_shards.max(1) as f64;
        let total_points = self.points.load(Ordering::Relaxed) as f64;
        let total_bytes = self.encoded_bytes.load(Ordering::Relaxed).max(0) as f64;
        cost.points = (total_points * series_frac * shard_frac).ceil() as usize;
        // One partial block per (series, shard) plus the sealed interior.
        cost.blocks = cost.points / crate::column::BLOCK_SIZE + series * overlap;
        cost.bytes = (total_bytes * series_frac * shard_frac).ceil() as usize;
        cost
    }

    /// Refresh the series/shard-count gauges (short index + shard-map
    /// reads; no shard data touched).
    pub(crate) fn update_topology_gauges(&self) {
        let series = self.index.read().cardinality() as i64;
        let shard_count = self.shards.read().len() as i64;
        monster_obs::gauge("monster_tsdb_series").set(series);
        monster_obs::gauge("monster_tsdb_shards").set(shard_count);
    }

    /// Per-writer staging buffer in front of this database's shards; see
    /// [`crate::staging::WriteStager`].
    pub fn stager(&self) -> crate::staging::WriteStager<'_> {
        crate::staging::WriteStager::new(self)
    }

    /// [`Db::stager`] with an explicit auto-flush threshold (staged field
    /// values, across all runs).
    pub fn stager_with_capacity(
        &self,
        max_staged_points: usize,
    ) -> crate::staging::WriteStager<'_> {
        crate::staging::WriteStager::with_capacity(self, max_staged_points)
    }

    /// Parse and run a query string.
    pub fn query_str(&self, text: &str) -> Result<(ResultSet, QueryCost)> {
        let q = parse_query(text)?;
        self.query(&q)
    }

    /// Run a query, returning results plus the physical cost incurred.
    ///
    /// Scans of the overlapping shards fan out across up to
    /// [`DbConfig::scan_workers`] threads; per-(series, shard) scan output
    /// is collected in deterministic order and merged on the calling
    /// thread, so results are byte-identical to a sequential execution.
    pub fn query(&self, q: &Query) -> Result<(ResultSet, QueryCost)> {
        q.validate()?;
        let mut span = monster_obs::Span::enter("tsdb.query_scan");
        span.set_attr("measurement", q.measurement.clone());
        let span_ctx = span.context();
        let mut cost = QueryCost { queries: 1, ..QueryCost::default() };

        // Planning under the index read lock: the index work scales with
        // total cardinality — the series-cardinality tax the paper's
        // schema redesign attacks.
        let (ids, keys, fid) = {
            let wait = Instant::now();
            let idx = self.index.read();
            let acquired = Instant::now();
            cost.index_entries = idx.cardinality();
            let ids: Vec<SeriesId> = idx.select(&q.measurement, &q.predicates);
            let keys: Vec<SeriesKey> = ids.iter().map(|&id| idx.key_of(id).clone()).collect();
            let fid = idx.field_id(&q.field);
            drop(idx);
            self.observe_lock(wait, acquired);
            (ids, keys, fid)
        };

        let (qs, qe) = (q.start.as_secs(), q.end.as_secs());

        // Snapshot the overlapping shard handles (shard starts are the map
        // keys and every shard spans `shard_duration`, so overlap is
        // decided without touching any shard lock).
        let duration = self.config.shard_duration;
        let shards: Vec<Arc<RwLock<Shard>>> = {
            let wait = Instant::now();
            let map = self.shards.read();
            let acquired = Instant::now();
            let out = map
                .iter()
                .filter(|(&start, _)| start < qe && qs < start + duration)
                .map(|(_, s)| Arc::clone(s))
                .collect();
            drop(map);
            self.observe_lock(wait, acquired);
            out
        };
        let ns = shards.len();
        cost.shards_scanned = ns;

        // Fan the (series × shard) scans out. Each item buffers its
        // matching points (or zone-map partials, for eligible sealed blocks
        // under an aggregation); the merge below runs in series-major,
        // shard-time order, which is exactly the order a sequential scan
        // produces.
        let agg_spec = q.agg.map(|agg| AggScan {
            start: qs,
            end: qe,
            window: q.group_by,
            countable: agg == Aggregation::Count,
            decode_all: !self.config.pushdown,
        });
        let items: Vec<(SeriesId, Arc<RwLock<Shard>>)> =
            ids.iter().flat_map(|&sid| shards.iter().map(move |s| (sid, Arc::clone(s)))).collect();
        type ScanOut = (Vec<ScanItem>, ScanStats, bool);
        let scan_one = |(sid, shard_arc): (SeriesId, Arc<RwLock<Shard>>)| -> Result<ScanOut> {
            let mut buf: Vec<ScanItem> = Vec::new();
            let wait = Instant::now();
            let shard = shard_arc.read();
            let acquired = Instant::now();
            let stats = match (fid, agg_spec) {
                (Some(f), Some(spec)) => shard.scan_agg(sid, f, spec, |item| buf.push(item))?,
                (Some(f), None) => {
                    shard.scan(sid, f, qs, qe, |t, v| buf.push(ScanItem::Point(t, v)))?
                }
                (None, _) => ScanStats::default(),
            };
            let cold = shard.is_cold();
            drop(shard);
            self.observe_lock(wait, acquired);
            Ok((buf, stats, cold))
        };
        let workers = self.config.scan_workers.min(items.len().max(1));
        let outputs: Vec<Result<ScanOut>> = if workers > 1 && items.len() > 1 {
            ThreadPool::new(workers).scope_map(items, scan_one)
        } else {
            items.into_iter().map(scan_one).collect()
        };
        let mut outputs: Vec<ScanOut> = outputs.into_iter().collect::<Result<_>>()?;

        // Deterministic merge.
        let mut series_out: Vec<SeriesResult> = Vec::with_capacity(ids.len());
        for (s, key) in keys.into_iter().enumerate() {
            let mut scanned = false;
            let mut points: Vec<(monster_util::EpochSecs, crate::FieldValue)>;
            let slots = &mut outputs[s * ns..(s + 1) * ns];
            match q.agg {
                Some(agg) => {
                    let mut w = WindowAggregator::new(agg, q.group_by, qs);
                    for (buf, stats, cold) in slots.iter_mut() {
                        for item in buf.drain(..) {
                            match item {
                                ScanItem::Point(t, v) => w.push(t, &v),
                                ScanItem::Partial(s) => w.push_partial(&s),
                            }
                        }
                        if stats.points > 0 || stats.blocks_summarized > 0 {
                            scanned = true;
                        }
                        cost.blocks += stats.blocks;
                        cost.blocks_summarized += stats.blocks_summarized;
                        cost.points += stats.points;
                        cost.bytes += stats.bytes;
                        if *cold {
                            cost.blocks_cold += stats.blocks;
                            cost.bytes_cold += stats.bytes;
                        }
                    }
                    points = w.finish_filled(q.fill, qs, qe);
                }
                None => {
                    points = Vec::new();
                    for (buf, stats, cold) in slots.iter_mut() {
                        points.extend(buf.drain(..).map(|item| match item {
                            ScanItem::Point(t, v) => (monster_util::EpochSecs::new(t), v),
                            // Raw selects never carry an AggScan spec.
                            ScanItem::Partial(_) => unreachable!("partial in raw scan"),
                        }));
                        if stats.points > 0 {
                            scanned = true;
                        }
                        cost.blocks += stats.blocks;
                        cost.points += stats.points;
                        cost.bytes += stats.bytes;
                        if *cold {
                            cost.blocks_cold += stats.blocks;
                            cost.bytes_cold += stats.bytes;
                        }
                    }
                    points.sort_by_key(|(t, _)| *t);
                }
            }
            if scanned {
                cost.series += 1;
            }
            if let Some(limit) = q.limit {
                points.truncate(limit);
            }
            if !points.is_empty() {
                series_out.push(SeriesResult { key, points });
            }
        }
        series_out.sort_by(|a, b| a.key.cmp(&b.key));

        // Self-monitoring: query cost translated to simulated seconds, so
        // `/metrics` shows where query time goes (`monster_tsdb_*` series).
        monster_obs::counter("monster_tsdb_queries_total").inc();
        monster_obs::counter("monster_tsdb_query_points_total").add(cost.points as u64);
        monster_obs::counter("monster_tsdb_blocks_decoded_total").add(cost.blocks as u64);
        monster_obs::counter("monster_tsdb_blocks_summarized_total")
            .add(cost.blocks_summarized as u64);
        let elapsed = self.simulate_elapsed(&cost);
        monster_obs::histo("monster_tsdb_query_seconds")
            .observe_vdur_traced(elapsed, Some(span_ctx));
        span.set_attr("shards_scanned", cost.shards_scanned.to_string());
        span.set_attr("points", cost.points.to_string());
        // Queries overlap other pipeline work in virtual time, so the scan
        // span covers its simulated cost without advancing the clock.
        span.finish_spanning(elapsed);
        Ok((ResultSet { series: series_out }, cost))
    }

    /// Simulated elapsed time for a cost under this database's disk and
    /// cost parameters. With tiering configured, the cold share of the
    /// cost (`blocks_cold`/`bytes_cold`) is priced against the archive
    /// device instead of the hot disk.
    pub fn simulate_elapsed(&self, cost: &QueryCost) -> monster_sim::VDuration {
        match &self.config.tiering {
            Some(tier) => self.config.cost.elapsed_tiered(cost, &self.config.disk, &tier.cold_disk),
            None => self.config.cost.elapsed(cost, &self.config.disk),
        }
    }

    /// Snapshot of write-path statistics. O(1): every field is either an
    /// incrementally-maintained atomic or a constant-time index/map read —
    /// no shard or column walk (contrast [`Db::recompute_stats`]).
    pub fn stats(&self) -> DbStats {
        let (cardinality, measurements) = {
            let idx = self.index.read();
            (idx.cardinality(), idx.measurement_count())
        };
        DbStats {
            points: self.points.load(Ordering::Relaxed),
            wire_bytes: self.wire_bytes.load(Ordering::Relaxed),
            encoded_bytes: self.encoded_bytes.load(Ordering::Relaxed).max(0) as usize,
            cardinality,
            measurements,
            shards: self.shards.read().len(),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }

    /// Recompute the statistics the slow way — walking every live shard
    /// and column — as a cross-check that the incremental counters behind
    /// [`Db::stats`] are exact. Intended for tests and debugging; it takes
    /// every shard's read lock in turn.
    pub fn recompute_stats(&self) -> DbStats {
        let mut points = 0usize;
        let mut encoded = 0usize;
        let mut shards = 0usize;
        for handle in self.shard_handles() {
            let shard = handle.read();
            if shard.is_dropped() {
                continue;
            }
            points += shard.point_count();
            encoded += shard.encoded_bytes();
            shards += 1;
        }
        let (cardinality, measurements) = {
            let idx = self.index.read();
            (idx.cardinality(), idx.measurement_count())
        };
        DbStats {
            points,
            wire_bytes: self.wire_bytes.load(Ordering::Relaxed),
            encoded_bytes: encoded,
            cardinality,
            measurements,
            shards,
            batches: self.batches.load(Ordering::Relaxed),
        }
    }

    /// Visit every stored point (one callback per field value) across all
    /// shards, in shard order. Used by the snapshot writer. Holds the
    /// index read lock for the duration and each shard's read lock in
    /// turn (index-before-shard is the sanctioned nesting).
    pub fn export(
        &self,
        mut f: impl FnMut(&SeriesKey, &str, i64, crate::FieldValue),
    ) -> Result<()> {
        let handles = self.shard_handles();
        let idx = self.index.read();
        for handle in handles {
            let shard = handle.read();
            shard.export(|sid, fid, ts, v| {
                f(idx.key_of(sid), idx.field_name(fid), ts, v);
            })?;
        }
        Ok(())
    }

    /// Drop every shard whose time range ends at or before `horizon`.
    /// Returns the number of shards dropped. (Series index entries are
    /// retained — like InfluxDB, series stay defined until explicitly
    /// dropped — but their data is gone.)
    pub fn drop_shards_before(&self, horizon: monster_util::EpochSecs) -> usize {
        self.drop_shards_before_counted(horizon).0
    }

    /// Like [`Db::drop_shards_before`], but also returns the exact number
    /// of points removed — the same quantity subtracted from the
    /// incremental statistics, so callers (retention accounting,
    /// conservation tests) never have to infer it from racing
    /// [`Db::stats`] snapshots.
    pub fn drop_shards_before_counted(&self, horizon: monster_util::EpochSecs) -> (usize, usize) {
        // Split the map under the outer lock (shards end at
        // `start + shard_duration`, so the cut is a key comparison);
        // tombstone and account the victims after releasing it.
        let cut = horizon.as_secs() - self.config.shard_duration + 1;
        let removed: Vec<(i64, Arc<RwLock<Shard>>)> = {
            let wait = Instant::now();
            let mut map = self.shards.write();
            let acquired = Instant::now();
            let kept = map.split_off(&cut);
            let removed = std::mem::replace(&mut *map, kept).into_iter().collect();
            drop(map);
            self.observe_lock(wait, acquired);
            removed
        };
        let count = removed.len();
        let mut points_removed = 0usize;
        for (start, handle) in removed {
            let wait = Instant::now();
            let mut shard = handle.write();
            let acquired = Instant::now();
            shard.mark_dropped();
            let (p, b) = (shard.point_count(), shard.encoded_bytes());
            drop(shard);
            self.observe_lock(wait, acquired);
            points_removed += p;
            self.points.fetch_sub(p, Ordering::Relaxed);
            self.encoded_bytes.fetch_sub(b as i64, Ordering::Relaxed);
            monster_obs::gauge(&format!("monster_tsdb_shard_points{{shard=\"{start}\"}}")).set(0);
            // A dropped shard's cold-tier segment file must go with it, or
            // recovery would resurrect data retention already removed. (WAL
            // records of dropped shards that were never tiered can still
            // replay; the collector re-enforces retention after recovery.)
            if let Some(wal) = &self.wal {
                let _ = std::fs::remove_file(wal.dir().join(format!("shard-{start}.seg")));
            }
        }
        if count > 0 {
            self.retention_epoch.fetch_add(1, Ordering::AcqRel);
        }
        (count, points_removed)
    }

    /// Compact the database: seal all raw tails into compressed blocks.
    ///
    /// A column's tail self-seals at [`crate::column::BLOCK_SIZE`] points,
    /// but slow series (health codes, job metadata) can sit in raw form for
    /// days; periodic compaction — InfluxDB's TSM compaction cycle — trades
    /// a little CPU for at-rest volume. Returns (columns sealed, bytes
    /// saved). Shards are compacted one lock at a time, so ingest and
    /// queries on other shards proceed concurrently.
    pub fn compact(&self) -> (usize, i64) {
        let mut sealed = 0usize;
        let mut saved = 0i64;
        for handle in self.shard_handles() {
            let wait = Instant::now();
            let mut shard = handle.write();
            let acquired = Instant::now();
            let mut delta = 0i64;
            if !shard.is_dropped() {
                let before = shard.encoded_bytes() as i64;
                sealed += shard.compact();
                delta = shard.encoded_bytes() as i64 - before;
            }
            drop(shard);
            self.observe_lock(wait, acquired);
            self.encoded_bytes.fetch_add(delta, Ordering::Relaxed);
            saved -= delta;
        }
        (sealed, saved)
    }

    /// Migrate shards older than the tiering threshold to the cold tier.
    ///
    /// For every shard whose range lies entirely before
    /// `now - tiering.hot_secs` (rounded down to a shard boundary), the
    /// pass compacts the shard, renders it to an immutable segment file
    /// (`shard-<start>.seg`, compressed line protocol) next to the WAL,
    /// and marks it cold so scans are priced by the cold-tier disk model.
    /// Once every such shard is durable as a segment, WAL segments whose
    /// records all predate the cut are reclaimed — the tiered data no
    /// longer needs replay.
    ///
    /// Without a WAL the pass only re-prices (marks cold, writes nothing).
    /// No-op unless [`DbConfig::tiering`] is set. The pass holds each
    /// shard's write lock across its segment-file write, so a racing
    /// writer to that shard cannot slip points between the export and the
    /// cold mark; out-of-order ingest older than the hot horizon that
    /// arrives *after* a shard was tiered is not re-exported and survives
    /// only as long as its WAL segment (live deployments ingest current
    /// data, so the horizon — days — dwarfs collector skew — seconds).
    pub fn tier_cold_shards(&self, now: monster_util::EpochSecs) -> Result<TierReport> {
        let Some(tier) = self.config.tiering else {
            return Ok(TierReport::default());
        };
        let dur = self.config.shard_duration;
        let cut = (now.as_secs() - tier.hot_secs).div_euclid(dur) * dur;
        let mut report = TierReport::default();
        let candidates: Vec<(i64, Arc<RwLock<Shard>>)> = {
            let wait = Instant::now();
            let map = self.shards.read();
            let acquired = Instant::now();
            let out = map.range(..cut).map(|(k, v)| (*k, Arc::clone(v))).collect();
            drop(map);
            self.observe_lock(wait, acquired);
            out
        };
        for (start, handle) in candidates {
            // Index read before shard write: the sanctioned nesting. The
            // index lock is only needed while rendering; the shard lock is
            // held through the durable segment write (see above).
            let idx = self.index.read();
            let wait = Instant::now();
            let mut shard = handle.write();
            let acquired = Instant::now();
            if shard.is_dropped() || shard.is_cold() {
                drop(shard);
                drop(idx);
                self.observe_lock(wait, acquired);
                continue;
            }
            let before = shard.encoded_bytes() as i64;
            shard.compact();
            let delta = shard.encoded_bytes() as i64 - before;
            let mut text = String::new();
            shard.export(|sid, fid, ts, v| {
                let key = idx.key_of(sid);
                let mut p = DataPoint::new(&key.measurement, monster_util::EpochSecs::new(ts));
                for (k, val) in &key.tags {
                    p = p.tag(k, val);
                }
                p = p.field(idx.field_name(fid), v);
                crate::lineproto::encode_into(&p, &mut text);
                text.push('\n');
            })?;
            drop(idx);
            if let Some(wal) = &self.wal {
                let bytes = crate::snapshot::encode_segment(&text);
                let path = wal.dir().join(format!("shard-{start}.seg"));
                let tmp = wal.dir().join(format!("shard-{start}.seg.tmp"));
                let res = (|| -> Result<()> {
                    let mut f = std::fs::File::create(&tmp)?;
                    std::io::Write::write_all(&mut f, &bytes)?;
                    f.sync_all()?;
                    std::fs::rename(&tmp, &path)?;
                    Ok(())
                })();
                if let Err(e) = res {
                    // Leave the shard hot: a later pass retries, and the
                    // WAL keeps covering it (reclaim below never runs).
                    drop(shard);
                    self.observe_lock(wait, acquired);
                    let _ = std::fs::remove_file(&tmp);
                    return Err(e);
                }
                report.segment_bytes_written += bytes.len() as u64;
            }
            let pts = shard.point_count();
            shard.mark_cold();
            drop(shard);
            self.observe_lock(wait, acquired);
            self.encoded_bytes.fetch_add(delta, Ordering::Relaxed);
            report.shards_tiered += 1;
            report.points_tiered += pts;
        }
        if report.shards_tiered > 0 {
            monster_obs::counter("monster_tsdb_shards_tiered_total")
                .add(report.shards_tiered as u64);
        }
        // Every point in a cold shard has ts < cut, so WAL segments whose
        // max record timestamp predates the cut replay nothing that is not
        // already durable in a segment file.
        if let Some(wal) = &self.wal {
            report.wal_segments_reclaimed = wal.reclaim_before(cut)?;
        }
        Ok(report)
    }

    /// Raw (unsealed) points awaiting compaction.
    pub fn tail_points(&self) -> usize {
        self.shard_handles().iter().map(|h| h.read().tail_points()).sum()
    }

    /// Drop a measurement: its columns disappear from every shard and its
    /// series from the index. The operational escape hatch for schema
    /// accidents like the per-job measurements of the previous layout.
    /// Returns the number of series removed.
    pub fn drop_measurement(&self, measurement: &str) -> usize {
        let victims: std::collections::HashSet<SeriesId> = {
            let wait = Instant::now();
            let mut idx = self.index.write();
            let acquired = Instant::now();
            let victims: std::collections::HashSet<SeriesId> =
                idx.select(measurement, &[]).into_iter().collect();
            if !victims.is_empty() {
                idx.drop_measurement(measurement);
            }
            drop(idx);
            self.observe_lock(wait, acquired);
            victims
        };
        if victims.is_empty() {
            return 0;
        }
        for handle in self.shard_handles() {
            let wait = Instant::now();
            let mut shard = handle.write();
            let acquired = Instant::now();
            if shard.is_dropped() {
                continue;
            }
            let (p, b) = shard.drop_series(&victims);
            drop(shard);
            self.observe_lock(wait, acquired);
            self.points.fetch_sub(p, Ordering::Relaxed);
            self.encoded_bytes.fetch_sub(b as i64, Ordering::Relaxed);
        }
        self.retention_epoch.fetch_add(1, Ordering::AcqRel);
        victims.len()
    }

    /// Series keys, optionally scoped to one measurement (rendered as
    /// `measurement,tag=value,...`).
    pub fn series_keys(&self, measurement: Option<&str>) -> Vec<String> {
        let idx = self.index.read();
        let mut out = Vec::new();
        for id in 0..idx.id_space() {
            let key = idx.key_of(SeriesId(id as u32));
            if key.measurement.is_empty() {
                continue; // tombstone
            }
            if measurement.map(|m| m == key.measurement).unwrap_or(true) {
                out.push(key.to_string());
            }
        }
        out
    }

    /// Distinct tag keys used within a measurement, sorted.
    pub fn tag_keys(&self, measurement: &str) -> Vec<String> {
        let idx = self.index.read();
        let mut keys: Vec<String> = Vec::new();
        for id in 0..idx.id_space() {
            let key = idx.key_of(SeriesId(id as u32));
            if key.measurement == measurement {
                for (k, _) in &key.tags {
                    if !keys.contains(k) {
                        keys.push(k.clone());
                    }
                }
            }
        }
        keys.sort();
        keys
    }

    /// Distinct values of `tag` within a measurement, sorted.
    pub fn tag_values(&self, measurement: &str, tag: &str) -> Vec<String> {
        let idx = self.index.read();
        let mut values: Vec<String> = Vec::new();
        for id in 0..idx.id_space() {
            let key = idx.key_of(SeriesId(id as u32));
            if key.measurement == measurement {
                if let Some(v) = key.tag(tag) {
                    if !values.iter().any(|x| x == v) {
                        values.push(v.to_string());
                    }
                }
            }
        }
        values.sort();
        values
    }

    /// Distinct field keys written to a measurement, sorted.
    pub fn field_keys(&self, measurement: &str) -> Vec<String> {
        let ids: std::collections::HashSet<SeriesId> =
            self.index.read().select(measurement, &[]).into_iter().collect();
        let mut fids: std::collections::HashSet<FieldId> = std::collections::HashSet::new();
        for handle in self.shard_handles() {
            let shard = handle.read();
            for (sid, fid) in shard.column_keys() {
                if ids.contains(&sid) {
                    fids.insert(fid);
                }
            }
        }
        let idx = self.index.read();
        let mut keys: Vec<String> =
            fids.into_iter().map(|f| idx.field_name(f).to_string()).collect();
        keys.sort();
        keys
    }

    /// All measurement names, sorted.
    pub fn measurements(&self) -> Vec<String> {
        let mut m: Vec<String> = self.index.read().measurements().map(str::to_string).collect();
        m.sort();
        m
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregation;
    use crate::FieldValue;
    use monster_util::EpochSecs;

    fn power_point(node: &str, ts: i64, reading: f64) -> DataPoint {
        DataPoint::new("Power", EpochSecs::new(ts))
            .tag("NodeId", node)
            .tag("Label", "NodePower")
            .field_f64("Reading", reading)
    }

    /// Two nodes, two hours of 60 s samples starting 2020-04-20T12:00Z.
    fn seeded_db() -> Db {
        let db = Db::new(DbConfig::default());
        let mut batch = Vec::new();
        for node in ["10.101.1.1", "10.101.1.2"] {
            for i in 0..120 {
                batch.push(power_point(node, 1_587_384_000 + i * 60, 250.0 + i as f64));
            }
        }
        db.write_batch(&batch).unwrap();
        db
    }

    /// One node, three days of 5-minute samples (spans multiple shards).
    fn multi_day_db() -> Db {
        let db = Db::new(DbConfig::default());
        let mut batch = Vec::new();
        for i in 0..(3 * 288) {
            batch.push(power_point("10.101.1.1", 1_587_340_800 + i * 300, 250.0));
        }
        db.write_batch(&batch).unwrap();
        db
    }

    #[test]
    fn write_then_query_max_per_window() {
        let db = seeded_db();
        let q = Query::select(
            "Power",
            "Reading",
            EpochSecs::new(1_587_384_000),
            EpochSecs::new(1_587_384_000 + 7200),
        )
        .aggregate(Aggregation::Max)
        .where_tag("NodeId", "10.101.1.1")
        .group_by_time(300);
        let (rs, cost) = db.query(&q).unwrap();
        assert_eq!(rs.series.len(), 1);
        // 2 hours / 5 min = 24 windows.
        assert_eq!(rs.series[0].points.len(), 24);
        // First window covers samples 0..5 → max reading 254.
        assert_eq!(rs.series[0].points[0].1.as_f64(), Some(254.0));
        assert!(cost.points >= 120);
        assert_eq!(cost.series, 1);
        assert_eq!(cost.queries, 1);
    }

    #[test]
    fn query_without_predicates_fans_across_series() {
        let db = seeded_db();
        let q = Query::select(
            "Power",
            "Reading",
            EpochSecs::new(1_587_384_000),
            EpochSecs::new(1_587_384_000 + 3600),
        )
        .aggregate(Aggregation::Mean);
        let (rs, _) = db.query(&q).unwrap();
        assert_eq!(rs.series.len(), 2);
        assert!(rs.series_with_tag("NodeId", "10.101.1.2").is_some());
    }

    #[test]
    fn raw_select_returns_original_points_sorted() {
        let db = Db::new(DbConfig::default());
        // Write out of order.
        for ts in [300i64, 100, 200] {
            db.write(DataPoint::new("m", EpochSecs::new(ts)).tag("n", "a").field_i64("v", ts))
                .unwrap();
        }
        let q = Query::select("m", "v", EpochSecs::new(0), EpochSecs::new(1000));
        let (rs, _) = db.query(&q).unwrap();
        let ts: Vec<i64> = rs.series[0].points.iter().map(|(t, _)| t.as_secs()).collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn shards_partition_by_time() {
        let db = Db::new(DbConfig { shard_duration: 3600, ..DbConfig::default() });
        for i in 0..10 {
            db.write(power_point("n", i * 3600, 1.0)).unwrap();
        }
        assert_eq!(db.stats().shards, 10);
        // A one-hour query touches one shard's blocks only.
        let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(3600))
            .aggregate(Aggregation::Count);
        let (rs, cost) = db.query(&q).unwrap();
        assert_eq!(rs.point_count(), 1);
        assert_eq!(cost.blocks, 1);
    }

    #[test]
    fn longer_ranges_cost_more() {
        let db = multi_day_db();
        let mk = |hours: i64| {
            Query::select(
                "Power",
                "Reading",
                EpochSecs::new(1_587_340_800),
                EpochSecs::new(1_587_340_800 + hours * 3600),
            )
            .aggregate(Aggregation::Max)
            .group_by_time(300)
        };
        let (_, c1) = db.query(&mk(24)).unwrap();
        let (_, c2) = db.query(&mk(48)).unwrap();
        assert!(c2.points > c1.points, "c1={c1:?} c2={c2:?}");
        assert!(db.simulate_elapsed(&c2) > db.simulate_elapsed(&c1));
    }

    #[test]
    fn query_str_end_to_end() {
        let db = seeded_db();
        let (rs, _) = db
            .query_str(
                "SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
                 Label='NodePower' AND time >= '2020-04-20T12:00:00Z' AND \
                 time < '2020-04-21T12:00:00Z' GROUP BY time(5m)",
            )
            .unwrap();
        assert_eq!(rs.series.len(), 1);
        assert!(rs.point_count() > 0);
    }

    #[test]
    fn unknown_measurement_is_empty_not_error() {
        let db = seeded_db();
        let q = Query::select("Nope", "x", EpochSecs::new(0), EpochSecs::new(10));
        let (rs, cost) = db.query(&q).unwrap();
        assert!(rs.series.is_empty());
        assert_eq!(cost.series, 0);
    }

    #[test]
    fn invalid_points_rejected_whole_batch() {
        let db = Db::new(DbConfig::default());
        let good = power_point("n", 0, 1.0);
        let bad = DataPoint::new("m", EpochSecs::new(0)); // no fields
        assert!(db.write_batch(&[good, bad]).is_err());
        assert_eq!(db.stats().points, 0);
    }

    #[test]
    fn stats_track_volume_and_cardinality() {
        let db = seeded_db();
        let s = db.stats();
        assert_eq!(s.points, 240);
        assert_eq!(s.cardinality, 2);
        assert_eq!(s.measurements, 1);
        assert!(s.wire_bytes > 0);
        assert!(s.encoded_bytes > 0);
        assert_eq!(s.batches, 1);
        // Encoded storage beats raw wire size for regular data.
        assert!(s.encoded_bytes < s.wire_bytes);
    }

    #[test]
    fn type_conflict_surfaces_from_write() {
        let db = Db::new(DbConfig::default());
        db.write(DataPoint::new("m", EpochSecs::new(0)).tag("n", "a").field_f64("v", 1.0)).unwrap();
        let err = db
            .write(DataPoint::new("m", EpochSecs::new(1)).tag("n", "a").field_str("v", "x"))
            .unwrap_err();
        assert!(matches!(err, Error::Invalid(_)));
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let db = std::sync::Arc::new(Db::new(DbConfig::default()));
        std::thread::scope(|s| {
            for w in 0..4 {
                let db = std::sync::Arc::clone(&db);
                s.spawn(move || {
                    for i in 0..200 {
                        db.write(power_point(&format!("n{w}"), i * 60, i as f64)).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let db = std::sync::Arc::clone(&db);
                s.spawn(move || {
                    for _ in 0..50 {
                        let q = Query::select(
                            "Power",
                            "Reading",
                            EpochSecs::new(0),
                            EpochSecs::new(200 * 60),
                        )
                        .aggregate(Aggregation::Count);
                        let _ = db.query(&q).unwrap();
                    }
                });
            }
        });
        assert_eq!(db.stats().points, 800);
        let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(200 * 60))
            .aggregate(Aggregation::Count);
        let (rs, _) = db.query(&q).unwrap();
        let total: f64 =
            rs.series.iter().flat_map(|s| s.points.iter()).filter_map(|(_, v)| v.as_f64()).sum();
        assert_eq!(total, 800.0);
    }

    #[test]
    fn stats_match_recompute_after_churn() {
        let db = Db::new(DbConfig { shard_duration: 3600, ..DbConfig::default() });
        for i in 0..48 {
            db.write(power_point("a", i * 1800, i as f64)).unwrap();
            db.write(power_point("b", i * 1800, i as f64)).unwrap();
        }
        assert_eq!(db.stats(), db.recompute_stats());
        db.compact();
        assert_eq!(db.stats(), db.recompute_stats());
        let dropped = db.drop_shards_before(EpochSecs::new(6 * 3600));
        assert!(dropped > 0);
        assert_eq!(db.stats(), db.recompute_stats());
        db.drop_measurement("Power");
        assert_eq!(db.stats(), db.recompute_stats());
        assert_eq!(db.stats().points, 0);
    }

    #[test]
    fn scan_worker_count_does_not_change_results() {
        let mk = |workers: usize| {
            let db = Db::new(DbConfig {
                shard_duration: 3600,
                scan_workers: workers,
                ..DbConfig::default()
            });
            let mut batch = Vec::new();
            for node in ["n1", "n2", "n3"] {
                for i in 0..240 {
                    batch.push(power_point(node, i * 300, 0.1 + i as f64 * 0.7));
                }
            }
            db.write_batch(&batch).unwrap();
            db
        };
        let serial = mk(1);
        let fanned = mk(8);
        for agg in [None, Some(Aggregation::Mean), Some(Aggregation::Count)] {
            let mut q =
                Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(240 * 300));
            q.agg = agg;
            if agg.is_some() {
                q = q.group_by_time(900);
            }
            let (rs1, c1) = serial.query(&q).unwrap();
            let (rs8, c8) = fanned.query(&q).unwrap();
            assert_eq!(rs1, rs8, "agg {agg:?}");
            assert_eq!(c1, c8, "agg {agg:?}");
            assert_eq!(c1.shards_scanned, 20);
        }
    }

    #[test]
    fn pushdown_summarizes_contained_blocks_and_matches_forced_decode() {
        let mk = |pushdown: bool| {
            let db = Db::new(DbConfig { pushdown, ..DbConfig::default() });
            let mut batch = Vec::new();
            for i in 0..4096i64 {
                batch.push(power_point("n1", i, 250.0 + (i % 97) as f64 * 0.37));
            }
            db.write_batch(&batch).unwrap();
            db.compact();
            db
        };
        let push = mk(true);
        let full = mk(false);
        for agg in [
            Aggregation::Mean,
            Aggregation::Sum,
            Aggregation::Count,
            Aggregation::Max,
            Aggregation::Min,
            Aggregation::First,
            Aggregation::Last,
        ] {
            let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(4096))
                .aggregate(agg)
                .group_by_time(4096);
            let (rs_p, c_p) = push.query(&q).unwrap();
            let (rs_f, c_f) = full.query(&q).unwrap();
            assert_eq!(rs_p, rs_f, "agg {agg:?}");
            // All four sealed blocks land inside the single window: the
            // pushdown run probes zone maps, the baseline decodes.
            assert_eq!(c_p.blocks_summarized, 4, "agg {agg:?}");
            assert_eq!(c_p.blocks, 0);
            assert_eq!(c_p.points, 0);
            assert_eq!(c_f.blocks_summarized, 0);
            assert_eq!(c_f.blocks, 4);
            assert_eq!(c_f.points, 4096);
            // The series still counts as scanned on the summary-only path.
            assert_eq!(c_p.series, 1);
            assert!(push.simulate_elapsed(&c_p) < full.simulate_elapsed(&c_f));
        }
        // A window narrower than a block forces decoding in both modes.
        let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(4096))
            .aggregate(Aggregation::Mean)
            .group_by_time(256);
        let (rs_p, c_p) = push.query(&q).unwrap();
        let (rs_f, c_f) = full.query(&q).unwrap();
        assert_eq!(rs_p, rs_f);
        assert_eq!(c_p, c_f);
        assert_eq!(c_p.blocks_summarized, 0);
    }

    #[test]
    fn field_value_reexport_used_in_results() {
        let db = seeded_db();
        let q = Query::select(
            "Power",
            "Reading",
            EpochSecs::new(1_587_384_000),
            EpochSecs::new(1_587_384_060),
        );
        let (rs, _) = db.query(&q).unwrap();
        assert!(matches!(rs.series[0].points[0].1, FieldValue::Float(_)));
    }
}
