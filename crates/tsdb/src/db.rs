//! The database: write path, shard management, query execution, stats.

use crate::cost::{CostParams, QueryCost};
use crate::point::DataPoint;
use crate::query::exec::WindowAggregator;
use crate::query::{parse_query, Query, ResultSet, SeriesResult};
use crate::series::{SeriesId, SeriesIndex, SeriesKey};
use crate::shard::Shard;
use monster_sim::DiskModel;
use monster_util::{Error, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Database configuration.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Shard length in seconds (default one day, like InfluxDB's default
    /// shard group duration for short retention policies).
    pub shard_duration: i64,
    /// Storage device model charged for reads (Figs. 12/14 swap this).
    pub disk: DiskModel,
    /// Simulated-cost conversion constants.
    pub cost: CostParams,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig { shard_duration: 86_400, disk: DiskModel::HDD, cost: CostParams::default() }
    }
}

/// Database statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DbStats {
    /// Points currently stored (one per field value; drops and retention
    /// reduce this).
    pub points: usize,
    /// Raw line-protocol bytes as received.
    pub wire_bytes: usize,
    /// Encoded at-rest bytes.
    pub encoded_bytes: usize,
    /// Series cardinality.
    pub cardinality: usize,
    /// Number of measurements.
    pub measurements: usize,
    /// Number of shards.
    pub shards: usize,
    /// Write batches accepted.
    pub batches: usize,
}

struct Inner {
    index: SeriesIndex,
    shards: BTreeMap<i64, Shard>,
    wire_bytes: usize,
    batches: usize,
}

/// An embedded time-series database. Cloneable across threads via `Arc`;
/// all methods take `&self` (interior locking).
pub struct Db {
    config: DbConfig,
    inner: RwLock<Inner>,
}

impl Db {
    /// Create an empty database.
    pub fn new(config: DbConfig) -> Db {
        assert!(config.shard_duration > 0);
        Db {
            config,
            inner: RwLock::new(Inner {
                index: SeriesIndex::new(),
                shards: BTreeMap::new(),
                wire_bytes: 0,
                batches: 0,
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Write one point.
    pub fn write(&self, point: DataPoint) -> Result<()> {
        self.write_batch(&[point])
    }

    /// Write a batch of points atomically with respect to readers.
    ///
    /// The paper's collector batches ~10 000 points per interval because
    /// that is "the ideal batch size for InfluxDB" (§III-C); here batching
    /// amortizes one lock acquisition and one shard lookup run.
    pub fn write_batch(&self, points: &[DataPoint]) -> Result<()> {
        for p in points {
            if !p.is_valid() {
                return Err(Error::invalid(format!(
                    "point for measurement {:?} has no fields",
                    p.measurement
                )));
            }
        }
        let mut inner = self.inner.write();
        inner.batches += 1;
        for p in points {
            let key = SeriesKey::of(p);
            let sid = inner.index.get_or_create(&key);
            let ts = p.time.as_secs();
            let shard_start =
                ts.div_euclid(self.config.shard_duration) * self.config.shard_duration;
            let duration = self.config.shard_duration;
            let shard = inner
                .shards
                .entry(shard_start)
                .or_insert_with(|| Shard::new(shard_start, shard_start + duration));
            for (field, value) in &p.fields {
                shard.append(sid, field, ts, value)?;
            }
            inner.wire_bytes += p.wire_size();
        }
        let series = inner.index.cardinality() as i64;
        let shard_count = inner.shards.len() as i64;
        drop(inner);

        // Self-monitoring: write-path health (`monster_tsdb_*` series).
        monster_obs::counter("monster_tsdb_write_batches_total").inc();
        monster_obs::counter("monster_tsdb_points_written_total").add(points.len() as u64);
        monster_obs::histo("monster_tsdb_write_batch_size").observe(points.len() as f64);
        monster_obs::gauge("monster_tsdb_series").set(series);
        monster_obs::gauge("monster_tsdb_shards").set(shard_count);
        Ok(())
    }

    /// Parse and run a query string.
    pub fn query_str(&self, text: &str) -> Result<(ResultSet, QueryCost)> {
        let q = parse_query(text)?;
        self.query(&q)
    }

    /// Run a query, returning results plus the physical cost incurred.
    pub fn query(&self, q: &Query) -> Result<(ResultSet, QueryCost)> {
        q.validate()?;
        let inner = self.inner.read();
        let mut cost = QueryCost { queries: 1, ..QueryCost::default() };
        // Planning: the index work scales with total cardinality — the
        // series-cardinality tax the paper's schema redesign attacks.
        cost.index_entries = inner.index.cardinality();
        let ids: Vec<SeriesId> = inner.index.select(&q.measurement, &q.predicates);

        let (qs, qe) = (q.start.as_secs(), q.end.as_secs());
        let mut series_out: Vec<SeriesResult> = Vec::with_capacity(ids.len());
        for sid in ids {
            let key = inner.index.key_of(sid).clone();
            let mut scanned = false;
            let mut points: Vec<(monster_util::EpochSecs, crate::FieldValue)>;
            match q.agg {
                Some(agg) => {
                    let mut w = WindowAggregator::new(agg, q.group_by, qs);
                    for shard in inner.shards.values() {
                        if !shard.overlaps(qs, qe) {
                            continue;
                        }
                        let stats = shard.scan(sid, &q.field, qs, qe, |t, v| w.push(t, &v))?;
                        if stats.points > 0 {
                            scanned = true;
                        }
                        cost.blocks += stats.blocks;
                        cost.points += stats.points;
                        cost.bytes += stats.bytes;
                    }
                    points = w.finish_filled(q.fill, qs, qe);
                }
                None => {
                    points = Vec::new();
                    for shard in inner.shards.values() {
                        if !shard.overlaps(qs, qe) {
                            continue;
                        }
                        let stats = shard.scan(sid, &q.field, qs, qe, |t, v| {
                            points.push((monster_util::EpochSecs::new(t), v))
                        })?;
                        if stats.points > 0 {
                            scanned = true;
                        }
                        cost.blocks += stats.blocks;
                        cost.points += stats.points;
                        cost.bytes += stats.bytes;
                    }
                    points.sort_by_key(|(t, _)| *t);
                }
            }
            if scanned {
                cost.series += 1;
            }
            if let Some(limit) = q.limit {
                points.truncate(limit);
            }
            if !points.is_empty() {
                series_out.push(SeriesResult { key, points });
            }
        }
        series_out.sort_by(|a, b| a.key.cmp(&b.key));

        // Self-monitoring: query cost translated to simulated seconds, so
        // `/metrics` shows where query time goes (`monster_tsdb_*` series).
        monster_obs::counter("monster_tsdb_queries_total").inc();
        monster_obs::counter("monster_tsdb_query_points_total").add(cost.points as u64);
        monster_obs::histo("monster_tsdb_query_seconds")
            .observe_vdur(self.config.cost.elapsed(&cost, &self.config.disk));
        Ok((ResultSet { series: series_out }, cost))
    }

    /// Simulated elapsed time for a cost under this database's disk and
    /// cost parameters.
    pub fn simulate_elapsed(&self, cost: &QueryCost) -> monster_sim::VDuration {
        self.config.cost.elapsed(cost, &self.config.disk)
    }

    /// Snapshot of write-path statistics.
    pub fn stats(&self) -> DbStats {
        let inner = self.inner.read();
        DbStats {
            points: inner.shards.values().map(Shard::point_count).sum(),
            wire_bytes: inner.wire_bytes,
            encoded_bytes: inner.shards.values().map(Shard::encoded_bytes).sum(),
            cardinality: inner.index.cardinality(),
            measurements: inner.index.measurement_count(),
            shards: inner.shards.len(),
            batches: inner.batches,
        }
    }

    /// Visit every stored point (one callback per field value) across all
    /// shards, in shard order. Used by the snapshot writer.
    pub fn export(
        &self,
        mut f: impl FnMut(&SeriesKey, &str, i64, crate::FieldValue),
    ) -> Result<()> {
        let inner = self.inner.read();
        for shard in inner.shards.values() {
            shard.export(|sid, field, ts, v| {
                f(inner.index.key_of(sid), field, ts, v);
            })?;
        }
        Ok(())
    }

    /// Drop every shard whose time range ends at or before `horizon`.
    /// Returns the number of shards dropped. (Series index entries are
    /// retained — like InfluxDB, series stay defined until explicitly
    /// dropped — but their data is gone.)
    pub fn drop_shards_before(&self, horizon: monster_util::EpochSecs) -> usize {
        let mut inner = self.inner.write();
        let before = inner.shards.len();
        inner.shards.retain(|_, shard| shard.end > horizon.as_secs());
        before - inner.shards.len()
    }

    /// Compact the database: seal all raw tails into compressed blocks.
    ///
    /// A column's tail self-seals at [`crate::column::BLOCK_SIZE`] points,
    /// but slow series (health codes, job metadata) can sit in raw form for
    /// days; periodic compaction — InfluxDB's TSM compaction cycle — trades
    /// a little CPU for at-rest volume. Returns (columns sealed, bytes
    /// saved).
    pub fn compact(&self) -> (usize, i64) {
        let mut inner = self.inner.write();
        let before: usize = inner.shards.values().map(Shard::encoded_bytes).sum();
        let sealed: usize = inner.shards.values_mut().map(Shard::compact).sum();
        let after: usize = inner.shards.values().map(Shard::encoded_bytes).sum();
        (sealed, before as i64 - after as i64)
    }

    /// Raw (unsealed) points awaiting compaction.
    pub fn tail_points(&self) -> usize {
        self.inner.read().shards.values().map(Shard::tail_points).sum()
    }

    /// Drop a measurement: its columns disappear from every shard and its
    /// series from the index. The operational escape hatch for schema
    /// accidents like the per-job measurements of the previous layout.
    /// Returns the number of series removed.
    pub fn drop_measurement(&self, measurement: &str) -> usize {
        let mut inner = self.inner.write();
        let victims: std::collections::HashSet<crate::series::SeriesId> =
            inner.index.select(measurement, &[]).into_iter().collect();
        if victims.is_empty() {
            return 0;
        }
        for shard in inner.shards.values_mut() {
            shard.drop_series(&victims);
        }
        inner.index.drop_measurement(measurement);
        victims.len()
    }

    /// Series keys, optionally scoped to one measurement (rendered as
    /// `measurement,tag=value,...`).
    pub fn series_keys(&self, measurement: Option<&str>) -> Vec<String> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        for id in 0..inner.index.id_space() {
            let key = inner.index.key_of(crate::series::SeriesId(id as u32));
            if key.measurement.is_empty() {
                continue; // tombstone
            }
            if measurement.map(|m| m == key.measurement).unwrap_or(true) {
                out.push(key.to_string());
            }
        }
        out
    }

    /// Distinct tag keys used within a measurement, sorted.
    pub fn tag_keys(&self, measurement: &str) -> Vec<String> {
        let inner = self.inner.read();
        let mut keys: Vec<String> = Vec::new();
        for id in 0..inner.index.id_space() {
            let key = inner.index.key_of(crate::series::SeriesId(id as u32));
            if key.measurement == measurement {
                for (k, _) in &key.tags {
                    if !keys.contains(k) {
                        keys.push(k.clone());
                    }
                }
            }
        }
        keys.sort();
        keys
    }

    /// Distinct values of `tag` within a measurement, sorted.
    pub fn tag_values(&self, measurement: &str, tag: &str) -> Vec<String> {
        let inner = self.inner.read();
        let mut values: Vec<String> = Vec::new();
        for id in 0..inner.index.id_space() {
            let key = inner.index.key_of(crate::series::SeriesId(id as u32));
            if key.measurement == measurement {
                if let Some(v) = key.tag(tag) {
                    if !values.iter().any(|x| x == v) {
                        values.push(v.to_string());
                    }
                }
            }
        }
        values.sort();
        values
    }

    /// Distinct field keys written to a measurement, sorted.
    pub fn field_keys(&self, measurement: &str) -> Vec<String> {
        let inner = self.inner.read();
        let ids: std::collections::HashSet<crate::series::SeriesId> =
            inner.index.select(measurement, &[]).into_iter().collect();
        let mut keys: Vec<String> = Vec::new();
        for shard in inner.shards.values() {
            for (sid, field) in shard.column_keys() {
                if ids.contains(&sid) && !keys.contains(&field) {
                    keys.push(field);
                }
            }
        }
        keys.sort();
        keys
    }

    /// All measurement names, sorted.
    pub fn measurements(&self) -> Vec<String> {
        let inner = self.inner.read();
        let mut m: Vec<String> = inner.index.measurements().map(str::to_string).collect();
        m.sort();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregation;
    use crate::FieldValue;
    use monster_util::EpochSecs;

    fn power_point(node: &str, ts: i64, reading: f64) -> DataPoint {
        DataPoint::new("Power", EpochSecs::new(ts))
            .tag("NodeId", node)
            .tag("Label", "NodePower")
            .field_f64("Reading", reading)
    }

    /// Two nodes, two hours of 60 s samples starting 2020-04-20T12:00Z.
    fn seeded_db() -> Db {
        let db = Db::new(DbConfig::default());
        let mut batch = Vec::new();
        for node in ["10.101.1.1", "10.101.1.2"] {
            for i in 0..120 {
                batch.push(power_point(node, 1_587_384_000 + i * 60, 250.0 + i as f64));
            }
        }
        db.write_batch(&batch).unwrap();
        db
    }

    /// One node, three days of 5-minute samples (spans multiple shards).
    fn multi_day_db() -> Db {
        let db = Db::new(DbConfig::default());
        let mut batch = Vec::new();
        for i in 0..(3 * 288) {
            batch.push(power_point("10.101.1.1", 1_587_340_800 + i * 300, 250.0));
        }
        db.write_batch(&batch).unwrap();
        db
    }

    #[test]
    fn write_then_query_max_per_window() {
        let db = seeded_db();
        let q = Query::select(
            "Power",
            "Reading",
            EpochSecs::new(1_587_384_000),
            EpochSecs::new(1_587_384_000 + 7200),
        )
        .aggregate(Aggregation::Max)
        .where_tag("NodeId", "10.101.1.1")
        .group_by_time(300);
        let (rs, cost) = db.query(&q).unwrap();
        assert_eq!(rs.series.len(), 1);
        // 2 hours / 5 min = 24 windows.
        assert_eq!(rs.series[0].points.len(), 24);
        // First window covers samples 0..5 → max reading 254.
        assert_eq!(rs.series[0].points[0].1.as_f64(), Some(254.0));
        assert!(cost.points >= 120);
        assert_eq!(cost.series, 1);
        assert_eq!(cost.queries, 1);
    }

    #[test]
    fn query_without_predicates_fans_across_series() {
        let db = seeded_db();
        let q = Query::select(
            "Power",
            "Reading",
            EpochSecs::new(1_587_384_000),
            EpochSecs::new(1_587_384_000 + 3600),
        )
        .aggregate(Aggregation::Mean);
        let (rs, _) = db.query(&q).unwrap();
        assert_eq!(rs.series.len(), 2);
        assert!(rs.series_with_tag("NodeId", "10.101.1.2").is_some());
    }

    #[test]
    fn raw_select_returns_original_points_sorted() {
        let db = Db::new(DbConfig::default());
        // Write out of order.
        for ts in [300i64, 100, 200] {
            db.write(DataPoint::new("m", EpochSecs::new(ts)).tag("n", "a").field_i64("v", ts))
                .unwrap();
        }
        let q = Query::select("m", "v", EpochSecs::new(0), EpochSecs::new(1000));
        let (rs, _) = db.query(&q).unwrap();
        let ts: Vec<i64> = rs.series[0].points.iter().map(|(t, _)| t.as_secs()).collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn shards_partition_by_time() {
        let db = Db::new(DbConfig { shard_duration: 3600, ..DbConfig::default() });
        for i in 0..10 {
            db.write(power_point("n", i * 3600, 1.0)).unwrap();
        }
        assert_eq!(db.stats().shards, 10);
        // A one-hour query touches one shard's blocks only.
        let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(3600))
            .aggregate(Aggregation::Count);
        let (rs, cost) = db.query(&q).unwrap();
        assert_eq!(rs.point_count(), 1);
        assert_eq!(cost.blocks, 1);
    }

    #[test]
    fn longer_ranges_cost_more() {
        let db = multi_day_db();
        let mk = |hours: i64| {
            Query::select(
                "Power",
                "Reading",
                EpochSecs::new(1_587_340_800),
                EpochSecs::new(1_587_340_800 + hours * 3600),
            )
            .aggregate(Aggregation::Max)
            .group_by_time(300)
        };
        let (_, c1) = db.query(&mk(24)).unwrap();
        let (_, c2) = db.query(&mk(48)).unwrap();
        assert!(c2.points > c1.points, "c1={c1:?} c2={c2:?}");
        assert!(db.simulate_elapsed(&c2) > db.simulate_elapsed(&c1));
    }

    #[test]
    fn query_str_end_to_end() {
        let db = seeded_db();
        let (rs, _) = db
            .query_str(
                "SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
                 Label='NodePower' AND time >= '2020-04-20T12:00:00Z' AND \
                 time < '2020-04-21T12:00:00Z' GROUP BY time(5m)",
            )
            .unwrap();
        assert_eq!(rs.series.len(), 1);
        assert!(rs.point_count() > 0);
    }

    #[test]
    fn unknown_measurement_is_empty_not_error() {
        let db = seeded_db();
        let q = Query::select("Nope", "x", EpochSecs::new(0), EpochSecs::new(10));
        let (rs, cost) = db.query(&q).unwrap();
        assert!(rs.series.is_empty());
        assert_eq!(cost.series, 0);
    }

    #[test]
    fn invalid_points_rejected_whole_batch() {
        let db = Db::new(DbConfig::default());
        let good = power_point("n", 0, 1.0);
        let bad = DataPoint::new("m", EpochSecs::new(0)); // no fields
        assert!(db.write_batch(&[good, bad]).is_err());
        assert_eq!(db.stats().points, 0);
    }

    #[test]
    fn stats_track_volume_and_cardinality() {
        let db = seeded_db();
        let s = db.stats();
        assert_eq!(s.points, 240);
        assert_eq!(s.cardinality, 2);
        assert_eq!(s.measurements, 1);
        assert!(s.wire_bytes > 0);
        assert!(s.encoded_bytes > 0);
        assert_eq!(s.batches, 1);
        // Encoded storage beats raw wire size for regular data.
        assert!(s.encoded_bytes < s.wire_bytes);
    }

    #[test]
    fn type_conflict_surfaces_from_write() {
        let db = Db::new(DbConfig::default());
        db.write(DataPoint::new("m", EpochSecs::new(0)).tag("n", "a").field_f64("v", 1.0)).unwrap();
        let err = db
            .write(DataPoint::new("m", EpochSecs::new(1)).tag("n", "a").field_str("v", "x"))
            .unwrap_err();
        assert!(matches!(err, Error::Invalid(_)));
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let db = std::sync::Arc::new(Db::new(DbConfig::default()));
        std::thread::scope(|s| {
            for w in 0..4 {
                let db = std::sync::Arc::clone(&db);
                s.spawn(move || {
                    for i in 0..200 {
                        db.write(power_point(&format!("n{w}"), i * 60, i as f64)).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let db = std::sync::Arc::clone(&db);
                s.spawn(move || {
                    for _ in 0..50 {
                        let q = Query::select(
                            "Power",
                            "Reading",
                            EpochSecs::new(0),
                            EpochSecs::new(200 * 60),
                        )
                        .aggregate(Aggregation::Count);
                        let _ = db.query(&q).unwrap();
                    }
                });
            }
        });
        assert_eq!(db.stats().points, 800);
        let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(200 * 60))
            .aggregate(Aggregation::Count);
        let (rs, _) = db.query(&q).unwrap();
        let total: f64 =
            rs.series.iter().flat_map(|s| s.points.iter()).filter_map(|(_, v)| v.as_f64()).sum();
        assert_eq!(total, 800.0);
    }

    #[test]
    fn field_value_reexport_used_in_results() {
        let db = seeded_db();
        let q = Query::select(
            "Power",
            "Reading",
            EpochSecs::new(1_587_384_000),
            EpochSecs::new(1_587_384_060),
        );
        let (rs, _) = db.query(&q).unwrap();
        assert!(matches!(rs.series[0].points[0].1, FieldValue::Float(_)));
    }
}
