//! Per-writer append staging: batch ingest without shard-lock contention.
//!
//! The sharded-lock engine made writers to *different* shards independent,
//! but writers hammering the *same* shard still serialize their entire
//! per-point append loop inside the shard's write lock. On real hardware
//! that critical section — hash lookups, tail pushes, occasional block
//! seals — is where the modeled speedup went to die.
//!
//! A [`WriteStager`] moves everything except the final publish out of the
//! lock. Each writer owns one stager (they are deliberately `!Sync` —
//! one per thread, like a statsd client). `stage_batch`:
//!
//! 1. validates the batch and resolves all series/field ids once (one
//!    index read-lock acquisition; a write acquisition only for new
//!    names), reusing the stager's scratch buffers;
//! 2. appends each field value to a typed *run* keyed by
//!    `(shard, series, field)` — plain `Vec` pushes into arena-backed
//!    buffers retained across flushes, **no shard lock held**.
//!
//! [`WriteStager::flush`] (called automatically past the staging
//! threshold) publishes: for each touched shard it takes the write lock
//! once and bulk-appends every staged run via
//! [`crate::shard::Shard::append_run`] — `extend_from_slice` into column
//! tails plus any block seals that fall at run boundaries. The critical
//! section is short but honest: seals that land inside a staged run are
//! compressed under the shard lock, exactly as the point-at-a-time path
//! would.
//!
//! Lock order is unchanged (**shard-map → index → shard**): staging takes
//! the index lock only (step 1), publishing takes the shard-map then one
//! shard lock at a time, and the tombstone retry loop from `write_batch`
//! is preserved — a shard dropped by retention between lookup and lock is
//! re-fetched, never appended to as an orphan.
//!
//! In the steady state (warm arenas, no new series) a
//! stage-and-flush cycle performs **zero heap allocations** — proven by
//! `tests/alloc_steady_state.rs`. Consequently the flush path skips the
//! per-shard `monster_tsdb_shard_points{shard="..."}` gauges (their names
//! are formatted per shard start); those continue to be refreshed by the
//! locked write path and retention.
//!
//! Durability: when the database carries a write-ahead log
//! ([`crate::db::Db::recover`]), the whole flush is rendered as one WAL
//! record and appended — group-committed — *before* any run publishes, so
//! there is never a moment where a reader can see points a crash could
//! lose without the WAL covering them. The render reuses a stager-owned
//! buffer; the zero-allocation steady state holds with the WAL enabled.
//!
//! Visibility: staged points are invisible to queries until `flush`. Stats
//! follow the same split — `batches`/`wire_bytes` advance at stage time,
//! `points`/`encoded_bytes` at flush — so after a flush the totals are
//! indistinguishable from the same batches written through
//! [`Db::write_batch`].

use crate::column::RunSlice;
use crate::db::Db;
use crate::field::FieldValue;
use crate::point::DataPoint;
use crate::series::{FieldId, SeriesId};
use monster_util::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Default auto-flush threshold in staged field values — a few collector
/// sweeps' worth, sized so staging arenas stay cache-friendly while still
/// amortizing the shard lock over thousands of points.
pub const DEFAULT_MAX_STAGED_POINTS: usize = 32_768;

/// Typed value storage of one staged run.
#[derive(Debug)]
enum RunVals {
    Float(Vec<f64>),
    Int(Vec<i64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
}

impl RunVals {
    fn new_for(value: &FieldValue) -> RunVals {
        match value {
            FieldValue::Float(_) => RunVals::Float(Vec::new()),
            FieldValue::Int(_) => RunVals::Int(Vec::new()),
            FieldValue::Bool(_) => RunVals::Bool(Vec::new()),
            FieldValue::Str(_) => RunVals::Str(Vec::new()),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            RunVals::Float(_) => "float",
            RunVals::Int(_) => "integer",
            RunVals::Bool(_) => "boolean",
            RunVals::Str(_) => "string",
        }
    }

    fn as_slice(&self) -> RunSlice<'_> {
        match self {
            RunVals::Float(v) => RunSlice::Float(v),
            RunVals::Int(v) => RunSlice::Int(v),
            RunVals::Bool(v) => RunSlice::Bool(v),
            RunVals::Str(v) => RunSlice::Str(v),
        }
    }

    fn clear(&mut self) {
        match self {
            RunVals::Float(v) => v.clear(),
            RunVals::Int(v) => v.clear(),
            RunVals::Bool(v) => v.clear(),
            RunVals::Str(v) => v.clear(),
        }
    }
}

/// One staged `(shard, series, field)` run: timestamps plus typed values,
/// arena-recycled across flushes (cleared, never shrunk).
#[derive(Debug)]
struct RunBuf {
    shard_start: i64,
    sid: SeriesId,
    fid: FieldId,
    ts: Vec<i64>,
    vals: RunVals,
}

/// A per-writer staging buffer in front of a [`Db`]'s shards. Create via
/// [`Db::stager`]; see the [module docs](self) for the full protocol.
pub struct WriteStager<'a> {
    db: &'a Db,
    max_staged_points: usize,
    staged_points: usize,
    /// Run arena: the first `live` entries are this cycle's active runs.
    runs: Vec<RunBuf>,
    live: usize,
    /// `(shard start, series, field)` → arena slot, cleared (capacity
    /// retained) at flush.
    slots: HashMap<(i64, SeriesId, FieldId), usize>,
    /// Reusable flush ordering of `0..live`, sorted by shard.
    order: Vec<usize>,
    /// Id-resolution scratch, reused across batches.
    sids: Vec<Option<SeriesId>>,
    fids: Vec<Option<FieldId>>,
    /// Per-measurement `[min, max]` staged-timestamp spans, published to
    /// the watermark registry at flush. Entries persist across flushes
    /// (reset to the empty sentinel, strings kept), so the warm path never
    /// allocates; a linear scan suffices for a handful of measurements.
    marks: Vec<(String, i64, i64)>,
    /// Reusable WAL render buffer (cleared, capacity retained): when the
    /// database is durable, the whole flush is rendered as one
    /// line-protocol record and appended *before* any run publishes.
    wal_buf: String,
    // Pre-resolved self-monitoring handles: the flush path touches no
    // registry locks and formats no names.
    depth: Arc<monster_obs::Gauge>,
    flushes: Arc<monster_obs::Counter>,
    flush_points: Arc<monster_obs::Histo>,
}

impl<'a> WriteStager<'a> {
    /// A stager with the default auto-flush threshold.
    pub fn new(db: &'a Db) -> WriteStager<'a> {
        WriteStager::with_capacity(db, DEFAULT_MAX_STAGED_POINTS)
    }

    /// A stager that auto-flushes once `max_staged_points` field values are
    /// staged (minimum 1).
    pub fn with_capacity(db: &'a Db, max_staged_points: usize) -> WriteStager<'a> {
        WriteStager {
            db,
            max_staged_points: max_staged_points.max(1),
            staged_points: 0,
            runs: Vec::new(),
            live: 0,
            slots: HashMap::new(),
            order: Vec::new(),
            sids: Vec::new(),
            fids: Vec::new(),
            marks: Vec::new(),
            wal_buf: String::new(),
            depth: monster_obs::gauge_help(
                "monster_tsdb_staging_depth",
                "Field values currently staged in write stagers, not yet published to shards.",
            ),
            flushes: monster_obs::counter_help(
                "monster_tsdb_staging_flushes_total",
                "Staging buffer publishes into shards.",
            ),
            flush_points: monster_obs::histo_help(
                "monster_tsdb_staging_flush_points",
                "Field values published per staging flush.",
            ),
        }
    }

    /// Field values currently staged (invisible to queries until
    /// [`Self::flush`]).
    pub fn staged_points(&self) -> usize {
        self.staged_points
    }

    /// Validate, resolve and stage a batch without touching any shard lock.
    /// Auto-flushes when the staging threshold is reached.
    ///
    /// A type conflict *within staged data* fails the offending point here;
    /// earlier points of the batch stay staged (mirroring the locked path's
    /// partial-apply semantics). Conflicts against data already in the
    /// shards surface from the flush instead.
    pub fn stage_batch(&mut self, points: &[DataPoint]) -> Result<()> {
        Db::validate_points(points)?;
        // Split borrows: resolve_ids wants &mut on the scratch vectors only.
        let (sids, fids) = (&mut self.sids, &mut self.fids);
        self.db.resolve_ids(points, sids, fids);

        let duration = self.db.config().shard_duration;
        let mut staged_now = 0usize;
        let mut result: Result<()> = Ok(());
        let mut fi = 0usize;
        'points: for (i, p) in points.iter().enumerate() {
            let ts = p.time.as_secs();
            let shard_start = ts.div_euclid(duration) * duration;
            let sid = self.sids[i].expect("series id resolved above");
            match self.marks.iter_mut().find(|(m, _, _)| *m == p.measurement) {
                Some((_, lo, hi)) => {
                    *lo = (*lo).min(ts);
                    *hi = (*hi).max(ts);
                }
                // First sighting of a measurement: the one allocation this
                // path ever makes, and only while the set is still growing.
                None => self.marks.push((p.measurement.clone(), ts, ts)),
            }
            for (_, value) in &p.fields {
                let fid = self.fids[fi].expect("field id resolved above");
                fi += 1;
                let slot = match self.slots.get(&(shard_start, sid, fid)) {
                    Some(&s) => s,
                    None => {
                        let s = self.live;
                        if s == self.runs.len() {
                            self.runs.push(RunBuf {
                                shard_start,
                                sid,
                                fid,
                                ts: Vec::new(),
                                vals: RunVals::new_for(value),
                            });
                        } else {
                            // Recycle an arena slot; the typed vector is
                            // replaced only if the value type changed.
                            let buf = &mut self.runs[s];
                            buf.shard_start = shard_start;
                            buf.sid = sid;
                            buf.fid = fid;
                            debug_assert!(buf.ts.is_empty(), "recycled run not cleared");
                            match (&buf.vals, value) {
                                (RunVals::Float(_), FieldValue::Float(_))
                                | (RunVals::Int(_), FieldValue::Int(_))
                                | (RunVals::Bool(_), FieldValue::Bool(_))
                                | (RunVals::Str(_), FieldValue::Str(_)) => {}
                                _ => buf.vals = RunVals::new_for(value),
                            }
                        }
                        self.live += 1;
                        self.slots.insert((shard_start, sid, fid), s);
                        s
                    }
                };
                let buf = &mut self.runs[slot];
                match (&mut buf.vals, value) {
                    (RunVals::Float(v), FieldValue::Float(x)) => v.push(*x),
                    (RunVals::Int(v), FieldValue::Int(x)) => v.push(*x),
                    (RunVals::Bool(v), FieldValue::Bool(x)) => v.push(*x),
                    (RunVals::Str(v), FieldValue::Str(x)) => v.push(x.clone()),
                    (vals, v) => {
                        result = Err(Error::invalid(format!(
                            "field type conflict: staged run is {}, point has {}",
                            vals.type_name(),
                            v.type_name()
                        )));
                        break 'points;
                    }
                }
                buf.ts.push(ts);
                staged_now += 1;
            }
        }

        self.staged_points += staged_now;
        self.depth.add(staged_now as i64);
        let wire: usize = points.iter().map(DataPoint::wire_size).sum();
        self.db.note_batch(points.len(), wire);
        result?;
        if self.staged_points >= self.max_staged_points {
            self.flush()?;
        }
        Ok(())
    }

    /// Publish every staged run into the shards: one write-lock acquisition
    /// per touched shard, bulk [`append_run`](crate::shard::Shard::append_run)
    /// per run inside it.
    ///
    /// On a type conflict against existing column data the offending run is
    /// dropped (its points are unwritable) but **every other run is still
    /// published**; the first error is returned after the flush completes.
    /// The staging buffer is empty afterwards either way.
    pub fn flush(&mut self) -> Result<()> {
        if self.live == 0 {
            return Ok(());
        }
        self.order.clear();
        self.order.extend(0..self.live);
        // Group runs by shard (stable within a shard by arrival order —
        // sort_unstable is fine because (shard, slot) keys are unique).
        self.order.sort_unstable_by_key(|&s| (self.runs[s].shard_start, s));

        // --- write-ahead: log the whole flush before anything publishes --
        // Rendered in `order` (shard-sorted, run by run), which is exactly
        // the per-column append order both of the publish below and of a
        // `write_batch` replay of the record — so a recovered database
        // answers queries byte-identically to an uninterrupted one. An I/O
        // failure returns here with the buffer still staged (nothing
        // published, so nothing unlogged is readable); the caller may
        // retry the flush. Renders into the stager-owned buffer under one
        // index read acquisition — no steady-state allocation.
        if let Some(wal) = self.db.wal() {
            use std::fmt::Write as _;
            self.wal_buf.clear();
            let mut max_ts = i64::MIN;
            let idx = self.db.index().read();
            for &s in &self.order {
                let run = &self.runs[s];
                let key = idx.key_of(run.sid);
                let field = idx.field_name(run.fid);
                for (k, t) in run.ts.iter().enumerate() {
                    crate::lineproto::push_escaped(&key.measurement, &mut self.wal_buf);
                    for (tk, tv) in &key.tags {
                        self.wal_buf.push(',');
                        crate::lineproto::push_escaped(tk, &mut self.wal_buf);
                        self.wal_buf.push('=');
                        crate::lineproto::push_escaped(tv, &mut self.wal_buf);
                    }
                    self.wal_buf.push(' ');
                    crate::lineproto::push_escaped(field, &mut self.wal_buf);
                    self.wal_buf.push('=');
                    match &run.vals {
                        RunVals::Float(v) => {
                            let _ = write!(self.wal_buf, "{}", v[k]);
                        }
                        RunVals::Int(v) => {
                            let _ = write!(self.wal_buf, "{}i", v[k]);
                        }
                        RunVals::Bool(v) => {
                            let _ = write!(self.wal_buf, "{}", v[k]);
                        }
                        RunVals::Str(v) => {
                            crate::lineproto::push_string_field(&v[k], &mut self.wal_buf)
                        }
                    }
                    let _ = writeln!(self.wal_buf, " {t}");
                    max_ts = max_ts.max(*t);
                }
            }
            drop(idx);
            wal.append(self.wal_buf.as_bytes(), max_ts)?;
        }

        let mut result: Result<()> = Ok(());
        let mut applied = 0usize;
        let mut encoded_delta = 0i64;
        let mut i = 0usize;
        while i < self.order.len() {
            let start = self.runs[self.order[i]].shard_start;
            let mut j = i + 1;
            while j < self.order.len() && self.runs[self.order[j]].shard_start == start {
                j += 1;
            }
            // Tombstone retry loop, as in `write_batch`: retention may drop
            // the shard between lookup and lock; re-fetch rather than append
            // into an orphan.
            loop {
                let shard_arc = self.db.shard_for(start);
                let wait = Instant::now();
                let mut shard = shard_arc.write();
                let acquired = Instant::now();
                if shard.is_dropped() {
                    drop(shard);
                    self.db.observe_lock(wait, acquired);
                    continue;
                }
                let bytes_before = shard.encoded_bytes();
                for &s in &self.order[i..j] {
                    let run = &self.runs[s];
                    match shard.append_run(run.sid, run.fid, &run.ts, run.vals.as_slice()) {
                        Ok(()) => applied += run.ts.len(),
                        // All-or-nothing per run: drop it, keep publishing.
                        Err(e) => result = result.and(Err(e)),
                    }
                }
                encoded_delta += shard.encoded_bytes() as i64 - bytes_before as i64;
                drop(shard);
                self.db.observe_lock(wait, acquired);
                break;
            }
            i = j;
        }

        let staged = self.staged_points;
        for run in &mut self.runs[..self.live] {
            run.ts.clear();
            run.vals.clear();
        }
        self.slots.clear();
        self.live = 0;
        self.staged_points = 0;

        self.db.note_applied(applied, encoded_delta);
        // Published runs are now readable; advance the watermarks and reset
        // the spans to the empty sentinel (strings retained — no warm-path
        // allocation).
        self.db.note_measurement_spans(&self.marks);
        for (_, lo, hi) in &mut self.marks {
            *lo = i64::MAX;
            *hi = i64::MIN;
        }
        self.db.update_topology_gauges();
        self.depth.sub(staged as i64);
        self.flushes.inc();
        self.flush_points.observe(staged as f64);
        result
    }
}

impl Drop for WriteStager<'_> {
    /// Best-effort publish of anything still staged; errors (unwritable
    /// type-conflicted runs) are dropped with the stager. Call
    /// [`Self::flush`] explicitly to observe them.
    ///
    /// On a durable database the drop also forces a WAL group commit:
    /// a stager going out of scope is a writer shutting down, and its
    /// points must not sit in an acked-but-unsynced window while the
    /// owning thread believes they landed.
    fn drop(&mut self) {
        let flushed = self.flush().is_ok();
        if flushed {
            if let Some(wal) = self.db.wal() {
                let _ = wal.sync();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::query::{Aggregation, Query};
    use monster_util::EpochSecs;

    fn point(node: &str, ts: i64, reading: f64) -> DataPoint {
        DataPoint::new("Power", EpochSecs::new(ts))
            .tag("NodeId", node)
            .field_f64("Reading", reading)
            .field_i64("Health", ts % 3)
    }

    fn count_all(db: &Db, end: i64) -> f64 {
        let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(end))
            .aggregate(Aggregation::Count);
        let (rs, _) = db.query(&q).unwrap();
        rs.series.iter().flat_map(|s| s.points.iter()).filter_map(|(_, v)| v.as_f64()).sum()
    }

    #[test]
    fn staged_points_invisible_until_flush() {
        let db = Db::new(DbConfig::default());
        let mut stager = db.stager();
        stager.stage_batch(&[point("n1", 100, 1.0), point("n2", 200, 2.0)]).unwrap();
        assert_eq!(stager.staged_points(), 4); // 2 points × 2 fields
        assert_eq!(count_all(&db, 1000), 0.0);
        assert_eq!(db.stats().points, 0);
        // Wire/batch stats advance at stage time.
        assert_eq!(db.stats().batches, 1);
        assert!(db.stats().wire_bytes > 0);
        stager.flush().unwrap();
        assert_eq!(stager.staged_points(), 0);
        assert_eq!(count_all(&db, 1000), 2.0);
        assert_eq!(db.stats().points, 4);
    }

    #[test]
    fn staged_writes_equal_locked_writes() {
        let staged_db = Db::new(DbConfig { shard_duration: 3600, ..DbConfig::default() });
        let locked_db = Db::new(DbConfig { shard_duration: 3600, ..DbConfig::default() });
        // Several batches spanning multiple shards and sealing boundaries.
        let mk_batch = |b: i64| -> Vec<DataPoint> {
            (0..500)
                .map(|i| point(if i % 2 == 0 { "n1" } else { "n2" }, b * 3000 + i * 7, i as f64))
                .collect()
        };
        let mut stager = staged_db.stager();
        for b in 0..6 {
            let batch = mk_batch(b);
            stager.stage_batch(&batch).unwrap();
            locked_db.write_batch(&batch).unwrap();
        }
        stager.flush().unwrap();

        let (s, l) = (staged_db.stats(), locked_db.stats());
        assert_eq!(s, l, "staged and locked stats must agree");
        assert_eq!(staged_db.stats(), staged_db.recompute_stats());
        for field in ["Reading", "Health"] {
            let q = Query::select("Power", field, EpochSecs::new(0), EpochSecs::new(i64::MAX / 2));
            let (rs_s, _) = staged_db.query(&q).unwrap();
            let (rs_l, _) = locked_db.query(&q).unwrap();
            assert_eq!(rs_s, rs_l, "query results diverged on {field}");
        }
    }

    #[test]
    fn auto_flush_at_threshold() {
        let db = Db::new(DbConfig::default());
        let mut stager = db.stager_with_capacity(8);
        for i in 0..3 {
            stager.stage_batch(&[point("n1", 100 + i, 1.0)]).unwrap(); // 2 fields per point
        }
        assert_eq!(db.stats().points, 0);
        stager.stage_batch(&[point("n1", 200, 1.0)]).unwrap(); // reaches 8 → flush
        assert_eq!(db.stats().points, 8);
        assert_eq!(stager.staged_points(), 0);
    }

    #[test]
    fn drop_flushes_remaining_points() {
        let db = Db::new(DbConfig::default());
        {
            let mut stager = db.stager();
            stager.stage_batch(&[point("n1", 100, 1.0)]).unwrap();
        }
        assert_eq!(db.stats().points, 2);
    }

    #[test]
    fn stage_time_type_conflict_is_partial_like_write_batch() {
        let db = Db::new(DbConfig::default());
        let mut stager = db.stager();
        let good = DataPoint::new("m", EpochSecs::new(1)).tag("n", "a").field_f64("v", 1.0);
        let bad = DataPoint::new("m", EpochSecs::new(2)).tag("n", "a").field_str("v", "x");
        let err = stager.stage_batch(&[good, bad]).unwrap_err();
        assert!(err.to_string().contains("type conflict"));
        stager.flush().unwrap();
        assert_eq!(db.stats().points, 1, "points before the conflict still land");
    }

    #[test]
    fn flush_time_conflict_drops_run_keeps_others() {
        let db = Db::new(DbConfig::default());
        // Column "v" for series a is a float in the shards already.
        db.write(DataPoint::new("m", EpochSecs::new(1)).tag("n", "a").field_f64("v", 1.0)).unwrap();
        let mut stager = db.stager();
        // Staged run conflicts with the shard's column type; the other
        // series' run must still publish.
        stager
            .stage_batch(&[
                DataPoint::new("m", EpochSecs::new(2)).tag("n", "a").field_i64("v", 7),
                DataPoint::new("m", EpochSecs::new(3)).tag("n", "b").field_f64("v", 2.0),
            ])
            .unwrap();
        let err = stager.flush().unwrap_err();
        assert!(err.to_string().contains("type conflict"));
        assert_eq!(db.stats().points, 2, "clean run published, conflicted run dropped");
        assert_eq!(db.stats(), db.recompute_stats());
    }

    #[test]
    fn concurrent_stagers_conserve_points() {
        let db = std::sync::Arc::new(Db::new(DbConfig::default()));
        std::thread::scope(|s| {
            for w in 0..4 {
                let db = std::sync::Arc::clone(&db);
                s.spawn(move || {
                    let mut stager = db.stager_with_capacity(64);
                    for i in 0..100 {
                        stager
                            .stage_batch(&[point(&format!("n{w}"), 1000 + i * 60, i as f64)])
                            .unwrap();
                    }
                    stager.flush().unwrap();
                });
            }
        });
        assert_eq!(db.stats().points, 4 * 100 * 2);
        assert_eq!(db.stats(), db.recompute_stats());
        assert_eq!(count_all(&db, i64::MAX / 2), 400.0);
    }

    #[test]
    fn staging_metrics_advance() {
        let db = Db::new(DbConfig::default());
        let before = monster_obs::counter("monster_tsdb_staging_flushes_total").get();
        let mut stager = db.stager();
        stager.stage_batch(&[point("n1", 100, 1.0)]).unwrap();
        assert!(monster_obs::gauge("monster_tsdb_staging_depth").get() >= 2);
        stager.flush().unwrap();
        assert_eq!(monster_obs::counter("monster_tsdb_staging_flushes_total").get(), before + 1);
    }

    #[test]
    fn arena_recycles_across_flushes() {
        let db = Db::new(DbConfig::default());
        let mut stager = db.stager();
        for cycle in 0..3 {
            stager.stage_batch(&[point("n1", 100 + cycle, 1.0)]).unwrap();
            stager.flush().unwrap();
            assert_eq!(stager.runs.len(), 2, "arena must not grow across cycles");
            assert_eq!(stager.live, 0);
        }
        assert_eq!(db.stats().points, 6);
    }
}
