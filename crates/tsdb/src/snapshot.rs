//! Database snapshots: durable save/restore.
//!
//! MonSTer's "out-of-the-box" story includes surviving a restart of the
//! storage host without losing the collected history. A snapshot is the
//! whole database rendered as line protocol, compressed with the in-tree
//! mzlib codec, behind a small header:
//!
//! ```text
//! "MTSDB1\n" | mzlib container (compressed line-protocol text)
//! ```
//!
//! Line protocol is deliberately chosen over a binary dump: snapshots stay
//! interoperable (any line-protocol consumer can read an inflated
//! snapshot) and the format is covered by the line-protocol property
//! tests.

use crate::db::{Db, DbConfig};
use crate::lineproto;
use crate::point::DataPoint;
use monster_compress::Level;
use monster_util::{EpochSecs, Error, Result};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8] = b"MTSDB1\n";

/// Magic bytes opening an immutable per-shard segment file (`shard-<start>.seg`),
/// written by tiering ([`crate::db::Db::tier_cold_shards`]) and loaded
/// first during recovery. Same body format as a snapshot: compressed
/// line-protocol text.
pub(crate) const SEG_MAGIC: &[u8] = b"MSEG1\n";

/// Encode line-protocol `text` as an immutable segment file body.
pub(crate) fn encode_segment(text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(text.len() / 4 + SEG_MAGIC.len());
    out.extend_from_slice(SEG_MAGIC);
    out.extend_from_slice(&monster_compress::compress(text.as_bytes(), Level::default()));
    out
}

/// Decode an immutable segment file back into points. Segment files are
/// written with an fsync-then-rename protocol, so corruption here is real
/// data loss and surfaces as an error (unlike a torn WAL tail).
pub(crate) fn decode_segment(bytes: &[u8]) -> Result<Vec<DataPoint>> {
    let body = bytes
        .strip_prefix(SEG_MAGIC)
        .ok_or_else(|| Error::Corrupt("not a MSEG1 segment file".into()))?;
    let text = monster_compress::decompress(body)?;
    let text = String::from_utf8(text)
        .map_err(|_| Error::Corrupt("segment payload is not UTF-8".into()))?;
    lineproto::parse_batch(&text)
}

/// Snapshot statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Points written (one per field value).
    pub points: usize,
    /// Uncompressed line-protocol bytes.
    pub raw_bytes: usize,
    /// Bytes after compression (including the header).
    pub stored_bytes: usize,
}

/// Serialize the whole database into snapshot bytes.
pub fn write_snapshot(db: &Db) -> Result<(Vec<u8>, SnapshotStats)> {
    encode(db)
}

fn encode(db: &Db) -> Result<(Vec<u8>, SnapshotStats)> {
    let mut text = String::new();
    let mut points = 0usize;
    db.export(|key, field, ts, value| {
        let mut p = DataPoint::new(&key.measurement, EpochSecs::new(ts));
        for (k, v) in &key.tags {
            p = p.tag(k, v);
        }
        p = p.field(field, value);
        text.push_str(&lineproto::encode(&p));
        text.push('\n');
        points += 1;
    })?;
    let raw_bytes = text.len();
    let mut out = Vec::with_capacity(raw_bytes / 4 + MAGIC.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&monster_compress::compress(text.as_bytes(), Level::default()));
    let stored_bytes = out.len();
    Ok((out, SnapshotStats { points, raw_bytes, stored_bytes }))
}

/// Save a snapshot to `path`.
pub fn save_to_file(db: &Db, path: impl AsRef<Path>) -> Result<SnapshotStats> {
    let (bytes, stats) = encode(db)?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(stats)
}

/// Restore a database from snapshot bytes, using `config` for the new
/// instance (disk/cost models are deployment properties, not data).
pub fn read_snapshot(bytes: &[u8], config: DbConfig) -> Result<Db> {
    let body =
        bytes.strip_prefix(MAGIC).ok_or_else(|| Error::Corrupt("not a MTSDB1 snapshot".into()))?;
    let text = monster_compress::decompress(body)?;
    let text = String::from_utf8(text)
        .map_err(|_| Error::Corrupt("snapshot payload is not UTF-8".into()))?;
    let points = lineproto::parse_batch(&text)?;
    let db = Db::new(config);
    for chunk in points.chunks(10_000) {
        db.write_batch(chunk)?;
    }
    Ok(db)
}

/// Load a snapshot from `path`.
pub fn load_from_file(path: impl AsRef<Path>, config: DbConfig) -> Result<Db> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    read_snapshot(&bytes, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregation;
    use crate::{DataPoint, Query};

    fn seeded() -> Db {
        let db = Db::new(DbConfig::default());
        let mut batch = Vec::new();
        for i in 0..500i64 {
            batch.push(
                DataPoint::new("Power", EpochSecs::new(i * 60))
                    .tag("NodeId", format!("10.101.1.{}", i % 4 + 1))
                    .tag("Label", "NodePower")
                    .field_f64("Reading", 250.0 + (i % 37) as f64),
            );
            if i % 10 == 0 {
                batch.push(
                    DataPoint::new("NodeJobs", EpochSecs::new(i * 60))
                        .tag("NodeId", format!("10.101.1.{}", i % 4 + 1))
                        .field_str("JobList", format!("['{}']", 1_290_000 + i)),
                );
            }
        }
        db.write_batch(&batch).unwrap();
        db
    }

    fn query_all(db: &Db) -> crate::ResultSet {
        let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(500 * 60))
            .aggregate(Aggregation::Mean)
            .group_by_time(600);
        db.query(&q).unwrap().0
    }

    #[test]
    fn snapshot_round_trips_through_memory() {
        let db = seeded();
        let (bytes, stats) = encode(&db).unwrap();
        assert_eq!(stats.points, db.stats().points);
        assert!(stats.stored_bytes < stats.raw_bytes / 3, "{stats:?}");
        let restored = read_snapshot(&bytes, DbConfig::default()).unwrap();
        assert_eq!(restored.stats().points, db.stats().points);
        assert_eq!(restored.stats().cardinality, db.stats().cardinality);
        assert_eq!(query_all(&restored), query_all(&db));
        // String fields survive too.
        let q = Query::select("NodeJobs", "JobList", EpochSecs::new(0), EpochSecs::new(500 * 60));
        let (a, _) = db.query(&q).unwrap();
        let (b, _) = restored.query(&q).unwrap();
        assert_eq!(a, b);
    }

    /// Zone-map summaries are rebuilt on restore: a restored-and-compacted
    /// engine answers windowed aggregations from summaries, identically.
    #[test]
    fn summaries_survive_snapshot_restore() {
        let db = seeded();
        db.compact();
        let (bytes, _) = encode(&db).unwrap();
        let restored = read_snapshot(&bytes, DbConfig::default()).unwrap();
        restored.compact();
        let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(500 * 60))
            .aggregate(Aggregation::Mean)
            .group_by_time(500 * 60);
        let (rs_a, cost_a) = db.query(&q).unwrap();
        let (rs_b, cost_b) = restored.query(&q).unwrap();
        assert_eq!(rs_a, rs_b);
        assert!(cost_b.blocks_summarized > 0, "{cost_b:?}");
        assert_eq!(cost_a.blocks_summarized, cost_b.blocks_summarized);
    }

    #[test]
    fn snapshot_round_trips_through_file() {
        let db = seeded();
        let dir = std::env::temp_dir().join(format!("monster-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.mtsdb");
        let stats = save_to_file(&db, &path).unwrap();
        assert!(path.metadata().unwrap().len() as usize == stats.stored_bytes);
        let restored = load_from_file(&path, DbConfig::default()).unwrap();
        assert_eq!(restored.stats().points, db.stats().points);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let db = seeded();
        let (mut bytes, _) = encode(&db).unwrap();
        assert!(read_snapshot(b"garbage", DbConfig::default()).is_err());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(read_snapshot(&bytes, DbConfig::default()).is_err());
    }

    #[test]
    fn empty_database_snapshots_cleanly() {
        let db = Db::new(DbConfig::default());
        let (bytes, stats) = encode(&db).unwrap();
        assert_eq!(stats.points, 0);
        let restored = read_snapshot(&bytes, DbConfig::default()).unwrap();
        assert_eq!(restored.stats().points, 0);
    }
}
