//! Aggregation machinery and result types.
//!
//! The storage scan (in [`crate::db`]) feeds `(timestamp, value)` pairs into
//! a [`WindowAggregator`] per series; this module owns the accumulator
//! semantics so they can be tested in isolation.

use super::ast::{Aggregation, Fill};
use crate::column::{BlockSummary, NumericSummary};
use crate::field::FieldValue;
use crate::series::SeriesKey;
use monster_util::EpochSecs;
use std::collections::BTreeMap;

/// One series' query output.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesResult {
    /// The series this row belongs to.
    pub key: SeriesKey,
    /// `(window start, value)` pairs in ascending time order. For raw
    /// (non-aggregated) queries, the original timestamps and values.
    pub points: Vec<(EpochSecs, FieldValue)>,
}

/// A query's full result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Per-series results, ordered by series key.
    pub series: Vec<SeriesResult>,
}

impl ResultSet {
    /// Total points across all series.
    pub fn point_count(&self) -> usize {
        self.series.iter().map(|s| s.points.len()).sum()
    }

    /// Find a series by a tag value (convenience for consumers keyed by
    /// node, like Metrics Builder's per-node assembly).
    pub fn series_with_tag(&self, key: &str, value: &str) -> Option<&SeriesResult> {
        self.series.iter().find(|s| s.key.tag(key) == Some(value))
    }
}

/// Numeric accumulator for one window.
#[derive(Debug, Clone, Copy)]
struct Acc {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    first_ts: i64,
    first: f64,
    last_ts: i64,
    last: f64,
}

impl Acc {
    fn new() -> Acc {
        Acc {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            first_ts: i64::MAX,
            first: 0.0,
            last_ts: i64::MIN,
            last: 0.0,
        }
    }

    fn push(&mut self, ts: i64, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if ts < self.first_ts {
            self.first_ts = ts;
            self.first = v;
        }
        if ts >= self.last_ts {
            self.last_ts = ts;
            self.last = v;
        }
    }

    /// Merge a sealed block's pre-folded summary, exactly as if the
    /// block's points had been pushed in append order after everything
    /// already absorbed: the block fold uses `push`'s arithmetic and this
    /// merge preserves its tie-breaking (`first` keeps the earlier
    /// arrival on equal timestamps, `last` takes the later one).
    fn merge(&mut self, count: usize, n: &NumericSummary) {
        self.count += count as u64;
        self.sum += n.sum;
        self.min = self.min.min(n.min);
        self.max = self.max.max(n.max);
        if n.first_ts < self.first_ts {
            self.first_ts = n.first_ts;
            self.first = n.first;
        }
        if n.last_ts >= self.last_ts {
            self.last_ts = n.last_ts;
            self.last = n.last;
        }
    }

    fn finish(&self, agg: Aggregation) -> f64 {
        match agg {
            Aggregation::Max => self.max,
            Aggregation::Min => self.min,
            Aggregation::Mean => self.sum / self.count as f64,
            Aggregation::Sum => self.sum,
            Aggregation::Count => self.count as f64,
            Aggregation::First => self.first,
            Aggregation::Last => self.last,
        }
    }
}

/// Buckets `(ts, value)` pairs into fixed windows and finishes them into
/// aggregated points. Windows with no data are omitted (InfluxDB's
/// default null-window behaviour).
#[derive(Debug)]
pub struct WindowAggregator {
    agg: Aggregation,
    /// Window length in seconds; `None` = single whole-range window.
    window: Option<i64>,
    range_start: i64,
    buckets: BTreeMap<i64, Acc>,
    /// Non-numeric values count toward `count` but have no numeric stats.
    non_numeric: u64,
}

impl WindowAggregator {
    /// Create an aggregator for a query range starting at `range_start`.
    pub fn new(agg: Aggregation, window: Option<i64>, range_start: i64) -> Self {
        WindowAggregator { agg, window, range_start, buckets: BTreeMap::new(), non_numeric: 0 }
    }

    /// Window start for a timestamp. Windows are aligned to the epoch
    /// (InfluxDB aligns `GROUP BY time` buckets absolutely, not to the
    /// query start).
    fn bucket_of(&self, ts: i64) -> i64 {
        match self.window {
            Some(w) => ts.div_euclid(w) * w,
            None => self.range_start,
        }
    }

    /// Feed one point.
    pub fn push(&mut self, ts: i64, v: &FieldValue) {
        match v.as_f64() {
            Some(x) => self.buckets.entry(self.bucket_of(ts)).or_insert_with(Acc::new).push(ts, x),
            None => {
                if self.agg == Aggregation::Count {
                    self.buckets.entry(self.bucket_of(ts)).or_insert_with(Acc::new).push(ts, 0.0);
                } else {
                    self.non_numeric += 1;
                }
            }
        }
    }

    /// Feed a whole sealed block's zone-map summary (aggregation
    /// pushdown). The caller guarantees the block lies entirely inside one
    /// aggregation window — [`crate::column::BlockSummary::usable_for`] —
    /// so the merge lands in a single bucket. `count` over non-numeric
    /// blocks merges an all-zeros fold, mirroring the `(ts, 0.0)` pushes
    /// of the per-point path; other aggregations never receive
    /// non-numeric partials (the scan decodes those blocks instead).
    pub fn push_partial(&mut self, s: &BlockSummary) {
        let bucket = self.bucket_of(s.ts_min);
        match &s.numeric {
            Some(n) => self.buckets.entry(bucket).or_insert_with(Acc::new).merge(s.count, n),
            None if self.agg == Aggregation::Count => {
                let zeros = NumericSummary {
                    min: 0.0,
                    max: 0.0,
                    sum: 0.0,
                    first_ts: s.ts_min,
                    first: 0.0,
                    last_ts: s.ts_max,
                    last: 0.0,
                };
                self.buckets.entry(bucket).or_insert_with(Acc::new).merge(s.count, &zeros);
            }
            None => self.non_numeric += s.count as u64,
        }
    }

    /// Number of points that could not be aggregated numerically.
    pub fn non_numeric(&self) -> u64 {
        self.non_numeric
    }

    /// Finish into ordered `(window, value)` points.
    pub fn finish(self) -> Vec<(EpochSecs, FieldValue)> {
        self.finish_filled(Fill::None, i64::MIN, i64::MAX)
    }

    /// Finish with an empty-window policy over the query range
    /// `[range_start, range_end)`.
    pub fn finish_filled(
        self,
        fill: Fill,
        range_start: i64,
        range_end: i64,
    ) -> Vec<(EpochSecs, FieldValue)> {
        let agg = self.agg;
        let window = self.window;
        let present: Vec<(i64, f64)> =
            self.buckets.into_iter().map(|(w, acc)| (w, acc.finish(agg))).collect();
        let points: Vec<(i64, f64)> = match (fill, window) {
            (Fill::None, _) | (_, None) => present,
            (policy, Some(w)) => {
                if present.is_empty() {
                    match policy {
                        // fill(0) materializes every window in range.
                        Fill::Zero => {
                            let first = range_start.div_euclid(w) * w;
                            let mut out = Vec::new();
                            let mut t = first.max(range_start - w + 1);
                            // Align to window boundary ≥ first window.
                            t = t.div_euclid(w) * w;
                            while t < range_end {
                                out.push((t, 0.0));
                                t += w;
                            }
                            out
                        }
                        _ => Vec::new(),
                    }
                } else {
                    let lo = match policy {
                        Fill::Zero => range_start.div_euclid(w) * w,
                        // previous/linear: start at the first real window.
                        _ => present[0].0,
                    };
                    let hi = match policy {
                        Fill::Zero => (range_end - 1).div_euclid(w) * w,
                        Fill::Previous => (range_end - 1).div_euclid(w) * w,
                        // linear: stop at the last real window.
                        _ => present[present.len() - 1].0,
                    };
                    let mut out = Vec::new();
                    let mut idx = 0usize;
                    let mut t = lo;
                    while t <= hi {
                        if idx < present.len() && present[idx].0 == t {
                            out.push(present[idx]);
                            idx += 1;
                        } else {
                            let v = match policy {
                                Fill::Zero => 0.0,
                                Fill::Previous => out.last().map(|&(_, v)| v).unwrap_or(0.0),
                                Fill::Linear => {
                                    let (t0, v0) = *out.last().expect("lo starts on data");
                                    let (t1, v1) = present[idx];
                                    v0 + (v1 - v0) * (t - t0) as f64 / (t1 - t0) as f64
                                }
                                Fill::None => unreachable!("handled above"),
                            };
                            out.push((t, v));
                        }
                        t += w;
                    }
                    out
                }
            }
        };
        points.into_iter().map(|(t, v)| (EpochSecs::new(t), FieldValue::Float(v))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(agg: Aggregation, window: Option<i64>, pts: &[(i64, f64)]) -> Vec<(i64, f64)> {
        let mut w = WindowAggregator::new(agg, window, 0);
        for &(t, v) in pts {
            w.push(t, &FieldValue::Float(v));
        }
        w.finish().into_iter().map(|(t, v)| (t.as_secs(), v.as_f64().unwrap())).collect()
    }

    #[test]
    fn max_per_window() {
        let pts = [(0, 1.0), (100, 5.0), (299, 2.0), (300, 9.0), (599, 3.0)];
        let out = run(Aggregation::Max, Some(300), &pts);
        assert_eq!(out, vec![(0, 5.0), (300, 9.0)]);
    }

    #[test]
    fn all_aggregations_on_one_window() {
        let pts = [(10, 4.0), (20, 1.0), (30, 7.0)];
        assert_eq!(run(Aggregation::Min, None, &pts), vec![(0, 1.0)]);
        assert_eq!(run(Aggregation::Max, None, &pts), vec![(0, 7.0)]);
        assert_eq!(run(Aggregation::Sum, None, &pts), vec![(0, 12.0)]);
        assert_eq!(run(Aggregation::Mean, None, &pts), vec![(0, 4.0)]);
        assert_eq!(run(Aggregation::Count, None, &pts), vec![(0, 3.0)]);
        assert_eq!(run(Aggregation::First, None, &pts), vec![(0, 4.0)]);
        assert_eq!(run(Aggregation::Last, None, &pts), vec![(0, 7.0)]);
    }

    #[test]
    fn first_last_use_timestamps_not_arrival_order() {
        let pts = [(30, 7.0), (10, 4.0), (20, 1.0)]; // out of order
        assert_eq!(run(Aggregation::First, None, &pts), vec![(0, 4.0)]);
        assert_eq!(run(Aggregation::Last, None, &pts), vec![(0, 7.0)]);
    }

    #[test]
    fn empty_windows_are_omitted() {
        let pts = [(0, 1.0), (900, 2.0)];
        let out = run(Aggregation::Mean, Some(300), &pts);
        assert_eq!(out, vec![(0, 1.0), (900, 2.0)]);
    }

    #[test]
    fn windows_align_to_epoch_not_range_start() {
        let mut w = WindowAggregator::new(Aggregation::Max, Some(300), 450);
        w.push(451, &FieldValue::Float(1.0));
        let out = w.finish();
        assert_eq!(out[0].0.as_secs(), 300);
    }

    #[test]
    fn negative_timestamps_bucket_correctly() {
        let out = run(Aggregation::Count, Some(300), &[(-1, 1.0), (-300, 1.0), (-301, 1.0)]);
        assert_eq!(out, vec![(-600, 1.0), (-300, 2.0)]);
    }

    #[test]
    fn count_includes_strings_others_skip_them() {
        let mut w = WindowAggregator::new(Aggregation::Count, None, 0);
        w.push(1, &FieldValue::Str("['123']".into()));
        w.push(2, &FieldValue::Float(1.0));
        assert_eq!(w.finish()[0].1.as_f64(), Some(2.0));

        let mut w = WindowAggregator::new(Aggregation::Max, None, 0);
        w.push(1, &FieldValue::Str("x".into()));
        w.push(2, &FieldValue::Float(5.0));
        assert_eq!(w.non_numeric(), 1);
        assert_eq!(w.finish()[0].1.as_f64(), Some(5.0));
    }

    #[test]
    fn int_fields_aggregate_numerically() {
        let mut w = WindowAggregator::new(Aggregation::Mean, None, 0);
        w.push(1, &FieldValue::Int(4));
        w.push(2, &FieldValue::Int(6));
        assert_eq!(w.finish()[0].1.as_f64(), Some(5.0));
    }

    #[test]
    fn partial_merge_matches_per_point_pushes_bit_for_bit() {
        // Awkward float values whose sum depends on association order: the
        // fold + merge path must reproduce the per-point fold exactly.
        let pts: Vec<(i64, f64)> =
            (0..50).map(|i| (100 + i, 0.1 + i as f64 * 1e-13 + (i % 7) as f64 * 1e7)).collect();
        let ts: Vec<i64> = pts.iter().map(|&(t, _)| t).collect();
        let summary = BlockSummary {
            count: pts.len(),
            ts_min: 100,
            ts_max: 149,
            numeric: Some(NumericSummary::fold(&ts, pts.iter().map(|&(_, v)| v))),
        };
        for agg in [
            Aggregation::Max,
            Aggregation::Min,
            Aggregation::Mean,
            Aggregation::Sum,
            Aggregation::Count,
            Aggregation::First,
            Aggregation::Last,
        ] {
            // Whole block in one window, empty bucket before the merge —
            // the contract scan_agg eligibility guarantees.
            let mut per_point = WindowAggregator::new(agg, Some(300), 0);
            for &(t, v) in &pts {
                per_point.push(t, &FieldValue::Float(v));
            }
            let mut merged = WindowAggregator::new(agg, Some(300), 0);
            merged.push_partial(&summary);
            assert_eq!(per_point.finish(), merged.finish(), "agg {agg:?}");
        }
    }

    #[test]
    fn count_partial_over_non_numeric_block() {
        let s = BlockSummary { count: 7, ts_min: 10, ts_max: 60, numeric: None };
        let mut w = WindowAggregator::new(Aggregation::Count, Some(300), 0);
        w.push_partial(&s);
        assert_eq!(w.finish(), vec![(EpochSecs::new(0), FieldValue::Float(7.0))]);
        // Other aggregations only count the skip, like the per-point path.
        let mut w = WindowAggregator::new(Aggregation::Max, Some(300), 0);
        w.push_partial(&s);
        assert_eq!(w.non_numeric(), 7);
        assert!(w.finish().is_empty());
    }

    #[test]
    fn result_set_lookup_by_tag() {
        let key = SeriesKey {
            measurement: "Power".into(),
            tags: vec![("NodeId".into(), "10.101.1.1".into())],
        };
        let rs = ResultSet {
            series: vec![SeriesResult {
                key,
                points: vec![(EpochSecs::new(0), FieldValue::Float(1.0))],
            }],
        };
        assert!(rs.series_with_tag("NodeId", "10.101.1.1").is_some());
        assert!(rs.series_with_tag("NodeId", "10.101.9.9").is_none());
        assert_eq!(rs.point_count(), 1);
    }
}
