//! Parser for the InfluxQL subset.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query   := SELECT proj FROM ident WHERE conds
//!            (GROUP BY TIME '(' interval ')' (FILL '(' arg ')')?)?
//!            (LIMIT n)?
//! proj    := ident | ident '(' ident ')'
//! conds   := cond (AND cond)*
//! cond    := ident '=' string            -- tag predicate
//!          | TIME ('>=' | '>') string    -- range start
//!          | TIME ('<' | '<=') string    -- range end
//! ```
//!
//! Time literals are RFC 3339 strings or bare epoch-second integers.

use super::ast::{Aggregation, Fill, Query};
use monster_util::{time::parse_interval, EpochSecs, Error, Result};

/// Parse one query string.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = lex(input)?;
    Parser { tokens, pos: 0 }.query()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(i64),
    LParen,
    RParen,
    Comma,
    Op(String), // = >= > < <=
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                i += 1;
                let start = i;
                while i < chars.len() && chars[i] != quote {
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(Error::parse("unterminated string literal"));
                }
                out.push(Tok::Str(chars[start..i].iter().collect()));
                i += 1;
            }
            '=' => {
                out.push(Tok::Op("=".into()));
                i += 1;
            }
            '>' | '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Tok::Op(format!("{c}=")));
                    i += 2;
                } else {
                    out.push(Tok::Op(c.to_string()));
                    i += 1;
                }
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                // "5m" (an interval) lexes as one identifier, not Num+Ident.
                if i < chars.len() && (chars[i].is_ascii_alphabetic() || chars[i] == '_') {
                    while i < chars.len()
                        && (chars[i].is_ascii_alphanumeric() || matches!(chars[i], '_' | '.' | '-'))
                    {
                        i += 1;
                    }
                    out.push(Tok::Ident(chars[start..i].iter().collect()));
                } else {
                    let text: String = chars[start..i].iter().collect();
                    out.push(Tok::Num(
                        text.parse().map_err(|_| Error::parse(format!("bad number {text:?}")))?,
                    ));
                }
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || matches!(chars[i], '_' | '.' | '-'))
                {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            c => return Err(Error::parse(format!("unexpected character {c:?}"))),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::parse("unexpected end of query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            t => Err(Error::parse(format!("expected identifier, got {t:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        let got = self.ident()?;
        if got.eq_ignore_ascii_case(kw) {
            Ok(())
        } else {
            Err(Error::parse(format!("expected {kw}, got {got:?}")))
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.keyword("SELECT")?;
        let first = self.ident()?;
        let (agg, field) = if self.peek() == Some(&Tok::LParen) {
            self.next()?;
            let field = self.ident()?;
            match self.next()? {
                Tok::RParen => {}
                t => return Err(Error::parse(format!("expected ')', got {t:?}"))),
            }
            let agg = Aggregation::parse(&first)
                .ok_or_else(|| Error::parse(format!("unknown aggregation {first:?}")))?;
            (Some(agg), field)
        } else {
            (None, first)
        };
        self.keyword("FROM")?;
        let measurement = self.ident()?;
        self.keyword("WHERE")?;

        let mut predicates = Vec::new();
        let mut start: Option<EpochSecs> = None;
        let mut end: Option<EpochSecs> = None;
        loop {
            let name = self.ident()?;
            if name.eq_ignore_ascii_case("time") {
                let op = match self.next()? {
                    Tok::Op(op) => op,
                    t => return Err(Error::parse(format!("expected comparison, got {t:?}"))),
                };
                let at = self.time_literal()?;
                match op.as_str() {
                    ">=" => start = Some(at),
                    ">" => start = Some(at + 1),
                    "<" => end = Some(at),
                    "<=" => end = Some(at + 1),
                    other => return Err(Error::parse(format!("bad time comparison {other:?}"))),
                }
            } else {
                match self.next()? {
                    Tok::Op(op) if op == "=" => {}
                    t => return Err(Error::parse(format!("expected '=', got {t:?}"))),
                }
                let value = match self.next()? {
                    Tok::Str(s) => s,
                    Tok::Ident(s) => s,
                    Tok::Num(n) => n.to_string(),
                    t => return Err(Error::parse(format!("expected tag value, got {t:?}"))),
                };
                predicates.push((name, value));
            }
            match self.peek() {
                Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("and") => {
                    self.pos += 1;
                }
                _ => break,
            }
        }

        let mut group_by = None;
        let mut fill = Fill::None;
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case("group") {
                self.pos += 1;
                self.keyword("BY")?;
                self.keyword("TIME")?;
                match self.next()? {
                    Tok::LParen => {}
                    t => return Err(Error::parse(format!("expected '(', got {t:?}"))),
                }
                let iv = self.ident()?;
                group_by = Some(parse_interval(&iv)?);
                match self.next()? {
                    Tok::RParen => {}
                    t => return Err(Error::parse(format!("expected ')', got {t:?}"))),
                }
                // Optional fill(...).
                if let Some(Tok::Ident(s)) = self.peek() {
                    if s.eq_ignore_ascii_case("fill") {
                        self.pos += 1;
                        match self.next()? {
                            Tok::LParen => {}
                            t => return Err(Error::parse(format!("expected '(', got {t:?}"))),
                        }
                        let arg = match self.next()? {
                            Tok::Ident(s) => s,
                            Tok::Num(n) => n.to_string(),
                            t => return Err(Error::parse(format!("bad fill argument {t:?}"))),
                        };
                        fill = Fill::parse(&arg)
                            .ok_or_else(|| Error::parse(format!("unknown fill {arg:?}")))?;
                        match self.next()? {
                            Tok::RParen => {}
                            t => return Err(Error::parse(format!("expected ')', got {t:?}"))),
                        }
                    }
                }
            }
        }
        let mut limit = None;
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case("limit") {
                self.pos += 1;
                match self.next()? {
                    Tok::Num(n) if n > 0 => limit = Some(n as usize),
                    t => return Err(Error::parse(format!("bad LIMIT argument {t:?}"))),
                }
            }
        }
        if self.pos != self.tokens.len() {
            return Err(Error::parse("trailing tokens in query"));
        }

        let start = start.ok_or_else(|| Error::parse("query missing time >= bound"))?;
        let end = end.ok_or_else(|| Error::parse("query missing time < bound"))?;
        let q = Query { agg, field, measurement, predicates, start, end, group_by, fill, limit };
        q.validate()?;
        Ok(q)
    }

    fn time_literal(&mut self) -> Result<EpochSecs> {
        match self.next()? {
            Tok::Str(s) => EpochSecs::parse_rfc3339(&s),
            Tok::Num(n) => Ok(EpochSecs::new(n)),
            t => Err(Error::parse(format!("expected time literal, got {t:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let q = parse_query(
            "SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
             Label='NodePower' AND time >='2020-04-20T12:00:00Z' AND \
             time < '2020-04-21T12:00:00Z' GROUP BY(5m)",
        );
        // The paper's string writes "GROUP BY(5m)"; we accept the standard
        // "GROUP BY time(5m)" — the paper form is shorthand. Verify the
        // standard form parses:
        assert!(q.is_err());
        let q = parse_query(
            "SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
             Label='NodePower' AND time >= '2020-04-20T12:00:00Z' AND \
             time < '2020-04-21T12:00:00Z' GROUP BY time(5m)",
        )
        .unwrap();
        assert_eq!(q.agg, Some(Aggregation::Max));
        assert_eq!(q.field, "Reading");
        assert_eq!(q.measurement, "Power");
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.group_by, Some(300));
        assert_eq!(q.end - q.start, 86_400);
    }

    #[test]
    fn round_trips_through_to_influxql() {
        let text = "SELECT mean(UsedMem) FROM UGE WHERE NodeId='10.101.2.3' AND \
                    time >= '2020-04-20T12:00:00Z' AND time < '2020-04-20T18:00:00Z' \
                    GROUP BY time(10m)";
        let q = parse_query(text).unwrap();
        let q2 = parse_query(&q.to_influxql()).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn raw_select_without_aggregation() {
        let q = parse_query(
            "SELECT JobList FROM NodeJobs WHERE NodeId='10.101.1.1' AND \
             time >= 0 AND time < 86400",
        )
        .unwrap();
        assert_eq!(q.agg, None);
        assert_eq!(q.field, "JobList");
        assert_eq!(q.start, EpochSecs::new(0));
        assert_eq!(q.end, EpochSecs::new(86_400));
    }

    #[test]
    fn epoch_literals_and_exclusive_bounds() {
        let q = parse_query("SELECT count(v) FROM m WHERE time > 99 AND time <= 200").unwrap();
        assert_eq!(q.start, EpochSecs::new(100));
        assert_eq!(q.end, EpochSecs::new(201));
    }

    #[test]
    fn keywords_case_insensitive() {
        let q = parse_query(
            "select MAX(Reading) from Power where time >= 0 and time < 10 group by time(5s)",
        )
        .unwrap();
        assert_eq!(q.agg, Some(Aggregation::Max));
        assert_eq!(q.group_by, Some(5));
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "SELECT FROM Power WHERE time >= 0 AND time < 10",
            "SELECT max(Reading FROM Power WHERE time >= 0 AND time < 10",
            "SELECT median(x) FROM m WHERE time >= 0 AND time < 10",
            "SELECT v FROM m",                                         // no WHERE
            "SELECT v FROM m WHERE time >= 0",                         // no end
            "SELECT v FROM m WHERE time < 10",                         // no start
            "SELECT v FROM m WHERE time >= 10 AND time < 5",           // empty range
            "SELECT v FROM m WHERE time >= 0 AND time < 10 junk",      // trailing
            "SELECT v FROM m WHERE tag='x' OR time >= 0 AND time < 5", // OR unsupported
            "SELECT v FROM m WHERE time = 5 AND time < 10",            // bad time op
            "SELECT v FROM m WHERE time >= 'not-a-date' AND time < 10",
            "SELECT v FROM m WHERE time >= 0 AND time < 10 GROUP BY time(0m)",
        ] {
            assert!(parse_query(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn tag_values_with_dots_and_dashes() {
        let q = parse_query(
            "SELECT max(v) FROM m WHERE NodeId='10.101.1.31' AND time >= 0 AND time < 10",
        )
        .unwrap();
        assert_eq!(q.predicates[0], ("NodeId".into(), "10.101.1.31".into()));
    }
}
