//! Schema-discovery meta-queries: the `SHOW ...` family.
//!
//! Consumers (dashboards, the CLI) discover what is stored before they
//! query it. The supported subset mirrors InfluxQL:
//!
//! ```text
//! SHOW MEASUREMENTS
//! SHOW SERIES [FROM <measurement>]
//! SHOW TAG KEYS FROM <measurement>
//! SHOW TAG VALUES FROM <measurement> WITH KEY = <tag>
//! SHOW FIELD KEYS FROM <measurement>
//! ```

use crate::db::Db;
use monster_util::{Error, Result};

/// A parsed meta-query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaQuery {
    /// All measurement names.
    Measurements,
    /// All series keys, optionally restricted to one measurement.
    Series {
        /// Restrict to this measurement.
        measurement: Option<String>,
    },
    /// Tag keys used by a measurement.
    TagKeys {
        /// The measurement.
        measurement: String,
    },
    /// Distinct values of one tag within a measurement.
    TagValues {
        /// The measurement.
        measurement: String,
        /// The tag key.
        key: String,
    },
    /// Field keys used by a measurement.
    FieldKeys {
        /// The measurement.
        measurement: String,
    },
}

impl MetaQuery {
    /// Parse a `SHOW ...` statement (case-insensitive keywords).
    pub fn parse(text: &str) -> Result<MetaQuery> {
        let tokens: Vec<String> = text
            .split_whitespace()
            .map(|t| t.trim_matches(|c| c == '\'' || c == '"').to_string())
            .collect();
        let kw =
            |i: usize, k: &str| tokens.get(i).map(|t| t.eq_ignore_ascii_case(k)).unwrap_or(false);
        if !kw(0, "SHOW") {
            return Err(Error::parse("meta-query must start with SHOW"));
        }
        if kw(1, "MEASUREMENTS") && tokens.len() == 2 {
            return Ok(MetaQuery::Measurements);
        }
        if kw(1, "SERIES") {
            return match tokens.len() {
                2 => Ok(MetaQuery::Series { measurement: None }),
                4 if kw(2, "FROM") => {
                    Ok(MetaQuery::Series { measurement: Some(tokens[3].clone()) })
                }
                _ => Err(Error::parse("usage: SHOW SERIES [FROM <m>]")),
            };
        }
        if kw(1, "TAG") && kw(2, "KEYS") && kw(3, "FROM") && tokens.len() == 5 {
            return Ok(MetaQuery::TagKeys { measurement: tokens[4].clone() });
        }
        if kw(1, "TAG")
            && kw(2, "VALUES")
            && kw(3, "FROM")
            && kw(5, "WITH")
            && kw(6, "KEY")
            && tokens.get(7).map(|t| t == "=").unwrap_or(false)
            && tokens.len() == 9
        {
            return Ok(MetaQuery::TagValues {
                measurement: tokens[4].clone(),
                key: tokens[8].clone(),
            });
        }
        if kw(1, "FIELD") && kw(2, "KEYS") && kw(3, "FROM") && tokens.len() == 5 {
            return Ok(MetaQuery::FieldKeys { measurement: tokens[4].clone() });
        }
        Err(Error::parse(format!("unrecognized meta-query {text:?}")))
    }

    /// Execute against a database; every variant returns sorted strings.
    pub fn run(&self, db: &Db) -> Vec<String> {
        match self {
            MetaQuery::Measurements => db.measurements(),
            MetaQuery::Series { measurement } => {
                let mut out = db.series_keys(measurement.as_deref());
                out.sort();
                out
            }
            MetaQuery::TagKeys { measurement } => db.tag_keys(measurement),
            MetaQuery::TagValues { measurement, key } => db.tag_values(measurement, key),
            MetaQuery::FieldKeys { measurement } => db.field_keys(measurement),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataPoint, DbConfig};
    use monster_util::EpochSecs;

    fn db() -> Db {
        let db = Db::new(DbConfig::default());
        for n in 1..=3 {
            db.write(
                DataPoint::new("Power", EpochSecs::new(n))
                    .tag("NodeId", format!("10.101.1.{n}"))
                    .tag("Label", "NodePower")
                    .field_f64("Reading", 1.0),
            )
            .unwrap();
        }
        db.write(
            DataPoint::new("UGE", EpochSecs::new(9))
                .tag("NodeId", "10.101.1.1")
                .field_f64("CPUUsage", 0.5)
                .field_f64("MemUsed", 12.0),
        )
        .unwrap();
        db
    }

    #[test]
    fn show_measurements() {
        let q = MetaQuery::parse("SHOW MEASUREMENTS").unwrap();
        assert_eq!(q.run(&db()), vec!["Power".to_string(), "UGE".to_string()]);
    }

    #[test]
    fn show_series_scoped_and_global() {
        let d = db();
        let all = MetaQuery::parse("show series").unwrap().run(&d);
        assert_eq!(all.len(), 4);
        let scoped = MetaQuery::parse("SHOW SERIES FROM Power").unwrap().run(&d);
        assert_eq!(scoped.len(), 3);
        assert!(scoped[0].starts_with("Power,"));
    }

    #[test]
    fn show_tag_keys_and_values() {
        let d = db();
        assert_eq!(
            MetaQuery::parse("SHOW TAG KEYS FROM Power").unwrap().run(&d),
            vec!["Label".to_string(), "NodeId".to_string()]
        );
        assert_eq!(
            MetaQuery::parse("SHOW TAG VALUES FROM Power WITH KEY = NodeId").unwrap().run(&d),
            vec!["10.101.1.1".to_string(), "10.101.1.2".to_string(), "10.101.1.3".to_string()]
        );
        // Unknown measurement: empty, not an error.
        assert!(MetaQuery::parse("SHOW TAG KEYS FROM Nope").unwrap().run(&d).is_empty());
    }

    #[test]
    fn show_field_keys() {
        let d = db();
        assert_eq!(
            MetaQuery::parse("SHOW FIELD KEYS FROM UGE").unwrap().run(&d),
            vec!["CPUUsage".to_string(), "MemUsed".to_string()]
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "SELECT MEASUREMENTS",
            "SHOW",
            "SHOW SERIES FROM",
            "SHOW TAG VALUES FROM Power",
            "SHOW TAG VALUES FROM Power WITH KEY NodeId",
            "SHOW MEASUREMENTS extra",
        ] {
            assert!(MetaQuery::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
