//! Query AST: the `SELECT agg(field) FROM m WHERE ... GROUP BY time(...)`
//! subset of InfluxQL that Metrics Builder generates (§III-D).

use monster_util::{EpochSecs, Error, Result};

/// Supported aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Window maximum — the paper's example downsampling function.
    Max,
    /// Window minimum.
    Min,
    /// Window arithmetic mean.
    Mean,
    /// Window sum.
    Sum,
    /// Window count.
    Count,
    /// Earliest value in the window.
    First,
    /// Latest value in the window.
    Last,
}

impl Aggregation {
    /// Parse a function name (case-insensitive).
    pub fn parse(s: &str) -> Option<Aggregation> {
        match s.to_ascii_lowercase().as_str() {
            "max" => Some(Aggregation::Max),
            "min" => Some(Aggregation::Min),
            "mean" => Some(Aggregation::Mean),
            "sum" => Some(Aggregation::Sum),
            "count" => Some(Aggregation::Count),
            "first" => Some(Aggregation::First),
            "last" => Some(Aggregation::Last),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Aggregation::Max => "max",
            Aggregation::Min => "min",
            Aggregation::Mean => "mean",
            Aggregation::Sum => "sum",
            Aggregation::Count => "count",
            Aggregation::First => "first",
            Aggregation::Last => "last",
        }
    }
}

/// How empty `GROUP BY time` windows are reported (InfluxQL's `fill()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fill {
    /// Omit empty windows (InfluxDB's default, `fill(none)`).
    #[default]
    None,
    /// Report empty windows as 0.
    Zero,
    /// Carry the previous window's value forward (`fill(previous)`);
    /// windows before the first value are omitted.
    Previous,
    /// Linearly interpolate between surrounding windows
    /// (`fill(linear)`); leading/trailing gaps are omitted.
    Linear,
}

impl Fill {
    /// Parse the `fill(...)` argument.
    pub fn parse(s: &str) -> Option<Fill> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Some(Fill::None),
            "0" | "zero" => Some(Fill::Zero),
            "previous" => Some(Fill::Previous),
            "linear" => Some(Fill::Linear),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            Fill::None => "none",
            Fill::Zero => "0",
            Fill::Previous => "previous",
            Fill::Linear => "linear",
        }
    }
}

/// A single query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Aggregation; `None` selects raw points.
    pub agg: Option<Aggregation>,
    /// The field to read.
    pub field: String,
    /// Source measurement.
    pub measurement: String,
    /// Tag equality predicates (AND semantics).
    pub predicates: Vec<(String, String)>,
    /// Range start (inclusive).
    pub start: EpochSecs,
    /// Range end (exclusive).
    pub end: EpochSecs,
    /// `GROUP BY time(interval)` in seconds; `None` aggregates the whole
    /// range into one value (or returns raw points when `agg` is `None`).
    pub group_by: Option<i64>,
    /// Empty-window policy for `GROUP BY time` results.
    pub fill: Fill,
    /// Cap on points returned per series (`LIMIT n`); `None` = unlimited.
    pub limit: Option<usize>,
}

impl Query {
    /// Start building a query over `measurement.field` in `[start, end)`.
    pub fn select(
        measurement: impl Into<String>,
        field: impl Into<String>,
        start: EpochSecs,
        end: EpochSecs,
    ) -> Self {
        Query {
            agg: None,
            field: field.into(),
            measurement: measurement.into(),
            predicates: Vec::new(),
            start,
            end,
            group_by: None,
            fill: Fill::None,
            limit: None,
        }
    }

    /// Apply an aggregation function.
    pub fn aggregate(mut self, agg: Aggregation) -> Self {
        self.agg = Some(agg);
        self
    }

    /// Add a tag equality predicate.
    pub fn where_tag(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.predicates.push((key.into(), value.into()));
        self
    }

    /// Group into fixed windows of `secs` seconds.
    pub fn group_by_time(mut self, secs: i64) -> Self {
        self.group_by = Some(secs);
        self
    }

    /// Set the empty-window policy.
    pub fn fill(mut self, fill: Fill) -> Self {
        self.fill = fill;
        self
    }

    /// Cap points per series.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Validate invariants the executor relies on.
    pub fn validate(&self) -> Result<()> {
        if self.end <= self.start {
            return Err(Error::invalid("query range is empty"));
        }
        if let Some(g) = self.group_by {
            if g <= 0 {
                return Err(Error::invalid("GROUP BY interval must be positive"));
            }
            if self.agg.is_none() {
                return Err(Error::invalid("GROUP BY time requires an aggregation"));
            }
        }
        if self.measurement.is_empty() || self.field.is_empty() {
            return Err(Error::invalid("measurement and field are required"));
        }
        if self.fill != Fill::None && self.group_by.is_none() {
            return Err(Error::invalid("fill() requires GROUP BY time"));
        }
        if self.limit == Some(0) {
            return Err(Error::invalid("LIMIT must be positive"));
        }
        Ok(())
    }

    /// Render back to InfluxQL text (the strings Metrics Builder logs).
    pub fn to_influxql(&self) -> String {
        let mut s = String::from("SELECT ");
        match self.agg {
            Some(a) => s.push_str(&format!("{}({})", a.name(), self.field)),
            None => s.push_str(&self.field),
        }
        s.push_str(&format!(" FROM {}", self.measurement));
        s.push_str(" WHERE ");
        for (k, v) in &self.predicates {
            s.push_str(&format!("{k}='{v}' AND "));
        }
        s.push_str(&format!(
            "time >= '{}' AND time < '{}'",
            self.start.to_rfc3339(),
            self.end.to_rfc3339()
        ));
        if let Some(g) = self.group_by {
            s.push_str(&format!(" GROUP BY time({})", monster_util::time::format_interval(g)));
            if self.fill != Fill::None {
                s.push_str(&format!(" fill({})", self.fill.name()));
            }
        }
        if let Some(n) = self.limit {
            s.push_str(&format!(" LIMIT {n}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> (EpochSecs, EpochSecs) {
        (
            EpochSecs::parse_rfc3339("2020-04-20T12:00:00Z").unwrap(),
            EpochSecs::parse_rfc3339("2020-04-21T12:00:00Z").unwrap(),
        )
    }

    #[test]
    fn builder_produces_paper_example() {
        // The exact query string from §III-D of the paper.
        let (start, end) = window();
        let q = Query::select("Power", "Reading", start, end)
            .aggregate(Aggregation::Max)
            .where_tag("NodeId", "10.101.1.1")
            .where_tag("Label", "NodePower")
            .group_by_time(300);
        assert_eq!(
            q.to_influxql(),
            "SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
             Label='NodePower' AND time >= '2020-04-20T12:00:00Z' AND \
             time < '2020-04-21T12:00:00Z' GROUP BY time(5m)"
        );
        assert!(q.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_queries() {
        let (start, end) = window();
        assert!(Query::select("m", "f", end, start).validate().is_err());
        assert!(Query::select("m", "f", start, start).validate().is_err());
        assert!(Query::select("", "f", start, end).validate().is_err());
        assert!(Query::select("m", "", start, end).validate().is_err());
        // GROUP BY without aggregation.
        let q = Query::select("m", "f", start, end).group_by_time(60);
        assert!(q.validate().is_err());
        // Non-positive interval.
        let q = Query::select("m", "f", start, end).aggregate(Aggregation::Mean).group_by_time(0);
        assert!(q.validate().is_err());
    }

    #[test]
    fn aggregation_names_round_trip() {
        for a in [
            Aggregation::Max,
            Aggregation::Min,
            Aggregation::Mean,
            Aggregation::Sum,
            Aggregation::Count,
            Aggregation::First,
            Aggregation::Last,
        ] {
            assert_eq!(Aggregation::parse(a.name()), Some(a));
            assert_eq!(Aggregation::parse(&a.name().to_uppercase()), Some(a));
        }
        assert_eq!(Aggregation::parse("median"), None);
    }
}
