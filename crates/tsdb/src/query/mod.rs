//! The query subsystem: AST, mini-InfluxQL parser, and executor.

mod ast;
pub mod exec;
pub mod meta;
mod parse;

pub use ast::{Aggregation, Fill, Query};
pub use exec::{ResultSet, SeriesResult};
pub use meta::MetaQuery;
pub use parse::parse_query;
