//! Per-series, per-field storage: sealed compressed blocks plus a raw tail.
//!
//! Mirrors the TSM/WAL split of a real TSDB: points append to an
//! uncompressed tail; when the tail reaches [`BLOCK_SIZE`] points it is
//! sealed into compressed timestamp+value blocks annotated with their time
//! range, so queries prune non-overlapping blocks without decoding them.
//! Each sealed block counts as one discrete storage access in the query
//! cost accounting.

use crate::encode::{bools, floats, ints, strings, timestamps};
use crate::field::FieldValue;
use monster_util::{Error, Result};

/// Points per sealed block.
pub const BLOCK_SIZE: usize = 1024;

/// Value payload of a sealed block.
#[derive(Debug)]
enum BlockValues {
    Float(Vec<u8>),
    Int(Vec<u8>),
    Bool(Vec<u8>),
    Str(Vec<u8>),
}

/// A sealed, compressed block.
#[derive(Debug)]
struct SealedBlock {
    count: usize,
    min_ts: i64,
    max_ts: i64,
    ts_bytes: Vec<u8>,
    values: BlockValues,
}

impl SealedBlock {
    fn encoded_bytes(&self) -> usize {
        let v = match &self.values {
            BlockValues::Float(b)
            | BlockValues::Int(b)
            | BlockValues::Bool(b)
            | BlockValues::Str(b) => b.len(),
        };
        self.ts_bytes.len() + v + 24 // block header (count + min/max)
    }
}

/// The raw tail, typed like the column.
#[derive(Debug)]
enum Tail {
    Float(Vec<f64>),
    Int(Vec<i64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
}

impl Tail {
    fn type_name(&self) -> &'static str {
        match self {
            Tail::Float(_) => "float",
            Tail::Int(_) => "integer",
            Tail::Bool(_) => "boolean",
            Tail::Str(_) => "string",
        }
    }
}

/// One field's data within one series within one shard.
#[derive(Debug)]
pub struct Column {
    sealed: Vec<SealedBlock>,
    tail_ts: Vec<i64>,
    tail: Tail,
    /// Incrementally-maintained [`encoded_bytes`](Self::encoded_bytes):
    /// updated on every append and seal so size accounting is O(1) instead
    /// of a walk over sealed blocks.
    encoded: usize,
}

impl Column {
    /// Create a column typed after its first value.
    pub fn new(first_value: &FieldValue) -> Self {
        let tail = match first_value {
            FieldValue::Float(_) => Tail::Float(Vec::new()),
            FieldValue::Int(_) => Tail::Int(Vec::new()),
            FieldValue::Bool(_) => Tail::Bool(Vec::new()),
            FieldValue::Str(_) => Tail::Str(Vec::new()),
        };
        Column { sealed: Vec::new(), tail_ts: Vec::new(), tail, encoded: 0 }
    }

    /// Append one (timestamp, value). Errors on a field-type conflict —
    /// the same hard error InfluxDB raises.
    pub fn append(&mut self, ts: i64, value: &FieldValue) -> Result<()> {
        let value_width = match (&mut self.tail, value) {
            (Tail::Float(v), FieldValue::Float(x)) => {
                v.push(*x);
                8
            }
            (Tail::Int(v), FieldValue::Int(x)) => {
                v.push(*x);
                8
            }
            (Tail::Bool(v), FieldValue::Bool(x)) => {
                v.push(*x);
                1
            }
            (Tail::Str(v), FieldValue::Str(x)) => {
                let w = x.len() + 8;
                v.push(x.clone());
                w
            }
            (tail, v) => {
                return Err(Error::invalid(format!(
                    "field type conflict: column is {}, point has {}",
                    tail.type_name(),
                    v.type_name()
                )))
            }
        };
        self.tail_ts.push(ts);
        self.encoded += 8 + value_width; // raw tail width: 8 B timestamp + value
        if self.tail_ts.len() >= BLOCK_SIZE {
            self.seal_tail();
        }
        Ok(())
    }

    /// Compress the tail into a sealed block.
    fn seal_tail(&mut self) {
        if self.tail_ts.is_empty() {
            return;
        }
        let tail_bytes = self.tail_bytes();
        let ts = std::mem::take(&mut self.tail_ts);
        let min_ts = *ts.iter().min().expect("non-empty");
        let max_ts = *ts.iter().max().expect("non-empty");
        let ts_bytes = timestamps::encode(&ts);
        let (values, count) = match &mut self.tail {
            Tail::Float(v) => {
                let vals = std::mem::take(v);
                (BlockValues::Float(floats::encode(&vals)), vals.len())
            }
            Tail::Int(v) => {
                let vals = std::mem::take(v);
                (BlockValues::Int(ints::encode(&vals)), vals.len())
            }
            Tail::Bool(v) => {
                let vals = std::mem::take(v);
                (BlockValues::Bool(bools::encode(&vals)), vals.len())
            }
            Tail::Str(v) => {
                let vals = std::mem::take(v);
                (BlockValues::Str(strings::encode(&vals)), vals.len())
            }
        };
        debug_assert_eq!(count, ts.len());
        let block = SealedBlock { count, min_ts, max_ts, ts_bytes, values };
        self.encoded = self.encoded - tail_bytes + block.encoded_bytes();
        self.sealed.push(block);
    }

    /// At-rest bytes of the raw tail at its in-memory width.
    fn tail_bytes(&self) -> usize {
        self.tail_ts.len() * 8
            + match &self.tail {
                Tail::Float(v) => v.len() * 8,
                Tail::Int(v) => v.len() * 8,
                Tail::Bool(v) => v.len(),
                Tail::Str(v) => v.iter().map(|s| s.len() + 8).sum(),
            }
    }

    /// Force-seal any raw tail into a compressed block (compaction):
    /// returns true if anything was sealed.
    pub fn seal_now(&mut self) -> bool {
        if self.tail_ts.is_empty() {
            return false;
        }
        self.seal_tail();
        true
    }

    /// Number of sealed blocks (compaction observability).
    pub fn sealed_blocks(&self) -> usize {
        self.sealed.len()
    }

    /// Raw (unsealed) points in the tail.
    pub fn tail_len(&self) -> usize {
        self.tail_ts.len()
    }

    /// Total points stored.
    pub fn point_count(&self) -> usize {
        self.sealed.iter().map(|b| b.count).sum::<usize>() + self.tail_ts.len()
    }

    /// Encoded (at-rest) size in bytes: sealed blocks plus the raw tail at
    /// its in-memory width. O(1) — maintained incrementally on append/seal
    /// so stats and size-delta accounting never walk the blocks.
    pub fn encoded_bytes(&self) -> usize {
        self.encoded
    }

    /// Walk-everything reference implementation of
    /// [`encoded_bytes`](Self::encoded_bytes), kept as a test cross-check.
    #[cfg(test)]
    fn recompute_encoded_bytes(&self) -> usize {
        self.sealed.iter().map(SealedBlock::encoded_bytes).sum::<usize>() + self.tail_bytes()
    }

    /// Scan all points overlapping `[start, end)`, invoking `f(ts, value)`.
    /// Returns scan accounting: (blocks touched, points decoded, bytes read).
    pub fn scan(
        &self,
        start: i64,
        end: i64,
        mut f: impl FnMut(i64, FieldValue),
    ) -> Result<ScanStats> {
        let mut stats = ScanStats::default();
        for block in &self.sealed {
            if block.max_ts < start || block.min_ts >= end {
                continue; // pruned without decoding
            }
            stats.blocks += 1;
            stats.bytes += block.encoded_bytes();
            stats.points += block.count;
            let ts = timestamps::decode(&block.ts_bytes, block.count)?;
            match &block.values {
                BlockValues::Float(b) => {
                    let vals = floats::decode(b, block.count)?;
                    for (t, v) in ts.iter().zip(vals) {
                        if *t >= start && *t < end {
                            f(*t, FieldValue::Float(v));
                        }
                    }
                }
                BlockValues::Int(b) => {
                    let vals = ints::decode(b, block.count)?;
                    for (t, v) in ts.iter().zip(vals) {
                        if *t >= start && *t < end {
                            f(*t, FieldValue::Int(v));
                        }
                    }
                }
                BlockValues::Bool(b) => {
                    let vals = bools::decode(b, block.count)?;
                    for (t, v) in ts.iter().zip(vals) {
                        if *t >= start && *t < end {
                            f(*t, FieldValue::Bool(v));
                        }
                    }
                }
                BlockValues::Str(b) => {
                    let vals = strings::decode(b, block.count)?;
                    for (t, v) in ts.iter().zip(vals) {
                        if *t >= start && *t < end {
                            f(*t, FieldValue::Str(v));
                        }
                    }
                }
            }
        }
        if !self.tail_ts.is_empty() {
            stats.blocks += 1;
            stats.points += self.tail_ts.len();
            stats.bytes += self.tail_ts.len() * 16;
            for (i, &t) in self.tail_ts.iter().enumerate() {
                if t < start || t >= end {
                    continue;
                }
                let v = match &self.tail {
                    Tail::Float(v) => FieldValue::Float(v[i]),
                    Tail::Int(v) => FieldValue::Int(v[i]),
                    Tail::Bool(v) => FieldValue::Bool(v[i]),
                    Tail::Str(v) => FieldValue::Str(v[i].clone()),
                };
                f(t, v);
            }
        }
        Ok(stats)
    }
}

/// Accounting from one column scan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    /// Discrete blocks touched (≈ storage accesses).
    pub blocks: usize,
    /// Points decoded.
    pub points: usize,
    /// Encoded bytes read.
    pub bytes: usize,
}

impl ScanStats {
    /// Accumulate another scan's counters.
    pub fn absorb(&mut self, other: ScanStats) {
        self.blocks += other.blocks;
        self.points += other.points;
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(col: &Column, start: i64, end: i64) -> Vec<(i64, FieldValue)> {
        let mut out = Vec::new();
        col.scan(start, end, |t, v| out.push((t, v))).unwrap();
        out
    }

    #[test]
    fn append_and_scan_small() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..10 {
            col.append(i * 60, &FieldValue::Float(i as f64)).unwrap();
        }
        assert_eq!(col.point_count(), 10);
        let pts = collect(&col, 120, 300);
        assert_eq!(pts.len(), 3); // 120, 180, 240
        assert_eq!(pts[0], (120, FieldValue::Float(2.0)));
    }

    #[test]
    fn sealing_happens_at_block_size() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..(BLOCK_SIZE as i64 * 2 + 5) {
            col.append(i, &FieldValue::Float(1.5)).unwrap();
        }
        assert_eq!(col.sealed.len(), 2);
        assert_eq!(col.tail_ts.len(), 5);
        assert_eq!(col.point_count(), BLOCK_SIZE * 2 + 5);
        // Scans see everything.
        assert_eq!(collect(&col, i64::MIN, i64::MAX).len(), BLOCK_SIZE * 2 + 5);
    }

    #[test]
    fn block_pruning_skips_disjoint_ranges() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..(BLOCK_SIZE as i64 * 4) {
            col.append(i * 60, &FieldValue::Float(0.0)).unwrap();
        }
        // Query only the first block's range.
        let mut out = 0;
        let stats = col.scan(0, 60 * (BLOCK_SIZE as i64 / 2), |_, _| out += 1).unwrap();
        assert_eq!(stats.blocks, 1, "pruning failed: {stats:?}");
        assert_eq!(out, BLOCK_SIZE / 2);
    }

    #[test]
    fn type_conflicts_error() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        col.append(0, &FieldValue::Float(1.0)).unwrap();
        let err = col.append(1, &FieldValue::Int(1)).unwrap_err();
        assert!(err.to_string().contains("type conflict"));
        // Column untouched by the failed append.
        assert_eq!(col.point_count(), 1);
    }

    #[test]
    fn all_types_round_trip_through_seal() {
        type Make = Box<dyn Fn(i64) -> FieldValue>;
        let cases: Vec<(FieldValue, Make)> = vec![
            (FieldValue::Float(0.0), Box::new(|i| FieldValue::Float(i as f64 * 0.5))),
            (FieldValue::Int(0), Box::new(|i| FieldValue::Int(i * 7))),
            (FieldValue::Bool(false), Box::new(|i| FieldValue::Bool(i % 3 == 0))),
            (FieldValue::Str(String::new()), Box::new(|i| FieldValue::Str(format!("s{}", i % 5)))),
        ];
        for (proto, make) in cases {
            let mut col = Column::new(&proto);
            let n = BLOCK_SIZE as i64 + 100;
            for i in 0..n {
                col.append(i, &make(i)).unwrap();
            }
            let pts = collect(&col, 0, n);
            assert_eq!(pts.len(), n as usize);
            for (i, (t, v)) in pts.iter().enumerate() {
                // Sealed block order is preserved.
                assert_eq!(*t, i as i64);
                assert_eq!(*v, make(i as i64));
            }
        }
    }

    #[test]
    fn incremental_encoded_bytes_matches_recompute() {
        type Make = Box<dyn Fn(i64) -> FieldValue>;
        let cases: Vec<(FieldValue, Make)> = vec![
            (FieldValue::Float(0.0), Box::new(|i| FieldValue::Float(i as f64 * 0.5))),
            (FieldValue::Int(0), Box::new(|i| FieldValue::Int(i * 7))),
            (FieldValue::Bool(false), Box::new(|i| FieldValue::Bool(i % 3 == 0))),
            (FieldValue::Str(String::new()), Box::new(|i| FieldValue::Str(format!("s{}", i % 5)))),
        ];
        for (proto, make) in cases {
            let mut col = Column::new(&proto);
            for i in 0..(BLOCK_SIZE as i64 + 321) {
                col.append(i, &make(i)).unwrap();
                if i % 257 == 0 {
                    assert_eq!(col.encoded_bytes(), col.recompute_encoded_bytes());
                }
            }
            assert_eq!(col.encoded_bytes(), col.recompute_encoded_bytes());
            col.seal_now();
            assert_eq!(col.encoded_bytes(), col.recompute_encoded_bytes());
        }
    }

    #[test]
    fn compression_beats_raw_for_regular_data() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..(BLOCK_SIZE as i64 * 4) {
            col.append(1_583_792_296 + i * 60, &FieldValue::Float(273.8)).unwrap();
        }
        let raw = col.point_count() * 16; // 8B ts + 8B value
        assert!(col.encoded_bytes() < raw / 8, "encoded {} raw {}", col.encoded_bytes(), raw);
    }

    #[test]
    fn out_of_order_appends_still_scanned() {
        let mut col = Column::new(&FieldValue::Int(0));
        for &t in &[100i64, 50, 150, 25] {
            col.append(t, &FieldValue::Int(t)).unwrap();
        }
        let pts = collect(&col, 0, 200);
        assert_eq!(pts.len(), 4);
        let pts = collect(&col, 40, 120);
        assert_eq!(pts.len(), 2); // 100 and 50
    }
}
