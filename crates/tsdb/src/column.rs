//! Per-series, per-field storage: sealed compressed blocks plus a raw tail.
//!
//! Mirrors the TSM/WAL split of a real TSDB: points append to an
//! uncompressed tail; when the tail reaches [`BLOCK_SIZE`] points it is
//! sealed into compressed timestamp+value blocks annotated with their time
//! range, so queries prune non-overlapping blocks without decoding them.
//! Each sealed block counts as one discrete storage access in the query
//! cost accounting.
//!
//! Every sealed block also carries a [`BlockSummary`] — a zone map captured
//! at seal time: time bounds, point count, and for numeric columns the
//! `min/max/sum/first/last` fold of the block's values. Windowed
//! aggregations use [`Column::scan_agg`] to answer *fully contained* blocks
//! from their summaries without decompressing them; only the partial blocks
//! at window edges are decoded. The summary fold uses exactly the same
//! arithmetic (and the same append order) as the per-point aggregation
//! accumulator, so summary-answered results are bit-identical to a full
//! decode.

use crate::encode::{bools, floats, ints, strings, timestamps};
use crate::field::FieldValue;
use monster_util::{Error, Result};

/// Points per sealed block.
pub const BLOCK_SIZE: usize = 1024;

/// The numeric fold of a sealed block's values, in append order — the same
/// fold the per-point aggregation accumulator performs, so merging it is
/// bit-identical to replaying the block's points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericSummary {
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Running sum in append order (float addition is not associative;
    /// preserving the fold order is what keeps pushdown exact).
    pub sum: f64,
    /// Timestamp of the earliest point (earliest appended wins ties).
    pub first_ts: i64,
    /// Value at `first_ts`.
    pub first: f64,
    /// Timestamp of the latest point (latest appended wins ties).
    pub last_ts: i64,
    /// Value at `last_ts`.
    pub last: f64,
}

impl NumericSummary {
    /// Fold `(ts, value)` pairs in append order with the accumulator's
    /// arithmetic. Mirrors `Acc::push` in `query::exec` exactly.
    pub fn fold(ts: &[i64], vals: impl Iterator<Item = f64>) -> NumericSummary {
        let mut s = NumericSummary {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            first_ts: i64::MAX,
            first: 0.0,
            last_ts: i64::MIN,
            last: 0.0,
        };
        for (&t, v) in ts.iter().zip(vals) {
            s.sum += v;
            s.min = s.min.min(v);
            s.max = s.max.max(v);
            if t < s.first_ts {
                s.first_ts = t;
                s.first = v;
            }
            if t >= s.last_ts {
                s.last_ts = t;
                s.last = v;
            }
        }
        s
    }
}

/// Zone map attached to every sealed block at seal time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockSummary {
    /// Points in the block.
    pub count: usize,
    /// Earliest timestamp.
    pub ts_min: i64,
    /// Latest timestamp.
    pub ts_max: i64,
    /// Value fold for numeric (float/int) columns; `None` for bool/string
    /// columns, whose blocks can still answer `count` from the header.
    pub numeric: Option<NumericSummary>,
}

impl BlockSummary {
    /// True when the block can be answered from this summary alone: fully
    /// inside the query range, fully inside one epoch-aligned aggregation
    /// window, and numerically summarized (or the aggregation only needs
    /// the point count).
    pub fn usable_for(&self, spec: &AggScan) -> bool {
        if self.ts_min < spec.start || self.ts_max >= spec.end {
            return false;
        }
        if self.numeric.is_none() && !spec.countable {
            return false;
        }
        match spec.window {
            Some(w) => self.ts_min.div_euclid(w) == self.ts_max.div_euclid(w),
            None => true,
        }
    }
}

/// Parameters for an aggregation-aware scan ([`Column::scan_agg`]).
#[derive(Debug, Clone, Copy)]
pub struct AggScan {
    /// Query range start (inclusive).
    pub start: i64,
    /// Query range end (exclusive).
    pub end: i64,
    /// `GROUP BY time` window in seconds; `None` = the whole range is one
    /// window. Windows are epoch-aligned, matching the aggregator.
    pub window: Option<i64>,
    /// The aggregation is `count`, which non-numeric blocks can answer
    /// from their summaries too (only the point count matters).
    pub countable: bool,
    /// Decode summary-eligible blocks anyway (the forced-full-decode
    /// baseline): the partial is recomputed from the decoded points and
    /// emitted, so the aggregation merge structure — and therefore every
    /// output bit — is identical to the pushdown path, but the full decode
    /// cost is charged.
    pub decode_all: bool,
}

/// One item produced by an aggregation-aware scan, in scan order.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanItem {
    /// A decoded point (edge blocks, raw tails).
    Point(i64, FieldValue),
    /// A whole block answered from its summary (or, in forced-decode mode,
    /// re-folded from decoded points — bit-identical by construction).
    Partial(BlockSummary),
}

/// A typed, contiguous run of values staged for bulk append — the unit
/// the vectorized write path moves around instead of one `FieldValue` at
/// a time.
#[derive(Debug, Clone, Copy)]
pub enum RunSlice<'a> {
    /// Float run.
    Float(&'a [f64]),
    /// Integer run.
    Int(&'a [i64]),
    /// Boolean run.
    Bool(&'a [bool]),
    /// String run.
    Str(&'a [String]),
}

impl RunSlice<'_> {
    /// Number of values in the run.
    pub fn len(&self) -> usize {
        match self {
            RunSlice::Float(s) => s.len(),
            RunSlice::Int(s) => s.len(),
            RunSlice::Bool(s) => s.len(),
            RunSlice::Str(s) => s.len(),
        }
    }

    /// True when the run holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn type_name(&self) -> &'static str {
        match self {
            RunSlice::Float(_) => "float",
            RunSlice::Int(_) => "integer",
            RunSlice::Bool(_) => "boolean",
            RunSlice::Str(_) => "string",
        }
    }
}

/// Reusable whole-block decode buffers. One scratch serves a whole column
/// scan: each sealed block decodes into these contiguous arrays (cleared,
/// never shrunk), so a warm scan performs zero allocations per block for
/// numeric columns.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    ts: Vec<i64>,
    floats: Vec<f64>,
    ints: Vec<i64>,
    bools: Vec<bool>,
    strs: Vec<String>,
}

impl DecodeScratch {
    /// Fresh, empty scratch.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }
}

/// Value payload of a sealed block.
#[derive(Debug)]
enum BlockValues {
    Float(Vec<u8>),
    Int(Vec<u8>),
    Bool(Vec<u8>),
    Str(Vec<u8>),
}

/// A sealed, compressed block.
#[derive(Debug)]
struct SealedBlock {
    summary: BlockSummary,
    ts_bytes: Vec<u8>,
    values: BlockValues,
}

impl SealedBlock {
    fn encoded_bytes(&self) -> usize {
        let v = match &self.values {
            BlockValues::Float(b)
            | BlockValues::Int(b)
            | BlockValues::Bool(b)
            | BlockValues::Str(b) => b.len(),
        };
        self.ts_bytes.len() + v + 80 // block header: count + time bounds + zone map
    }

    /// Decode the whole block into `scratch`'s contiguous arrays — the
    /// vectorized path every read goes through. Timestamps always land in
    /// `scratch.ts`; values land in the matching typed buffer.
    fn decode_arrays(&self, scratch: &mut DecodeScratch) -> Result<()> {
        let count = self.summary.count;
        timestamps::decode_into(&self.ts_bytes, count, &mut scratch.ts)?;
        match &self.values {
            BlockValues::Float(b) => floats::decode_into(b, count, &mut scratch.floats),
            BlockValues::Int(b) => ints::decode_into(b, count, &mut scratch.ints),
            BlockValues::Bool(b) => bools::decode_into(b, count, &mut scratch.bools),
            BlockValues::Str(b) => strings::decode_into(b, count, &mut scratch.strs),
        }
    }

    /// Decode and emit every in-range point. The point-at-a-time shape the
    /// scan API exposes is built on top of [`Self::decode_arrays`]: one
    /// whole-block decode into reused scratch, then a filter over the
    /// arrays.
    fn decode_each(
        &self,
        start: i64,
        end: i64,
        scratch: &mut DecodeScratch,
        f: &mut impl FnMut(i64, FieldValue),
    ) -> Result<()> {
        self.decode_arrays(scratch)?;
        match &self.values {
            BlockValues::Float(_) => {
                for (&t, &v) in scratch.ts.iter().zip(&scratch.floats) {
                    if t >= start && t < end {
                        f(t, FieldValue::Float(v));
                    }
                }
            }
            BlockValues::Int(_) => {
                for (&t, &v) in scratch.ts.iter().zip(&scratch.ints) {
                    if t >= start && t < end {
                        f(t, FieldValue::Int(v));
                    }
                }
            }
            BlockValues::Bool(_) => {
                for (&t, &v) in scratch.ts.iter().zip(&scratch.bools) {
                    if t >= start && t < end {
                        f(t, FieldValue::Bool(v));
                    }
                }
            }
            BlockValues::Str(_) => {
                // Move the strings out (no per-value clone) while keeping
                // the outer vector's capacity for the next block.
                let mut vals = std::mem::take(&mut scratch.strs);
                for (&t, v) in scratch.ts.iter().zip(vals.drain(..)) {
                    if t >= start && t < end {
                        f(t, FieldValue::Str(v));
                    }
                }
                scratch.strs = vals;
            }
        }
        Ok(())
    }

    /// Recompute the summary from decoded points (forced-decode mode). The
    /// fold is identical to the one performed at seal time, so the result
    /// equals the stored summary bit for bit.
    fn recompute_summary(&self, scratch: &mut DecodeScratch) -> Result<BlockSummary> {
        self.decode_arrays(scratch)?;
        let numeric = match &self.values {
            BlockValues::Float(_) => {
                Some(NumericSummary::fold(&scratch.ts, scratch.floats.iter().copied()))
            }
            BlockValues::Int(_) => {
                Some(NumericSummary::fold(&scratch.ts, scratch.ints.iter().map(|&v| v as f64)))
            }
            BlockValues::Bool(_) | BlockValues::Str(_) => None,
        };
        Ok(BlockSummary {
            count: self.summary.count,
            ts_min: self.summary.ts_min,
            ts_max: self.summary.ts_max,
            numeric,
        })
    }
}

/// The raw tail, typed like the column.
#[derive(Debug)]
enum Tail {
    Float(Vec<f64>),
    Int(Vec<i64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
}

impl Tail {
    fn type_name(&self) -> &'static str {
        match self {
            Tail::Float(_) => "float",
            Tail::Int(_) => "integer",
            Tail::Bool(_) => "boolean",
            Tail::Str(_) => "string",
        }
    }
}

/// One field's data within one series within one shard.
#[derive(Debug)]
pub struct Column {
    sealed: Vec<SealedBlock>,
    tail_ts: Vec<i64>,
    tail: Tail,
    /// Incrementally-maintained [`encoded_bytes`](Self::encoded_bytes):
    /// updated on every append and seal so size accounting is O(1) instead
    /// of a walk over sealed blocks.
    encoded: usize,
}

impl Column {
    /// Create a column typed after its first value.
    pub fn new(first_value: &FieldValue) -> Self {
        let tail = match first_value {
            FieldValue::Float(_) => Tail::Float(Vec::new()),
            FieldValue::Int(_) => Tail::Int(Vec::new()),
            FieldValue::Bool(_) => Tail::Bool(Vec::new()),
            FieldValue::Str(_) => Tail::Str(Vec::new()),
        };
        Column { sealed: Vec::new(), tail_ts: Vec::new(), tail, encoded: 0 }
    }

    /// Create a column typed after the run about to be appended.
    pub fn new_for(run: RunSlice<'_>) -> Self {
        let tail = match run {
            RunSlice::Float(_) => Tail::Float(Vec::new()),
            RunSlice::Int(_) => Tail::Int(Vec::new()),
            RunSlice::Bool(_) => Tail::Bool(Vec::new()),
            RunSlice::Str(_) => Tail::Str(Vec::new()),
        };
        Column { sealed: Vec::new(), tail_ts: Vec::new(), tail, encoded: 0 }
    }

    /// Bulk-append a typed run of `(timestamp, value)` pairs.
    ///
    /// The type check runs once for the whole run (all-or-nothing: a
    /// conflicting run leaves the column untouched), values land via
    /// `extend_from_slice`, and the tail is chunked to exactly
    /// [`BLOCK_SIZE`] before sealing — so the resulting block layout is
    /// bit-identical to appending the same points one at a time.
    pub fn append_run(&mut self, ts: &[i64], values: RunSlice<'_>) -> Result<()> {
        if ts.len() != values.len() {
            return Err(Error::invalid(format!(
                "run length mismatch: {} timestamps vs {} values",
                ts.len(),
                values.len()
            )));
        }
        match (&self.tail, &values) {
            (Tail::Float(_), RunSlice::Float(_))
            | (Tail::Int(_), RunSlice::Int(_))
            | (Tail::Bool(_), RunSlice::Bool(_))
            | (Tail::Str(_), RunSlice::Str(_)) => {}
            (tail, run) => {
                return Err(Error::invalid(format!(
                    "field type conflict: column is {}, run has {}",
                    tail.type_name(),
                    run.type_name()
                )))
            }
        }
        let mut off = 0;
        while off < ts.len() {
            let room = BLOCK_SIZE - self.tail_ts.len();
            let take = room.min(ts.len() - off);
            self.tail_ts.extend_from_slice(&ts[off..off + take]);
            match (&mut self.tail, values) {
                (Tail::Float(v), RunSlice::Float(s)) => {
                    v.extend_from_slice(&s[off..off + take]);
                    self.encoded += take * 16;
                }
                (Tail::Int(v), RunSlice::Int(s)) => {
                    v.extend_from_slice(&s[off..off + take]);
                    self.encoded += take * 16;
                }
                (Tail::Bool(v), RunSlice::Bool(s)) => {
                    v.extend_from_slice(&s[off..off + take]);
                    self.encoded += take * 9;
                }
                (Tail::Str(v), RunSlice::Str(s)) => {
                    for x in &s[off..off + take] {
                        self.encoded += 8 + x.len() + 8;
                        v.push(x.clone());
                    }
                }
                _ => unreachable!("run type checked above"),
            }
            off += take;
            if self.tail_ts.len() >= BLOCK_SIZE {
                self.seal_tail();
            }
        }
        Ok(())
    }

    /// Append one (timestamp, value). Errors on a field-type conflict —
    /// the same hard error InfluxDB raises.
    pub fn append(&mut self, ts: i64, value: &FieldValue) -> Result<()> {
        let value_width = match (&mut self.tail, value) {
            (Tail::Float(v), FieldValue::Float(x)) => {
                v.push(*x);
                8
            }
            (Tail::Int(v), FieldValue::Int(x)) => {
                v.push(*x);
                8
            }
            (Tail::Bool(v), FieldValue::Bool(x)) => {
                v.push(*x);
                1
            }
            (Tail::Str(v), FieldValue::Str(x)) => {
                let w = x.len() + 8;
                v.push(x.clone());
                w
            }
            (tail, v) => {
                return Err(Error::invalid(format!(
                    "field type conflict: column is {}, point has {}",
                    tail.type_name(),
                    v.type_name()
                )))
            }
        };
        self.tail_ts.push(ts);
        self.encoded += 8 + value_width; // raw tail width: 8 B timestamp + value
        if self.tail_ts.len() >= BLOCK_SIZE {
            self.seal_tail();
        }
        Ok(())
    }

    /// Compress the tail into a sealed block. Encodes from the tail
    /// buffers in place and `clear()`s them afterwards (never `take`s), so
    /// a column that keeps ingesting reuses its tail capacity across seals
    /// instead of re-growing it from zero for every block.
    fn seal_tail(&mut self) {
        if self.tail_ts.is_empty() {
            return;
        }
        let tail_bytes = self.tail_bytes();
        let ts = &self.tail_ts;
        let ts_min = *ts.iter().min().expect("non-empty");
        let ts_max = *ts.iter().max().expect("non-empty");
        let ts_bytes = timestamps::encode(ts);
        let (values, count, numeric) = match &self.tail {
            Tail::Float(v) => {
                let numeric = NumericSummary::fold(ts, v.iter().copied());
                (BlockValues::Float(floats::encode(v)), v.len(), Some(numeric))
            }
            Tail::Int(v) => {
                let numeric = NumericSummary::fold(ts, v.iter().map(|&x| x as f64));
                (BlockValues::Int(ints::encode(v)), v.len(), Some(numeric))
            }
            Tail::Bool(v) => (BlockValues::Bool(bools::encode(v)), v.len(), None),
            Tail::Str(v) => (BlockValues::Str(strings::encode(v)), v.len(), None),
        };
        debug_assert_eq!(count, ts.len());
        let summary = BlockSummary { count, ts_min, ts_max, numeric };
        let block = SealedBlock { summary, ts_bytes, values };
        self.encoded = self.encoded - tail_bytes + block.encoded_bytes();
        self.sealed.push(block);
        self.tail_ts.clear();
        match &mut self.tail {
            Tail::Float(v) => v.clear(),
            Tail::Int(v) => v.clear(),
            Tail::Bool(v) => v.clear(),
            Tail::Str(v) => v.clear(),
        }
    }

    /// At-rest bytes of the raw tail at its in-memory width.
    fn tail_bytes(&self) -> usize {
        self.tail_ts.len() * 8
            + match &self.tail {
                Tail::Float(v) => v.len() * 8,
                Tail::Int(v) => v.len() * 8,
                Tail::Bool(v) => v.len(),
                Tail::Str(v) => v.iter().map(|s| s.len() + 8).sum(),
            }
    }

    /// Force-seal any raw tail into a compressed block (compaction):
    /// returns true if anything was sealed.
    pub fn seal_now(&mut self) -> bool {
        if self.tail_ts.is_empty() {
            return false;
        }
        self.seal_tail();
        true
    }

    /// Number of sealed blocks (compaction observability).
    pub fn sealed_blocks(&self) -> usize {
        self.sealed.len()
    }

    /// Raw (unsealed) points in the tail.
    pub fn tail_len(&self) -> usize {
        self.tail_ts.len()
    }

    /// Total points stored.
    pub fn point_count(&self) -> usize {
        self.sealed.iter().map(|b| b.summary.count).sum::<usize>() + self.tail_ts.len()
    }

    /// Encoded (at-rest) size in bytes: sealed blocks plus the raw tail at
    /// its in-memory width. O(1) — maintained incrementally on append/seal
    /// so stats and size-delta accounting never walk the blocks.
    pub fn encoded_bytes(&self) -> usize {
        self.encoded
    }

    /// Walk-everything reference implementation of
    /// [`encoded_bytes`](Self::encoded_bytes), kept as a test cross-check.
    #[cfg(test)]
    fn recompute_encoded_bytes(&self) -> usize {
        self.sealed.iter().map(SealedBlock::encoded_bytes).sum::<usize>() + self.tail_bytes()
    }

    /// Scan all points overlapping `[start, end)`, invoking `f(ts, value)`.
    /// Returns scan accounting: (blocks touched, points decoded, bytes read).
    pub fn scan(&self, start: i64, end: i64, f: impl FnMut(i64, FieldValue)) -> Result<ScanStats> {
        self.scan_with(&mut DecodeScratch::new(), start, end, f)
    }

    /// [`Self::scan`] with caller-provided decode scratch, so a scan over
    /// many columns reuses one set of block buffers instead of allocating
    /// per column.
    pub fn scan_with(
        &self,
        scratch: &mut DecodeScratch,
        start: i64,
        end: i64,
        mut f: impl FnMut(i64, FieldValue),
    ) -> Result<ScanStats> {
        let mut stats = ScanStats::default();
        for block in &self.sealed {
            if block.summary.ts_max < start || block.summary.ts_min >= end {
                continue; // pruned without decoding
            }
            stats.blocks += 1;
            stats.bytes += block.encoded_bytes();
            stats.points += block.summary.count;
            block.decode_each(start, end, scratch, &mut f)?;
        }
        self.scan_tail(start, end, &mut stats, &mut f);
        Ok(stats)
    }

    /// Aggregation-aware scan of `[spec.start, spec.end)`.
    ///
    /// Emits a [`ScanItem::Partial`] — the stored zone map, no decode — for
    /// every sealed block fully contained in one aggregation window (and in
    /// the query range), and decoded [`ScanItem::Point`]s for edge blocks
    /// and the raw tail. In `spec.decode_all` mode eligible blocks are
    /// decoded and their partials re-folded, keeping the emitted item
    /// sequence identical while charging the full decode cost — the
    /// baseline the pushdown speedup is measured against.
    pub fn scan_agg(&self, spec: AggScan, emit: impl FnMut(ScanItem)) -> Result<ScanStats> {
        self.scan_agg_with(&mut DecodeScratch::new(), spec, emit)
    }

    /// [`Self::scan_agg`] with caller-provided decode scratch.
    pub fn scan_agg_with(
        &self,
        scratch: &mut DecodeScratch,
        spec: AggScan,
        mut emit: impl FnMut(ScanItem),
    ) -> Result<ScanStats> {
        let mut stats = ScanStats::default();
        for block in &self.sealed {
            let s = &block.summary;
            if s.ts_max < spec.start || s.ts_min >= spec.end {
                continue; // pruned without decoding
            }
            if s.usable_for(&spec) {
                if spec.decode_all {
                    stats.blocks += 1;
                    stats.bytes += block.encoded_bytes();
                    stats.points += s.count;
                    let recomputed = block.recompute_summary(scratch)?;
                    debug_assert_eq!(&recomputed, s, "stored zone map diverged from data");
                    emit(ScanItem::Partial(recomputed));
                } else {
                    stats.blocks_summarized += 1;
                    emit(ScanItem::Partial(*s));
                }
            } else {
                stats.blocks += 1;
                stats.bytes += block.encoded_bytes();
                stats.points += s.count;
                block.decode_each(spec.start, spec.end, scratch, &mut |t, v| {
                    emit(ScanItem::Point(t, v))
                })?;
            }
        }
        self.scan_tail(spec.start, spec.end, &mut stats, &mut |t, v| emit(ScanItem::Point(t, v)));
        Ok(stats)
    }

    /// Emit the raw tail's in-range points (shared by both scan flavours).
    fn scan_tail(
        &self,
        start: i64,
        end: i64,
        stats: &mut ScanStats,
        f: &mut impl FnMut(i64, FieldValue),
    ) {
        if self.tail_ts.is_empty() {
            return;
        }
        stats.blocks += 1;
        stats.points += self.tail_ts.len();
        stats.bytes += self.tail_ts.len() * 16;
        for (i, &t) in self.tail_ts.iter().enumerate() {
            if t < start || t >= end {
                continue;
            }
            let v = match &self.tail {
                Tail::Float(v) => FieldValue::Float(v[i]),
                Tail::Int(v) => FieldValue::Int(v[i]),
                Tail::Bool(v) => FieldValue::Bool(v[i]),
                Tail::Str(v) => FieldValue::Str(v[i].clone()),
            };
            f(t, v);
        }
    }
}

/// Accounting from one column scan.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    /// Discrete blocks decoded (≈ storage accesses; includes raw tails).
    pub blocks: usize,
    /// Points decoded.
    pub points: usize,
    /// Encoded bytes read.
    pub bytes: usize,
    /// Sealed blocks answered from their zone maps without decoding.
    pub blocks_summarized: usize,
}

impl ScanStats {
    /// Accumulate another scan's counters.
    pub fn absorb(&mut self, other: ScanStats) {
        self.blocks += other.blocks;
        self.points += other.points;
        self.bytes += other.bytes;
        self.blocks_summarized += other.blocks_summarized;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(col: &Column, start: i64, end: i64) -> Vec<(i64, FieldValue)> {
        let mut out = Vec::new();
        col.scan(start, end, |t, v| out.push((t, v))).unwrap();
        out
    }

    #[test]
    fn append_and_scan_small() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..10 {
            col.append(i * 60, &FieldValue::Float(i as f64)).unwrap();
        }
        assert_eq!(col.point_count(), 10);
        let pts = collect(&col, 120, 300);
        assert_eq!(pts.len(), 3); // 120, 180, 240
        assert_eq!(pts[0], (120, FieldValue::Float(2.0)));
    }

    #[test]
    fn sealing_happens_at_block_size() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..(BLOCK_SIZE as i64 * 2 + 5) {
            col.append(i, &FieldValue::Float(1.5)).unwrap();
        }
        assert_eq!(col.sealed.len(), 2);
        assert_eq!(col.tail_ts.len(), 5);
        assert_eq!(col.point_count(), BLOCK_SIZE * 2 + 5);
        // Scans see everything.
        assert_eq!(collect(&col, i64::MIN, i64::MAX).len(), BLOCK_SIZE * 2 + 5);
    }

    #[test]
    fn block_pruning_skips_disjoint_ranges() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..(BLOCK_SIZE as i64 * 4) {
            col.append(i * 60, &FieldValue::Float(0.0)).unwrap();
        }
        // Query only the first block's range.
        let mut out = 0;
        let stats = col.scan(0, 60 * (BLOCK_SIZE as i64 / 2), |_, _| out += 1).unwrap();
        assert_eq!(stats.blocks, 1, "pruning failed: {stats:?}");
        assert_eq!(out, BLOCK_SIZE / 2);
    }

    #[test]
    fn type_conflicts_error() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        col.append(0, &FieldValue::Float(1.0)).unwrap();
        let err = col.append(1, &FieldValue::Int(1)).unwrap_err();
        assert!(err.to_string().contains("type conflict"));
        // Column untouched by the failed append.
        assert_eq!(col.point_count(), 1);
    }

    #[test]
    fn all_types_round_trip_through_seal() {
        type Make = Box<dyn Fn(i64) -> FieldValue>;
        let cases: Vec<(FieldValue, Make)> = vec![
            (FieldValue::Float(0.0), Box::new(|i| FieldValue::Float(i as f64 * 0.5))),
            (FieldValue::Int(0), Box::new(|i| FieldValue::Int(i * 7))),
            (FieldValue::Bool(false), Box::new(|i| FieldValue::Bool(i % 3 == 0))),
            (FieldValue::Str(String::new()), Box::new(|i| FieldValue::Str(format!("s{}", i % 5)))),
        ];
        for (proto, make) in cases {
            let mut col = Column::new(&proto);
            let n = BLOCK_SIZE as i64 + 100;
            for i in 0..n {
                col.append(i, &make(i)).unwrap();
            }
            let pts = collect(&col, 0, n);
            assert_eq!(pts.len(), n as usize);
            for (i, (t, v)) in pts.iter().enumerate() {
                // Sealed block order is preserved.
                assert_eq!(*t, i as i64);
                assert_eq!(*v, make(i as i64));
            }
        }
    }

    #[test]
    fn incremental_encoded_bytes_matches_recompute() {
        type Make = Box<dyn Fn(i64) -> FieldValue>;
        let cases: Vec<(FieldValue, Make)> = vec![
            (FieldValue::Float(0.0), Box::new(|i| FieldValue::Float(i as f64 * 0.5))),
            (FieldValue::Int(0), Box::new(|i| FieldValue::Int(i * 7))),
            (FieldValue::Bool(false), Box::new(|i| FieldValue::Bool(i % 3 == 0))),
            (FieldValue::Str(String::new()), Box::new(|i| FieldValue::Str(format!("s{}", i % 5)))),
        ];
        for (proto, make) in cases {
            let mut col = Column::new(&proto);
            for i in 0..(BLOCK_SIZE as i64 + 321) {
                col.append(i, &make(i)).unwrap();
                if i % 257 == 0 {
                    assert_eq!(col.encoded_bytes(), col.recompute_encoded_bytes());
                }
            }
            assert_eq!(col.encoded_bytes(), col.recompute_encoded_bytes());
            col.seal_now();
            assert_eq!(col.encoded_bytes(), col.recompute_encoded_bytes());
        }
    }

    #[test]
    fn compression_beats_raw_for_regular_data() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..(BLOCK_SIZE as i64 * 4) {
            col.append(1_583_792_296 + i * 60, &FieldValue::Float(273.8)).unwrap();
        }
        let raw = col.point_count() * 16; // 8B ts + 8B value
        assert!(col.encoded_bytes() < raw / 8, "encoded {} raw {}", col.encoded_bytes(), raw);
    }

    fn agg_spec(start: i64, end: i64, window: Option<i64>) -> AggScan {
        AggScan { start, end, window, countable: false, decode_all: false }
    }

    #[test]
    fn sealed_blocks_carry_zone_maps() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..(BLOCK_SIZE as i64) {
            col.append(i, &FieldValue::Float(i as f64 * 0.5)).unwrap();
        }
        let s = col.sealed[0].summary;
        assert_eq!(s.count, BLOCK_SIZE);
        assert_eq!((s.ts_min, s.ts_max), (0, BLOCK_SIZE as i64 - 1));
        let n = s.numeric.unwrap();
        assert_eq!(n.min, 0.0);
        assert_eq!(n.max, (BLOCK_SIZE as f64 - 1.0) * 0.5);
        assert_eq!((n.first_ts, n.first), (0, 0.0));
        assert_eq!((n.last_ts, n.last), (BLOCK_SIZE as i64 - 1, n.max));
        // The stored fold matches a fresh recompute bit for bit.
        assert_eq!(col.sealed[0].recompute_summary(&mut DecodeScratch::new()).unwrap(), s);
    }

    #[test]
    fn contained_blocks_summarize_edges_decode() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        // Two sealed blocks at 1 s cadence plus a tail.
        for i in 0..(BLOCK_SIZE as i64 * 2 + 10) {
            col.append(i, &FieldValue::Float(1.0)).unwrap();
        }
        // Window spans both blocks entirely: both answered from summaries,
        // only the tail is decoded.
        let mut items = Vec::new();
        let spec = agg_spec(0, 3 * BLOCK_SIZE as i64, Some(4 * BLOCK_SIZE as i64));
        let stats = col.scan_agg(spec, |it| items.push(it)).unwrap();
        assert_eq!(stats.blocks_summarized, 2);
        assert_eq!(stats.blocks, 1, "only the tail decodes: {stats:?}");
        let partials = items.iter().filter(|i| matches!(i, ScanItem::Partial(_))).count();
        assert_eq!(partials, 2);
        assert_eq!(items.len(), 2 + 10);
        // A window cutting through block 0 forces it to decode per point.
        let mut items = Vec::new();
        let spec = agg_spec(0, 3 * BLOCK_SIZE as i64, Some(BLOCK_SIZE as i64 / 2));
        let stats = col.scan_agg(spec, |it| items.push(it)).unwrap();
        assert_eq!(stats.blocks_summarized, 0);
        assert_eq!(stats.blocks, 3);
        assert!(items.iter().all(|i| matches!(i, ScanItem::Point(..))));
    }

    #[test]
    fn partial_range_coverage_disqualifies_summaries() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..(BLOCK_SIZE as i64) {
            col.append(i, &FieldValue::Float(1.0)).unwrap();
        }
        col.seal_now();
        // Query range cuts the block: must decode.
        let stats = col.scan_agg(agg_spec(10, 10_000, None), |_| {}).unwrap();
        assert_eq!(stats.blocks_summarized, 0);
        assert_eq!(stats.blocks, 1);
        // Whole-range window and full coverage: summary answers it.
        let stats = col.scan_agg(agg_spec(0, 10_000, None), |_| {}).unwrap();
        assert_eq!(stats.blocks_summarized, 1);
        assert_eq!(stats.blocks, 0);
    }

    #[test]
    fn forced_decode_emits_identical_items() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        for i in 0..(BLOCK_SIZE as i64 * 2) {
            col.append(i, &FieldValue::Float((i % 97) as f64 * 0.3)).unwrap();
        }
        let spec = agg_spec(0, 4 * BLOCK_SIZE as i64, Some(4 * BLOCK_SIZE as i64));
        let mut push = Vec::new();
        let s1 = col.scan_agg(spec, |it| push.push(it)).unwrap();
        let mut full = Vec::new();
        let s2 = col.scan_agg(AggScan { decode_all: true, ..spec }, |it| full.push(it)).unwrap();
        assert_eq!(push, full, "pushdown and forced-decode item streams must match");
        assert_eq!(s1.blocks_summarized, 2);
        assert_eq!(s2.blocks_summarized, 0);
        assert_eq!(s2.blocks, 2);
        assert_eq!(s1.points, 0);
        assert_eq!(s2.points, BLOCK_SIZE * 2);
    }

    #[test]
    fn non_numeric_blocks_summarize_only_for_count() {
        let mut col = Column::new(&FieldValue::Str(String::new()));
        for i in 0..(BLOCK_SIZE as i64) {
            col.append(i, &FieldValue::Str(format!("s{}", i % 3))).unwrap();
        }
        let base = agg_spec(0, 10_000, None);
        let stats = col.scan_agg(base, |_| {}).unwrap();
        assert_eq!(stats.blocks_summarized, 0, "non-count agg must decode strings");
        let mut items = Vec::new();
        let stats = col.scan_agg(AggScan { countable: true, ..base }, |it| items.push(it)).unwrap();
        assert_eq!(stats.blocks_summarized, 1);
        match &items[0] {
            ScanItem::Partial(s) => {
                assert_eq!(s.count, BLOCK_SIZE);
                assert!(s.numeric.is_none());
            }
            other => panic!("expected partial, got {other:?}"),
        }
    }

    #[test]
    fn append_run_matches_point_appends_bit_for_bit() {
        // Runs of awkward sizes straddling several block boundaries.
        let n = BLOCK_SIZE * 3 + 17;
        let ts: Vec<i64> = (0..n as i64).collect();
        let floats_v: Vec<f64> = (0..n).map(|i| (i % 89) as f64 * 0.7).collect();
        let ints_v: Vec<i64> = (0..n).map(|i| (i as i64) * 13 - 5).collect();
        let bools_v: Vec<bool> = (0..n).map(|i| i % 5 == 0).collect();
        let strs_v: Vec<String> = (0..n).map(|i| format!("s{}", i % 7)).collect();
        let runs: Vec<RunSlice<'_>> = vec![
            RunSlice::Float(&floats_v),
            RunSlice::Int(&ints_v),
            RunSlice::Bool(&bools_v),
            RunSlice::Str(&strs_v),
        ];
        for run in runs {
            // Point-at-a-time reference column.
            let make = |i: usize| match run {
                RunSlice::Float(s) => FieldValue::Float(s[i]),
                RunSlice::Int(s) => FieldValue::Int(s[i]),
                RunSlice::Bool(s) => FieldValue::Bool(s[i]),
                RunSlice::Str(s) => FieldValue::Str(s[i].clone()),
            };
            let mut reference = Column::new_for(run);
            for (i, &t) in ts.iter().enumerate() {
                reference.append(t, &make(i)).unwrap();
            }
            // Bulk column fed the same points in uneven chunks.
            let mut bulk = Column::new_for(run);
            let mut off = 0;
            for chunk in [1usize, 3, BLOCK_SIZE - 4, BLOCK_SIZE + 9, 700, usize::MAX] {
                let take = chunk.min(n - off);
                let sub = match run {
                    RunSlice::Float(s) => RunSlice::Float(&s[off..off + take]),
                    RunSlice::Int(s) => RunSlice::Int(&s[off..off + take]),
                    RunSlice::Bool(s) => RunSlice::Bool(&s[off..off + take]),
                    RunSlice::Str(s) => RunSlice::Str(&s[off..off + take]),
                };
                bulk.append_run(&ts[off..off + take], sub).unwrap();
                off += take;
            }
            assert_eq!(off, n);
            assert_eq!(bulk.point_count(), reference.point_count());
            assert_eq!(bulk.sealed.len(), reference.sealed.len());
            for (a, b) in bulk.sealed.iter().zip(&reference.sealed) {
                assert_eq!(a.summary, b.summary);
                assert_eq!(a.ts_bytes, b.ts_bytes, "sealed timestamp bytes diverged");
                let (av, bv) = match (&a.values, &b.values) {
                    (BlockValues::Float(x), BlockValues::Float(y))
                    | (BlockValues::Int(x), BlockValues::Int(y))
                    | (BlockValues::Bool(x), BlockValues::Bool(y))
                    | (BlockValues::Str(x), BlockValues::Str(y)) => (x, y),
                    _ => panic!("block type diverged"),
                };
                assert_eq!(av, bv, "sealed value bytes diverged");
            }
            assert_eq!(bulk.encoded_bytes(), reference.encoded_bytes());
            assert_eq!(bulk.encoded_bytes(), bulk.recompute_encoded_bytes());
            assert_eq!(collect(&bulk, i64::MIN, i64::MAX), collect(&reference, i64::MIN, i64::MAX));
        }
    }

    #[test]
    fn append_run_type_conflict_leaves_column_untouched() {
        let mut col = Column::new(&FieldValue::Float(0.0));
        col.append(0, &FieldValue::Float(1.0)).unwrap();
        let err = col.append_run(&[1, 2], RunSlice::Int(&[1, 2])).unwrap_err();
        assert!(err.to_string().contains("type conflict"));
        assert_eq!(col.point_count(), 1);
        assert_eq!(col.encoded_bytes(), col.recompute_encoded_bytes());
        // Length mismatch is rejected up front too.
        assert!(col.append_run(&[1], RunSlice::Float(&[1.0, 2.0])).is_err());
        assert_eq!(col.point_count(), 1);
    }

    #[test]
    fn scan_with_reuses_scratch_across_columns() {
        let mut scratch = DecodeScratch::new();
        for proto in [FieldValue::Float(0.0), FieldValue::Int(0), FieldValue::Str(String::new())] {
            let mut col = Column::new(&proto);
            for i in 0..(BLOCK_SIZE as i64 + 3) {
                let v = match proto {
                    FieldValue::Float(_) => FieldValue::Float(i as f64),
                    FieldValue::Int(_) => FieldValue::Int(i),
                    _ => FieldValue::Str(format!("v{}", i % 2)),
                };
                col.append(i, &v).unwrap();
            }
            let mut seen = 0usize;
            col.scan_with(&mut scratch, i64::MIN, i64::MAX, |_, _| seen += 1).unwrap();
            assert_eq!(seen, BLOCK_SIZE + 3);
        }
    }

    #[test]
    fn out_of_order_appends_still_scanned() {
        let mut col = Column::new(&FieldValue::Int(0));
        for &t in &[100i64, 50, 150, 25] {
            col.append(t, &FieldValue::Int(t)).unwrap();
        }
        let pts = collect(&col, 0, 200);
        assert_eq!(pts.len(), 4);
        let pts = collect(&col, 40, 120);
        assert_eq!(pts.len(), 2); // 100 and 50
    }
}
