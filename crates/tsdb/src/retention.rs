//! Retention enforcement and continuous downsampling.
//!
//! §III-C: "InfluxDB contains a variety of features that can be used to
//! calculate aggregation, roll-ups, downsampling, etc." — production
//! MonSTer relies on them to keep 13+ months of data queryable. This
//! module provides the two features the deployment uses:
//!
//! * [`RetentionPolicy`] — drop shards older than a horizon;
//! * [`ContinuousQuery`] — periodically roll a raw measurement up into a
//!   downsampled one (e.g. `Power` → `Power_1h`), so long-horizon queries
//!   read orders of magnitude fewer points.
//!
//! Between "hot" and "dropped" sits a third tier: [`TierConfig`] describes
//! when sealed shards migrate to a slower, cheaper device (§IV's 13-month
//! deployment keeps recent data on SSD and archives the long tail). The
//! actual migration lives in [`crate::db::Db::tier_cold_shards`]; this
//! module only defines the policy and its report.

use crate::db::Db;
use crate::point::DataPoint;
use crate::query::{Aggregation, Query};
use monster_sim::DiskModel;
use monster_util::{EpochSecs, Error, Result};

/// Drop data older than `keep_secs` relative to `now`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// How much history to keep, in seconds.
    pub keep_secs: i64,
}

impl RetentionPolicy {
    /// A policy keeping `days` days.
    pub fn days(days: i64) -> Self {
        assert!(days > 0);
        RetentionPolicy { keep_secs: days * 86_400 }
    }

    /// Enforce the policy: drop whole shards that end before the horizon.
    /// Returns the number of shards dropped.
    pub fn enforce(&self, db: &Db, now: EpochSecs) -> usize {
        db.drop_shards_before(now - self.keep_secs)
    }
}

/// Tiered-retention policy: shards older than `hot_secs` are compacted
/// into immutable segment files and re-priced with `cold_disk`.
///
/// Tiering is a *pricing and durability* migration, not an eviction: the
/// data stays queryable in place, but scans over tiered shards are costed
/// against `cold_disk` (the archive device) instead of the hot
/// [`crate::db::DbConfig::disk`] model, and the shard's contents become an
/// immutable on-disk segment so the WAL bytes covering them can be
/// reclaimed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierConfig {
    /// Age threshold in seconds: shards whose time range ends before
    /// `now - hot_secs` (rounded down to a shard boundary) are cold.
    pub hot_secs: i64,
    /// Device model pricing scans over cold shards.
    pub cold_disk: DiskModel,
}

impl TierConfig {
    /// Keep `days` days hot; archive the rest to the paper's HDD model.
    pub fn days(days: i64) -> Self {
        assert!(days > 0);
        TierConfig { hot_secs: days * 86_400, cold_disk: DiskModel::HDD }
    }
}

/// What one [`crate::db::Db::tier_cold_shards`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierReport {
    /// Shards newly migrated to the cold tier this pass.
    pub shards_tiered: usize,
    /// Points contained in those shards.
    pub points_tiered: usize,
    /// Total bytes of segment files written this pass.
    pub segment_bytes_written: u64,
    /// WAL segments reclaimed after the migration.
    pub wal_segments_reclaimed: usize,
}

/// A continuous query: every `every_secs` of data time, aggregate
/// `source.field` into `target` with windows of `window_secs`.
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousQuery {
    /// Source measurement.
    pub source: String,
    /// Field to aggregate.
    pub field: String,
    /// Destination measurement (e.g. `"Power_1h"`).
    pub target: String,
    /// Aggregation function.
    pub agg: Aggregation,
    /// Downsampling window in seconds.
    pub window_secs: i64,
    /// High-water mark: everything before this has been rolled up.
    watermark: EpochSecs,
}

impl ContinuousQuery {
    /// Define a continuous query starting from `start`.
    pub fn new(
        source: impl Into<String>,
        field: impl Into<String>,
        target: impl Into<String>,
        agg: Aggregation,
        window_secs: i64,
        start: EpochSecs,
    ) -> Result<Self> {
        if window_secs <= 0 {
            return Err(Error::invalid("continuous query window must be positive"));
        }
        let source = source.into();
        let target = target.into();
        if source == target {
            return Err(Error::invalid("continuous query cannot write to its source"));
        }
        Ok(ContinuousQuery {
            source,
            field: field.into(),
            target,
            agg,
            window_secs,
            watermark: EpochSecs::new(start.as_secs().div_euclid(window_secs) * window_secs),
        })
    }

    /// Everything before this point has been rolled up.
    pub fn watermark(&self) -> EpochSecs {
        self.watermark
    }

    /// Roll up all *complete* windows between the watermark and `now`.
    /// Returns the number of downsampled points written.
    pub fn run(&mut self, db: &Db, now: EpochSecs) -> Result<usize> {
        let horizon = EpochSecs::new(now.as_secs().div_euclid(self.window_secs) * self.window_secs);
        if horizon <= self.watermark {
            return Ok(0);
        }
        let q = Query::select(&self.source, &self.field, self.watermark, horizon)
            .aggregate(self.agg)
            .group_by_time(self.window_secs);
        let (rs, _) = db.query(&q)?;
        let mut batch: Vec<DataPoint> = Vec::new();
        for series in &rs.series {
            for (t, v) in &series.points {
                let mut p = DataPoint::new(&self.target, *t);
                // Preserve the source tags so downsampled data stays
                // addressable per node/label.
                for (k, val) in &series.key.tags {
                    p = p.tag(k, val);
                }
                batch.push(p.field("Reading", v.clone()));
            }
        }
        let written = batch.len();
        db.write_batch(&batch)?;
        self.watermark = horizon;
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DbConfig, FieldValue};

    fn seeded(days: i64) -> Db {
        let db = Db::new(DbConfig { shard_duration: 86_400, ..DbConfig::default() });
        let mut batch = Vec::new();
        for i in 0..(days * 1440) {
            batch.push(
                DataPoint::new("Power", EpochSecs::new(i * 60))
                    .tag("NodeId", "10.101.1.1")
                    .tag("Label", "NodePower")
                    .field_f64("Reading", 200.0 + (i % 100) as f64),
            );
        }
        db.write_batch(&batch).unwrap();
        db
    }

    #[test]
    fn retention_drops_old_shards() {
        let db = seeded(5);
        assert_eq!(db.stats().shards, 5);
        let dropped = RetentionPolicy::days(2).enforce(&db, EpochSecs::new(5 * 86_400));
        assert_eq!(dropped, 3);
        assert_eq!(db.stats().shards, 2);
        // Old data gone, recent data intact.
        let q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(86_400))
            .aggregate(Aggregation::Count);
        let (rs, _) = db.query(&q).unwrap();
        assert_eq!(rs.point_count(), 0);
        let q = Query::select(
            "Power",
            "Reading",
            EpochSecs::new(4 * 86_400),
            EpochSecs::new(5 * 86_400),
        )
        .aggregate(Aggregation::Count);
        let (rs, _) = db.query(&q).unwrap();
        assert_eq!(rs.series[0].points[0].1, FieldValue::Float(1440.0));
    }

    #[test]
    fn retention_is_idempotent() {
        let db = seeded(3);
        let policy = RetentionPolicy::days(1);
        let now = EpochSecs::new(3 * 86_400);
        assert_eq!(policy.enforce(&db, now), 2);
        assert_eq!(policy.enforce(&db, now), 0);
    }

    #[test]
    fn tiering_reprices_cold_shards_without_changing_answers() {
        let db = Db::new(DbConfig {
            shard_duration: 86_400,
            disk: DiskModel::SSD,
            tiering: Some(TierConfig { hot_secs: 2 * 86_400, cold_disk: DiskModel::HDD }),
            ..DbConfig::default()
        });
        let mut batch = Vec::new();
        for i in 0..(5 * 1440) {
            batch.push(
                DataPoint::new("Power", EpochSecs::new(i * 60))
                    .tag("NodeId", "10.101.1.1")
                    .field_f64("Reading", 200.0 + (i % 100) as f64),
            );
        }
        db.write_batch(&batch).unwrap();
        let whole =
            Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(5 * 86_400))
                .aggregate(Aggregation::Mean)
                .group_by_time(3600);
        let (before, _) = db.query(&whole).unwrap();

        // Day 5, keep 2 days hot: days 1-3 go cold. No WAL → re-price
        // only, no segment files.
        let report = db.tier_cold_shards(EpochSecs::new(5 * 86_400)).unwrap();
        assert_eq!(report.shards_tiered, 3);
        assert_eq!(report.points_tiered, 3 * 1440);
        assert_eq!(report.segment_bytes_written, 0);
        assert_eq!(report.wal_segments_reclaimed, 0);
        // Idempotent.
        assert_eq!(db.tier_cold_shards(EpochSecs::new(5 * 86_400)).unwrap().shards_tiered, 0);

        // Answers are unchanged; only the price moved.
        let (after, cost) = db.query(&whole).unwrap();
        assert_eq!(before, after);
        assert!(cost.bytes_cold > 0 && cost.bytes_cold < cost.bytes, "{cost:?}");
        assert!(cost.blocks_cold > 0 && cost.blocks_cold < cost.blocks, "{cost:?}");
        // A fully-hot query reads no cold bytes; a fully-cold one reads
        // nothing but.
        let hot_q = Query::select(
            "Power",
            "Reading",
            EpochSecs::new(4 * 86_400),
            EpochSecs::new(5 * 86_400),
        );
        let (_, hot_cost) = db.query(&hot_q).unwrap();
        assert_eq!((hot_cost.bytes_cold, hot_cost.blocks_cold), (0, 0));
        let cold_q = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(86_400));
        let (_, cold_cost) = db.query(&cold_q).unwrap();
        assert_eq!(cold_cost.bytes_cold, cold_cost.bytes);
        assert_eq!(cold_cost.blocks_cold, cold_cost.blocks);
        // HDD-priced history costs more simulated time than the same work
        // would on the hot SSD tier.
        let rehot = crate::QueryCost { bytes_cold: 0, blocks_cold: 0, ..cold_cost };
        assert!(db.simulate_elapsed(&cold_cost) > db.simulate_elapsed(&rehot));
    }

    #[test]
    fn continuous_query_rolls_up_complete_windows() {
        let db = seeded(1);
        let mut cq = ContinuousQuery::new(
            "Power",
            "Reading",
            "Power_1h",
            Aggregation::Max,
            3600,
            EpochSecs::new(0),
        )
        .unwrap();
        // 6.5 hours in: only 6 complete hourly windows roll up.
        let written = cq.run(&db, EpochSecs::new(6 * 3600 + 1800)).unwrap();
        assert_eq!(written, 6);
        assert_eq!(cq.watermark(), EpochSecs::new(6 * 3600));
        // Rolled-up values queryable under the target measurement, with
        // tags preserved.
        let q = Query::select("Power_1h", "Reading", EpochSecs::new(0), EpochSecs::new(86_400))
            .where_tag("NodeId", "10.101.1.1");
        let (rs, _) = db.query(&q).unwrap();
        assert_eq!(rs.point_count(), 6);
        // Hourly max of the sawtooth 200..299 is 299 once the ramp completes.
        let max_val =
            rs.series[0].points.iter().filter_map(|(_, v)| v.as_f64()).fold(f64::MIN, f64::max);
        assert_eq!(max_val, 299.0);
    }

    #[test]
    fn continuous_query_is_incremental() {
        let db = seeded(1);
        let mut cq = ContinuousQuery::new(
            "Power",
            "Reading",
            "Power_1h",
            Aggregation::Mean,
            3600,
            EpochSecs::new(0),
        )
        .unwrap();
        assert_eq!(cq.run(&db, EpochSecs::new(2 * 3600)).unwrap(), 2);
        // No new complete window: no work.
        assert_eq!(cq.run(&db, EpochSecs::new(2 * 3600 + 600)).unwrap(), 0);
        assert_eq!(cq.run(&db, EpochSecs::new(4 * 3600)).unwrap(), 2);
        let q = Query::select("Power_1h", "Reading", EpochSecs::new(0), EpochSecs::new(86_400));
        let (rs, _) = db.query(&q).unwrap();
        assert_eq!(rs.point_count(), 4);
    }

    #[test]
    fn downsampled_queries_cost_less() {
        let db = seeded(2);
        let mut cq = ContinuousQuery::new(
            "Power",
            "Reading",
            "Power_1h",
            Aggregation::Max,
            3600,
            EpochSecs::new(0),
        )
        .unwrap();
        cq.run(&db, EpochSecs::new(2 * 86_400)).unwrap();
        let raw = Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(2 * 86_400))
            .aggregate(Aggregation::Max)
            .group_by_time(3600);
        let rolled =
            Query::select("Power_1h", "Reading", EpochSecs::new(0), EpochSecs::new(2 * 86_400))
                .aggregate(Aggregation::Max)
                .group_by_time(3600);
        let (rs_raw, cost_raw) = db.query(&raw).unwrap();
        let (rs_rolled, cost_rolled) = db.query(&rolled).unwrap();
        // Same answers...
        assert_eq!(rs_raw.series[0].points, rs_rolled.series[0].points);
        // ...from far fewer points.
        assert!(cost_rolled.points * 10 < cost_raw.points);
    }

    #[test]
    fn invalid_definitions_rejected() {
        assert!(
            ContinuousQuery::new("A", "f", "A", Aggregation::Max, 60, EpochSecs::new(0)).is_err()
        );
        assert!(
            ContinuousQuery::new("A", "f", "B", Aggregation::Max, 0, EpochSecs::new(0)).is_err()
        );
    }
}
