//! InfluxDB line protocol: `measurement,tag=v,... field=v,... timestamp`.
//!
//! Timestamps are epoch **seconds** (MonSTer's native resolution). Escaping
//! follows the InfluxDB rules: commas/spaces/equals are backslash-escaped
//! in measurement names, tag keys/values and field keys; string field
//! values are double-quoted with `\"` escapes.

use crate::field::FieldValue;
use crate::point::DataPoint;
use monster_util::{EpochSecs, Error, Result};

/// Append `s` to `out` with line-protocol identifier escaping (commas,
/// spaces and equals signs are backslash-escaped). Shared with the WAL
/// writer, which renders staged runs without materializing `DataPoint`s.
pub(crate) fn push_escaped(s: &str, out: &mut String) {
    for c in s.chars() {
        if matches!(c, ',' | ' ' | '=') {
            out.push('\\');
        }
        out.push(c);
    }
}

/// Append a double-quoted string field value with `\"` / `\\` escapes.
pub(crate) fn push_string_field(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
}

/// Encode one point as a line (no trailing newline).
pub fn encode(p: &DataPoint) -> String {
    let mut out = String::with_capacity(64);
    encode_into(p, &mut out);
    out
}

/// Encode one point into an existing buffer (no trailing newline, nothing
/// cleared first). The WAL's append path reuses one buffer across batches,
/// so steady-state logging stays allocation-free.
pub fn encode_into(p: &DataPoint, out: &mut String) {
    use std::fmt::Write;
    push_escaped(&p.measurement, out);
    for (k, v) in &p.tags {
        out.push(',');
        push_escaped(k, out);
        out.push('=');
        push_escaped(v, out);
    }
    out.push(' ');
    for (i, (k, v)) in p.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_escaped(k, out);
        out.push('=');
        match v {
            FieldValue::Str(s) => push_string_field(s, out),
            // Integer/float/bool `Display` renders digits through stack
            // buffers — no heap allocation.
            other => {
                let _ = write!(out, "{other}");
            }
        }
    }
    out.push(' ');
    let _ = write!(out, "{}", p.time.as_secs());
}

/// Encode a batch, newline-separated.
pub fn encode_batch(points: &[DataPoint]) -> String {
    let mut out = String::with_capacity(points.len() * 64);
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&encode(p));
    }
    out
}

/// Parse one line.
pub fn parse(line: &str) -> Result<DataPoint> {
    let mut scanner = Scanner { chars: line.chars().collect(), pos: 0 };
    scanner.point()
}

/// Parse a newline-separated batch, skipping blank lines.
pub fn parse_batch(text: &str) -> Result<Vec<DataPoint>> {
    text.lines().map(str::trim).filter(|l| !l.is_empty()).map(parse).collect()
}

struct Scanner {
    chars: Vec<char>,
    pos: usize,
}

impl Scanner {
    fn err(&self, msg: &str) -> Error {
        Error::parse(format!("line protocol: {msg} at char {}", self.pos))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    /// Read an identifier, stopping at any unescaped char in `stops`.
    fn ident(&mut self, stops: &[char]) -> Result<String> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None => break,
                Some('\\') => {
                    self.pos += 1;
                    let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    out.push(c);
                    self.pos += 1;
                }
                Some(c) if stops.contains(&c) => break,
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
        if out.is_empty() {
            return Err(self.err("empty identifier"));
        }
        Ok(out)
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {c:?}")))
        }
    }

    fn point(&mut self) -> Result<DataPoint> {
        let measurement = self.ident(&[',', ' '])?;
        let mut tags = Vec::new();
        while self.peek() == Some(',') {
            self.pos += 1;
            let k = self.ident(&['='])?;
            self.expect('=')?;
            let v = self.ident(&[',', ' '])?;
            tags.push((k, v));
        }
        self.expect(' ')?;
        let mut fields = Vec::new();
        loop {
            let k = self.ident(&['='])?;
            self.expect('=')?;
            let v = self.field_value()?;
            fields.push((k, v));
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some(' ') => break,
                None => break,
                _ => return Err(self.err("expected ',' or ' ' after field")),
            }
        }
        let time = if self.peek() == Some(' ') {
            self.pos += 1;
            let digits: String = std::iter::from_fn(|| {
                let c = self.peek()?;
                (c == '-' || c.is_ascii_digit()).then(|| {
                    self.pos += 1;
                    c
                })
            })
            .collect();
            EpochSecs::new(digits.parse().map_err(|_| self.err("bad timestamp"))?)
        } else {
            return Err(self.err("missing timestamp"));
        };
        if self.pos != self.chars.len() {
            return Err(self.err("trailing characters"));
        }
        let mut p = DataPoint::new(measurement, time);
        p.tags = tags;
        p.fields = fields;
        Ok(p)
    }

    fn field_value(&mut self) -> Result<FieldValue> {
        match self.peek() {
            Some('"') => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.peek() {
                        None => return Err(self.err("unterminated string field")),
                        Some('\\') => {
                            self.pos += 1;
                            let c = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                            s.push(c);
                            self.pos += 1;
                        }
                        Some('"') => {
                            self.pos += 1;
                            return Ok(FieldValue::Str(s));
                        }
                        Some(c) => {
                            s.push(c);
                            self.pos += 1;
                        }
                    }
                }
            }
            Some('t') | Some('f') => {
                let word: String = std::iter::from_fn(|| {
                    let c = self.peek()?;
                    c.is_ascii_alphabetic().then(|| {
                        self.pos += 1;
                        c
                    })
                })
                .collect();
                match word.as_str() {
                    "true" | "t" | "T" => Ok(FieldValue::Bool(true)),
                    "false" | "f" | "F" => Ok(FieldValue::Bool(false)),
                    _ => Err(self.err("bad boolean field")),
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = self.peek() {
                    if c == '-'
                        || c == '+'
                        || c == '.'
                        || c == 'e'
                        || c == 'E'
                        || c.is_ascii_digit()
                    {
                        text.push(c);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.peek() == Some('i') {
                    self.pos += 1;
                    text.parse::<i64>()
                        .map(FieldValue::Int)
                        .map_err(|_| self.err("bad integer field"))
                } else {
                    text.parse::<f64>()
                        .map(FieldValue::Float)
                        .map_err(|_| self.err("bad float field"))
                }
            }
            _ => Err(self.err("bad field value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_fig4_sample() {
        let p = DataPoint::new("Power", EpochSecs::new(1_583_792_296))
            .tag("NodeId", "10.101.1.1")
            .tag("Label", "NodePower")
            .field_f64("Reading", 273.8);
        assert_eq!(encode(&p), "Power,NodeId=10.101.1.1,Label=NodePower Reading=273.8 1583792296");
    }

    #[test]
    fn encodes_fig5_joblist_string() {
        let p = DataPoint::new("NodeJobs", EpochSecs::new(1_583_892_564))
            .tag("NodeId", "10.101.1.1")
            .field_str("JobList", "['1291784', '1318962']");
        let line = encode(&p);
        assert!(line.contains("JobList=\"['1291784', '1318962']\""));
        let back = parse(&line).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn round_trips_every_field_type() {
        let p = DataPoint::new("M", EpochSecs::new(-5))
            .tag("t", "v")
            .field_f64("f", -2.5e3)
            .field_i64("i", -42)
            .field_bool("b", true)
            .field_str("s", "with \"quotes\" and \\slash");
        let back = parse(&encode(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn escaping_special_chars_in_tags() {
        let p = DataPoint::new("cpu load", EpochSecs::new(7))
            .tag("host name", "a,b=c")
            .field_f64("v", 1.0);
        let line = encode(&p);
        assert!(line.starts_with("cpu\\ load,host\\ name=a\\,b\\=c "));
        assert_eq!(parse(&line).unwrap(), p);
    }

    #[test]
    fn batch_round_trip_skips_blank_lines() {
        let points: Vec<DataPoint> = (0..5)
            .map(|i| {
                DataPoint::new("m", EpochSecs::new(i))
                    .tag("n", format!("node{i}"))
                    .field_i64("v", i)
            })
            .collect();
        let mut text = encode_batch(&points);
        text.push_str("\n\n  \n");
        assert_eq!(parse_batch(&text).unwrap(), points);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "m",
            "m v=1",          // missing timestamp
            "m, v=1 5",       // empty tag
            "m,k v=1 5",      // tag missing '='
            "m v= 5",         // empty field value
            "m v=1x 5",       // junk in number
            "m v=\"open 5",   // unterminated string
            "m v=1 notatime", // bad timestamp
            "m v=1 5 extra",  // trailing garbage
            "m v=trub 5",     // bad bool
            "m v=1.5i 5",     // non-integer with i suffix
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integer_marker_distinguishes_types() {
        let int = parse("m v=5i 1").unwrap();
        let float = parse("m v=5 1").unwrap();
        assert_eq!(int.get_field("v"), Some(&FieldValue::Int(5)));
        assert_eq!(float.get_field("v"), Some(&FieldValue::Float(5.0)));
    }

    #[test]
    fn negative_timestamps_allowed() {
        let p = parse("m v=1 -86400").unwrap();
        assert_eq!(p.time, EpochSecs::new(-86_400));
    }
}
