//! Crash recovery: rebuild a [`Db`] from a durability directory.
//!
//! [`Db::recover`] is the single entry point for durable databases. The
//! directory holds two kinds of files, both written by the engine:
//!
//! * `shard-<start>.seg` — immutable cold-tier segment files (compressed
//!   line protocol behind [`crate::snapshot`]'s `MSEG1` header), written by
//!   tiering with an fsync-then-rename protocol. Loaded first; a corrupt
//!   segment file is a hard error, not a torn tail.
//! * `wal-<seq>.log` — write-ahead-log segments ([`crate::wal`]). Replayed
//!   in sequence order after the cold shards load. Points whose shard is
//!   already covered by a segment file are skipped (their WAL segment
//!   simply outlived its reclamation).
//!
//! # The torn tail
//!
//! Appends are strictly sequential, so on an unclean shutdown exactly one
//! suffix of the byte stream can be missing or torn. Replay stops at the
//! first frame that fails validation — short header, absurd length, short
//! payload, or CRC mismatch — truncates that file back to the last valid
//! frame boundary, and deletes any later WAL files (they can only hold
//! records appended *after* the torn one, which the ack boundary never
//! covered). Everything before the tear — in particular every acknowledged
//! batch — replays exactly; recovery never panics on torn bytes.
//!
//! A frame whose CRC validates but whose payload fails to parse is
//! different: the bytes were written intact, so this is a writer bug, not
//! a crash artifact. Such records are counted ([`RecoveryReport::records_failed`])
//! and skipped; replay continues.
//!
//! Replay goes through [`Db::write_batch`] with no WAL attached (the log is
//! only attached afterwards, via the resumed appender), so recovered points
//! are not re-logged, per-measurement watermarks republish exactly as live
//! writes would, and recovered query results are byte-identical to an
//! uninterrupted twin fed the same prefix.

use crate::db::{Db, DbConfig};
use crate::lineproto;
use crate::point::DataPoint;
use crate::snapshot;
use crate::wal::{self, Wal, FRAME_HEADER, MAX_RECORD_BYTES, SEGMENT_MAGIC};
use monster_util::{Error, Result};
use std::collections::HashSet;
use std::path::Path;

/// What [`Db::recover`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Cold-tier segment files loaded.
    pub segment_files_loaded: usize,
    /// Points restored from segment files.
    pub segment_points: usize,
    /// WAL segment files scanned (surviving, including the truncated one).
    pub wal_segments_scanned: usize,
    /// WAL records replayed into the database.
    pub replayed_records: u64,
    /// Points applied from WAL records.
    pub replayed_points: usize,
    /// Points skipped because a segment file already covered their shard.
    pub skipped_points: usize,
    /// CRC-valid records that failed to parse or apply (writer bugs —
    /// counted, skipped, replay continues).
    pub records_failed: u64,
    /// Bytes discarded from the torn tail (truncated frame bytes plus any
    /// whole later files deleted).
    pub truncated_bytes: u64,
    /// Whether a torn tail was found (and truncated) at all.
    pub torn_tail: bool,
}

/// Parse `shard-<start>.seg` file names.
fn parse_seg_name(name: &str) -> Option<i64> {
    name.strip_prefix("shard-")?.strip_suffix(".seg")?.parse().ok()
}

impl Db {
    /// Open a durable database from `dir`, replaying its history, and
    /// attach a resumed WAL appender so subsequent writes keep logging.
    ///
    /// An empty (or absent) directory yields a fresh database and an
    /// all-zero report — this is also how a durable deployment starts.
    pub fn recover(config: DbConfig, dir: impl AsRef<Path>) -> Result<(Db, RecoveryReport)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let db = Db::new(config);
        let mut report = RecoveryReport::default();

        // --- inventory ---------------------------------------------------
        let mut seg_starts: Vec<i64> = Vec::new();
        let mut wal_seqs: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(start) = parse_seg_name(name) {
                seg_starts.push(start);
            } else if let Some(seq) = wal::parse_segment_name(name) {
                wal_seqs.push(seq);
            }
            // Anything else (tmp files from an interrupted tiering pass,
            // stray artifacts) is ignored: a `.seg.tmp` never renamed is a
            // migration that never happened, and its WAL bytes still exist.
        }
        seg_starts.sort_unstable();
        wal_seqs.sort_unstable();

        // --- cold shards from immutable segment files --------------------
        let mut covered: HashSet<i64> = HashSet::new();
        for &start in &seg_starts {
            let bytes = std::fs::read(dir.join(format!("shard-{start}.seg")))?;
            let points = snapshot::decode_segment(&bytes)?;
            for chunk in points.chunks(10_000) {
                db.write_batch(chunk)?;
            }
            if !points.is_empty() {
                db.shard_for(start).write().mark_cold();
            }
            covered.insert(start);
            report.segment_files_loaded += 1;
            report.segment_points += points.len();
        }

        // --- WAL replay to the longest consistent prefix ------------------
        let duration = config.shard_duration;
        let mut sealed: Vec<(u64, i64)> = Vec::new();
        let mut torn_at: Option<usize> = None; // index into wal_seqs
        for (file_idx, &seq) in wal_seqs.iter().enumerate() {
            let path = wal::segment_path(dir, seq);
            let bytes = std::fs::read(&path)?;
            report.wal_segments_scanned += 1;
            if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
                // A segment whose very magic is short or wrong can only be
                // the tail file torn at creation; nothing in it was ever
                // acknowledged. Drop the whole file.
                report.truncated_bytes += bytes.len() as u64;
                report.torn_tail = true;
                std::fs::remove_file(&path)?;
                report.wal_segments_scanned -= 1;
                torn_at = Some(file_idx + 1);
                break;
            }
            let mut offset = SEGMENT_MAGIC.len();
            let mut seg_max_ts = i64::MIN;
            let mut torn_here = false;
            while offset < bytes.len() {
                if offset + FRAME_HEADER > bytes.len() {
                    torn_here = true; // short header
                    break;
                }
                let len =
                    u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
                let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
                if len > MAX_RECORD_BYTES || offset + FRAME_HEADER + len > bytes.len() {
                    torn_here = true; // absurd length or short payload
                    break;
                }
                let payload = &bytes[offset + FRAME_HEADER..offset + FRAME_HEADER + len];
                if wal::crc32(payload) != crc {
                    torn_here = true; // torn payload (or header)
                    break;
                }
                offset += FRAME_HEADER + len;
                // CRC says the record is exactly what the writer framed:
                // parse/apply failures from here on are counted, not torn.
                match std::str::from_utf8(payload)
                    .map_err(|_| Error::Corrupt("WAL record is not UTF-8".into()))
                    .and_then(lineproto::parse_batch)
                {
                    Ok(points) => {
                        for p in &points {
                            seg_max_ts = seg_max_ts.max(p.time.as_secs());
                        }
                        let fresh: Vec<DataPoint> = points
                            .into_iter()
                            .filter(|p| {
                                let start = p.time.as_secs().div_euclid(duration) * duration;
                                if covered.contains(&start) {
                                    report.skipped_points += 1;
                                    false
                                } else {
                                    true
                                }
                            })
                            .collect();
                        let fresh_count = fresh.len();
                        match db.write_batch(&fresh) {
                            Ok(()) => {
                                report.replayed_records += 1;
                                report.replayed_points += fresh_count;
                            }
                            // Same contract as live ingest: a batch that
                            // partially applies (e.g. a type conflict)
                            // errors but keeps its applied prefix.
                            Err(_) => report.records_failed += 1,
                        }
                    }
                    Err(_) => report.records_failed += 1,
                }
            }
            if torn_here {
                report.truncated_bytes += (bytes.len() - offset) as u64;
                report.torn_tail = true;
                let f = std::fs::OpenOptions::new().write(true).open(&path)?;
                f.set_len(offset as u64)?;
                f.sync_all()?;
                torn_at = Some(file_idx + 1);
                sealed.push((seq, seg_max_ts)); // the truncated file stays
                break;
            }
            sealed.push((seq, seg_max_ts));
        }
        if let Some(stop) = torn_at {
            // Files after the tear hold only records appended after it —
            // never acknowledged, unreachable by sequential replay.
            for &seq in &wal_seqs[stop..] {
                let path = wal::segment_path(dir, seq);
                if let Ok(meta) = std::fs::metadata(&path) {
                    report.truncated_bytes += meta.len();
                }
                std::fs::remove_file(&path)?;
            }
        }

        monster_obs::counter_help(
            "monster_tsdb_wal_replayed_records_total",
            "WAL records replayed during crash recovery.",
        )
        .add(report.replayed_records);
        monster_obs::counter_help(
            "monster_tsdb_wal_truncated_bytes_total",
            "Torn-tail bytes discarded during crash recovery.",
        )
        .add(report.truncated_bytes);

        // --- resume the appender -----------------------------------------
        let next_seq = sealed.iter().map(|&(s, _)| s + 1).max().unwrap_or(0);
        let wal = Wal::resume(dir, config.wal, next_seq, &sealed)?;
        let mut db = db;
        db.set_wal(wal);
        Ok((db, report))
    }
}

/// Copy a durability directory as a simulated kill would leave it: segment
/// files intact (they are fsync-renamed, hence atomic), and the WAL byte
/// stream — segments concatenated in sequence order — cut at `wal_offset`
/// bytes. Crash-matrix tests and the `crash_recovery` bench sweep
/// `wal_offset` over `[0, wal_extent]`; every offset must recover to a
/// consistent prefix. Returns the number of WAL bytes actually copied.
pub fn copy_dir_killed_at(
    src: impl AsRef<Path>,
    dst: impl AsRef<Path>,
    wal_offset: u64,
) -> Result<u64> {
    let (src, dst) = (src.as_ref(), dst.as_ref());
    std::fs::create_dir_all(dst)?;
    let mut wal_seqs: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = wal::parse_segment_name(name) {
            wal_seqs.push(seq);
        } else if parse_seg_name(name).is_some() {
            std::fs::copy(entry.path(), dst.join(name))?;
        }
    }
    wal_seqs.sort_unstable();
    let mut budget = wal_offset;
    let mut copied = 0u64;
    for seq in wal_seqs {
        if budget == 0 {
            break; // later files never came to exist
        }
        let bytes = std::fs::read(wal::segment_path(src, seq))?;
        let take = (bytes.len() as u64).min(budget);
        std::fs::write(wal::segment_path(dst, seq), &bytes[..take as usize])?;
        budget -= take;
        copied += take;
    }
    Ok(copied)
}

/// Total bytes across the WAL segment files in `dir` (the kill-offset
/// domain for [`copy_dir_killed_at`]).
pub fn wal_extent(dir: impl AsRef<Path>) -> Result<u64> {
    let mut total = 0u64;
    for entry in std::fs::read_dir(dir.as_ref())? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if wal::parse_segment_name(name).is_some() {
            total += entry.metadata()?.len();
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalTuning;
    use monster_util::EpochSecs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("monster-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn point(i: i64) -> DataPoint {
        DataPoint::new("Power", EpochSecs::new(i * 60))
            .tag("NodeId", format!("10.101.1.{}", i % 4 + 1))
            .field_f64("Reading", 250.0 + i as f64)
    }

    #[test]
    fn empty_directory_recovers_to_fresh_db() {
        let dir = tmp_dir("empty");
        let (db, report) = Db::recover(DbConfig::default(), &dir).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert!(db.wal_enabled());
        assert_eq!(db.stats().points, 0);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_shutdown_replays_everything() {
        let dir = tmp_dir("clean");
        let (db, _) = Db::recover(DbConfig::default(), &dir).unwrap();
        let batch: Vec<DataPoint> = (0..100).map(point).collect();
        db.write_batch(&batch).unwrap();
        db.wal_sync().unwrap();
        let stats = db.stats();
        drop(db);
        let (db2, report) = Db::recover(DbConfig::default(), &dir).unwrap();
        assert_eq!(db2.stats().points, stats.points);
        assert_eq!(db2.stats().cardinality, stats.cardinality);
        assert_eq!(report.replayed_points, 100);
        assert!(!report.torn_tail);
        drop(db2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_payload_truncates_to_last_whole_record() {
        let dir = tmp_dir("torn-payload");
        let (db, _) = Db::recover(DbConfig::default(), &dir).unwrap();
        db.write_batch(&[point(1)]).unwrap();
        db.write_batch(&[point(2)]).unwrap();
        db.wal_sync().unwrap();
        drop(db);
        // Tear 3 bytes off the end of the only WAL file.
        let path = wal::segment_path(&dir, 0);
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(len - 3).unwrap();
        let (db2, report) = Db::recover(DbConfig::default(), &dir).unwrap();
        assert!(report.torn_tail);
        assert_eq!(report.replayed_records, 1);
        assert_eq!(db2.stats().points, 1);
        // Idempotent: the truncation was persisted, a third open is clean.
        drop(db2);
        let (_db3, report3) = Db::recover(DbConfig::default(), &dir).unwrap();
        assert!(!report3.torn_tail);
        assert_eq!(report3.replayed_records, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_header_and_flipped_crc_truncate() {
        for (tag, damage) in [
            ("torn-header", 0usize), // leave 4 of the 8 header bytes
            ("bad-crc", 1),
        ] {
            let dir = tmp_dir(tag);
            let (db, _) = Db::recover(DbConfig::default(), &dir).unwrap();
            db.write_batch(&[point(1)]).unwrap();
            db.wal_sync().unwrap();
            let whole = std::fs::metadata(wal::segment_path(&dir, 0)).unwrap().len();
            db.write_batch(&[point(2)]).unwrap();
            db.wal_sync().unwrap();
            drop(db);
            let path = wal::segment_path(&dir, 0);
            if damage == 0 {
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .unwrap()
                    .set_len(whole + 4)
                    .unwrap();
            } else {
                let mut bytes = std::fs::read(&path).unwrap();
                let crc_at = whole as usize + 4;
                bytes[crc_at] ^= 0xFF;
                std::fs::write(&path, &bytes).unwrap();
            }
            let (db2, report) = Db::recover(DbConfig::default(), &dir).unwrap();
            assert!(report.torn_tail, "{tag}");
            assert_eq!(db2.stats().points, 1, "{tag}");
            drop(db2);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn corruption_mid_log_discards_later_segments() {
        let dir = tmp_dir("later-segs");
        let config = DbConfig {
            wal: WalTuning { segment_bytes: 256, ..WalTuning::default() },
            ..DbConfig::default()
        };
        let (db, _) = Db::recover(config, &dir).unwrap();
        for i in 0..50 {
            db.write_batch(&[point(i)]).unwrap();
        }
        db.wal_sync().unwrap();
        let segs = db.wal_status().unwrap().segments;
        assert!(segs > 2, "need several segments, got {segs}");
        drop(db);
        // Flip a byte early in segment 1: segment 0 replays whole, the
        // rest of segment 1 and all later files are discarded.
        let path = wal::segment_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = SEGMENT_MAGIC.len() + FRAME_HEADER + 1;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (db2, report) = Db::recover(config, &dir).unwrap();
        assert!(report.torn_tail);
        assert!(report.truncated_bytes > 0);
        // Segment 0 (whole) and 1 (truncated) survive; every later
        // pre-crash file is gone; resume opened a fresh active segment 2.
        let mut survivors: Vec<u64> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| wal::parse_segment_name(e.unwrap().file_name().to_str().unwrap()))
            .collect();
        survivors.sort_unstable();
        assert_eq!(survivors, vec![0, 1, 2], "pre-crash segments past the tear must be deleted");
        assert!(db2.stats().points > 0);
        drop(db2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc_valid_garbage_records_are_skipped_not_torn() {
        let dir = tmp_dir("garbage");
        let (db, _) = Db::recover(DbConfig::default(), &dir).unwrap();
        db.write_batch(&[point(1)]).unwrap();
        // Hand-frame a record whose payload is valid CRC but invalid line
        // protocol, then a good record after it.
        if let Some(w) = db.wal() {
            w.append(b"not line protocol at all,,,", 0).unwrap();
        }
        db.write_batch(&[point(2)]).unwrap();
        db.wal_sync().unwrap();
        drop(db);
        let (db2, report) = Db::recover(DbConfig::default(), &dir).unwrap();
        assert_eq!(report.records_failed, 1);
        assert!(!report.torn_tail);
        assert_eq!(db2.stats().points, 2, "the record after the bad one still replays");
        drop(db2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn killed_copy_recovers_prefix_at_any_cut() {
        let dir = tmp_dir("killcopy");
        let (db, _) = Db::recover(DbConfig::default(), &dir).unwrap();
        for i in 0..20 {
            db.write_batch(&[point(i)]).unwrap();
        }
        db.wal_sync().unwrap();
        drop(db);
        let extent = wal_extent(&dir).unwrap();
        for cut in [0, 1, extent / 3, extent - 1, extent] {
            let copy = tmp_dir(&format!("killcopy-at-{cut}"));
            let copied = copy_dir_killed_at(&dir, &copy, cut).unwrap();
            assert_eq!(copied, cut);
            let (db2, _) = Db::recover(DbConfig::default(), &copy).unwrap();
            assert!(db2.stats().points <= 20);
            drop(db2);
            std::fs::remove_dir_all(&copy).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
