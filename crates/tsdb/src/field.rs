//! Field values: the typed payload of a data point.

use std::fmt;

/// A field value. InfluxDB's four field types, which MonSTer uses as:
/// floats for sensor readings, integers for epoch times and binary state
/// codes (the §III-B3 optimization), booleans for flags, and strings for
/// stringified job lists (Fig. 5 notes InfluxDB has no array type).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// 64-bit float.
    Float(f64),
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
}

impl FieldValue {
    /// Numeric view (floats and ints); `None` for bool/string.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::Float(f) => Some(*f),
            FieldValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            FieldValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            FieldValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short type name for error messages and schema reports.
    pub fn type_name(&self) -> &'static str {
        match self {
            FieldValue::Float(_) => "float",
            FieldValue::Int(_) => "integer",
            FieldValue::Bool(_) => "boolean",
            FieldValue::Str(_) => "string",
        }
    }

    /// Size of this value in the line-protocol text representation — the
    /// raw-volume unit the Fig. 13 schema comparison counts.
    pub fn wire_size(&self) -> usize {
        match self {
            // Count the rendered length without building the string —
            // wire_size runs once per point on the ingest path, and a
            // `format!` here was the last per-point heap allocation.
            FieldValue::Float(f) => {
                struct LenCounter(usize);
                impl fmt::Write for LenCounter {
                    fn write_str(&mut self, s: &str) -> fmt::Result {
                        self.0 += s.len();
                        Ok(())
                    }
                }
                let mut w = LenCounter(0);
                let _ = fmt::Write::write_fmt(&mut w, format_args!("{f}"));
                w.0
            }
            FieldValue::Int(i) => {
                // digits + trailing 'i' type marker
                let mut n = if *i <= 0 { 1 } else { 0 };
                let mut v = i.unsigned_abs();
                while v > 0 {
                    n += 1;
                    v /= 10;
                }
                n.max(1) + 1
            }
            FieldValue::Bool(_) => 5,
            FieldValue::Str(s) => s.len() + 2,
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Float(v) => write!(f, "{v}"),
            FieldValue::Int(v) => write!(f, "{v}i"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "\"{v}\""),
        }
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views() {
        assert_eq!(FieldValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(FieldValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(FieldValue::Int(3).as_i64(), Some(3));
        assert_eq!(FieldValue::Float(3.0).as_i64(), None);
        assert_eq!(FieldValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(FieldValue::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn display_matches_line_protocol() {
        assert_eq!(FieldValue::Float(273.8).to_string(), "273.8");
        assert_eq!(FieldValue::Int(1_583_792_296).to_string(), "1583792296i");
        assert_eq!(FieldValue::Bool(false).to_string(), "false");
        assert_eq!(FieldValue::Str("a b".into()).to_string(), "\"a b\"");
    }

    #[test]
    fn wire_size_tracks_text_length() {
        assert_eq!(FieldValue::Int(0).wire_size(), 2); // "0i"
        assert_eq!(FieldValue::Int(-12).wire_size(), 4); // "-12i"
        assert_eq!(FieldValue::Int(1_583_792_296).wire_size(), 11);
        assert_eq!(FieldValue::Str("Warning".into()).wire_size(), 9);
        assert_eq!(FieldValue::Bool(true).wire_size(), 5);
        assert_eq!(FieldValue::Float(273.8).wire_size(), 5);
    }

    #[test]
    fn epoch_int_is_smaller_than_date_string() {
        // The core §III-B3 claim: integer epoch beats a date string.
        let as_int = FieldValue::Int(1_583_792_296).wire_size();
        let as_str = FieldValue::Str("2020-03-09T22:18:16Z".into()).wire_size();
        assert!(as_int < as_str);
    }
}
