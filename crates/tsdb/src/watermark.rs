//! Per-measurement ingest watermarks: the validity surface the builder's
//! response cache keys on.
//!
//! Every applied batch advances, per measurement it touched, a triple of
//! `(version, max_ts, backfills)`:
//!
//! * `version` — bumped once per batch that touched the measurement. A
//!   cache entry whose covered measurements all show an unchanged version
//!   is trivially still byte-valid.
//! * `max_ts` — the monotone high watermark of data timestamps. In-order
//!   appends land strictly above it, so a cached window whose `end` is at
//!   or below the watermark the entry was built against can only be
//!   changed by *backfill* writes — new versions alone don't invalidate a
//!   closed historical window.
//! * `backfills` — bumped whenever a batch lands at or below the
//!   then-current `max_ts`. Any change here means history was rewritten
//!   and closed windows over this measurement must be re-read.
//!
//! Marks are updated *after* shard data is applied (end of
//! `Db::write_batch`, and in `WriteStager::flush` after runs publish) and
//! snapshotted by readers *before* they execute a query, so a concurrent
//! write can at worst cause a spurious invalidation — never a stale entry
//! that still validates.
//!
//! Retention and measurement drops remove data without advancing any
//! watermark, so they bump a coarse [`Db::retention_epoch`] counter that
//! invalidates every snapshot taken before the drop.

use parking_lot::RwLock;
use std::collections::HashMap;

/// One measurement's ingest watermark. `Default` describes a measurement
/// that has never been written (`version == 0`, empty time range).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasurementMark {
    /// Batches that have touched this measurement.
    pub version: u64,
    /// High watermark of applied data timestamps (`i64::MIN` when empty).
    pub max_ts: i64,
    /// Batches that landed at or below the then-current `max_ts`.
    pub backfills: u64,
}

impl Default for MeasurementMark {
    fn default() -> Self {
        MeasurementMark { version: 0, max_ts: i64::MIN, backfills: 0 }
    }
}

/// The per-database mark table. Reads are a shared-lock `HashMap` lookup
/// by `&str` (no allocation); writes happen once per applied batch.
#[derive(Default)]
pub(crate) struct WatermarkRegistry {
    marks: RwLock<HashMap<String, MeasurementMark>>,
}

impl WatermarkRegistry {
    /// Current mark for `measurement` (default mark if never written).
    pub fn get(&self, measurement: &str) -> MeasurementMark {
        self.marks.read().get(measurement).copied().unwrap_or_default()
    }

    /// Every measurement's current mark, sorted by name. Recovery
    /// equivalence tests compare a replayed database's whole mark table
    /// against an uninterrupted twin's; not on any hot path (allocates,
    /// holds the read lock for the full walk).
    pub fn snapshot(&self) -> Vec<(String, MeasurementMark)> {
        let marks = self.marks.read();
        let mut out: Vec<(String, MeasurementMark)> =
            marks.iter().map(|(m, mark)| (m.clone(), *mark)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Fold one applied batch's per-measurement `[min_ts, max_ts]` spans
    /// into the table. Spans with `lo > hi` are empty sentinels and are
    /// skipped, so callers can keep reusable scratch entries around.
    pub fn note_spans<S: AsRef<str>>(&self, spans: &[(S, i64, i64)]) {
        if spans.iter().all(|(_, lo, hi)| lo > hi) {
            return;
        }
        let mut marks = self.marks.write();
        for (m, lo, hi) in spans {
            if lo > hi {
                continue;
            }
            match marks.get_mut(m.as_ref()) {
                Some(mark) => {
                    mark.version = mark.version.wrapping_add(1);
                    if *lo <= mark.max_ts {
                        mark.backfills = mark.backfills.wrapping_add(1);
                    }
                    if *hi > mark.max_ts {
                        mark.max_ts = *hi;
                    }
                }
                None => {
                    let mark = MeasurementMark { version: 1, max_ts: *hi, backfills: 0 };
                    marks.insert(m.as_ref().to_string(), mark);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_measurement_has_default_mark() {
        let reg = WatermarkRegistry::default();
        assert_eq!(reg.get("Power"), MeasurementMark::default());
    }

    #[test]
    fn in_order_appends_advance_version_and_watermark_only() {
        let reg = WatermarkRegistry::default();
        reg.note_spans(&[("Power", 100i64, 160i64)]);
        assert_eq!(reg.get("Power"), MeasurementMark { version: 1, max_ts: 160, backfills: 0 });
        reg.note_spans(&[("Power", 220i64, 220i64)]);
        assert_eq!(reg.get("Power"), MeasurementMark { version: 2, max_ts: 220, backfills: 0 });
    }

    #[test]
    fn landing_at_or_below_watermark_counts_as_backfill() {
        let reg = WatermarkRegistry::default();
        reg.note_spans(&[("Power", 100i64, 160i64)]);
        // Exactly at the watermark: duplicate timestamps rewrite history.
        reg.note_spans(&[("Power", 160i64, 200i64)]);
        assert_eq!(reg.get("Power"), MeasurementMark { version: 2, max_ts: 200, backfills: 1 });
        // Strictly below.
        reg.note_spans(&[("Power", 40i64, 50i64)]);
        assert_eq!(reg.get("Power"), MeasurementMark { version: 3, max_ts: 200, backfills: 2 });
    }

    #[test]
    fn spans_are_per_measurement_and_sentinels_skipped() {
        let reg = WatermarkRegistry::default();
        reg.note_spans(&[("Power", 100i64, 160i64), ("Thermal", i64::MAX, i64::MIN)]);
        assert_eq!(reg.get("Power").version, 1);
        assert_eq!(reg.get("Thermal"), MeasurementMark::default());
    }
}
