//! Series identity and the inverted tag index.
//!
//! A *series* is one (measurement, tag set) combination; each distinct
//! series holds its own columns. Series **cardinality** is the database's
//! main scalability axis — the paper's schema redesign (§IV-B2) worked
//! precisely because the original schema "introduced a large series
//! cardinality". The index here makes that cost concrete: query planning
//! touches structures whose size is the cardinality.

use crate::point::DataPoint;
use std::collections::HashMap;
use std::fmt;

/// Canonical series identity: measurement plus tags sorted by key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Measurement name.
    pub measurement: String,
    /// Tag pairs sorted by key (canonical order).
    pub tags: Vec<(String, String)>,
}

impl SeriesKey {
    /// Build the canonical key for a point.
    pub fn of(p: &DataPoint) -> SeriesKey {
        let mut tags = p.tags.clone();
        tags.sort();
        SeriesKey { measurement: p.measurement.clone(), tags }
    }

    /// Tag lookup on the canonical set.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.measurement)?;
        for (k, v) in &self.tags {
            write!(f, ",{k}={v}")?;
        }
        Ok(())
    }
}

/// Dense id for a series within one database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u32);

/// Series registry + inverted index (tag key/value → series ids).
#[derive(Debug, Default)]
pub struct SeriesIndex {
    by_key: HashMap<SeriesKey, SeriesId>,
    keys: Vec<SeriesKey>,
    /// Tombstoned (dropped) slots in `keys`.
    dropped: usize,
    /// measurement → series ids in that measurement.
    by_measurement: HashMap<String, Vec<SeriesId>>,
    /// (measurement, tag key, tag value) → series ids.
    inverted: HashMap<(String, String, String), Vec<SeriesId>>,
}

impl SeriesIndex {
    /// Empty index.
    pub fn new() -> Self {
        SeriesIndex::default()
    }

    /// Get the id for a series, registering it if new.
    pub fn get_or_create(&mut self, key: &SeriesKey) -> SeriesId {
        if let Some(&id) = self.by_key.get(key) {
            return id;
        }
        let id = SeriesId(self.keys.len() as u32);
        self.by_key.insert(key.clone(), id);
        self.keys.push(key.clone());
        self.by_measurement.entry(key.measurement.clone()).or_default().push(id);
        for (k, v) in &key.tags {
            self.inverted
                .entry((key.measurement.clone(), k.clone(), v.clone()))
                .or_default()
                .push(id);
        }
        id
    }

    /// Total distinct live series (the cardinality number).
    pub fn cardinality(&self) -> usize {
        self.keys.len() - self.dropped
    }

    /// Slots in the id space, live or tombstoned (ids are never reused).
    pub fn id_space(&self) -> usize {
        self.keys.len()
    }

    /// The key for an id.
    pub fn key_of(&self, id: SeriesId) -> &SeriesKey {
        &self.keys[id.0 as usize]
    }

    /// Number of distinct measurements.
    pub fn measurement_count(&self) -> usize {
        self.by_measurement.len()
    }

    /// All measurement names (unordered).
    pub fn measurements(&self) -> impl Iterator<Item = &str> {
        self.by_measurement.keys().map(String::as_str)
    }

    /// Remove a measurement's series from the index. Ids of surviving
    /// series are unchanged (dropped ids become tombstones that no new
    /// series reuses, keeping shard references valid).
    pub fn drop_measurement(&mut self, measurement: &str) {
        let Some(ids) = self.by_measurement.remove(measurement) else {
            return;
        };
        for id in ids {
            let key = self.keys[id.0 as usize].clone();
            self.by_key.remove(&key);
            for (k, v) in &key.tags {
                if let Some(list) =
                    self.inverted.get_mut(&(measurement.to_string(), k.clone(), v.clone()))
                {
                    list.retain(|x| *x != id);
                }
            }
            // Tombstone: keep the slot so ids stay stable, but mark the
            // key as dropped (empty measurement never matches a select).
            self.keys[id.0 as usize] = SeriesKey { measurement: String::new(), tags: Vec::new() };
            self.dropped += 1;
        }
    }

    /// Series ids in a measurement, filtered by tag equality predicates
    /// (AND semantics). Returns ids in ascending order.
    ///
    /// With no predicates this is all series of the measurement. With
    /// predicates, the inverted index produces each predicate's posting
    /// list and they are intersected — the same plan InfluxDB's TSI makes.
    pub fn select(&self, measurement: &str, predicates: &[(String, String)]) -> Vec<SeriesId> {
        let Some(all) = self.by_measurement.get(measurement) else {
            return Vec::new();
        };
        if predicates.is_empty() {
            let mut ids = all.clone();
            ids.sort();
            return ids;
        }
        let mut lists: Vec<&Vec<SeriesId>> = Vec::with_capacity(predicates.len());
        for (k, v) in predicates {
            match self.inverted.get(&(measurement.to_string(), k.clone(), v.clone())) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        // Intersect: start from the shortest list.
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<SeriesId> = lists[0].clone();
        result.sort();
        for list in &lists[1..] {
            let mut sorted: Vec<SeriesId> = (*list).clone();
            sorted.sort();
            result.retain(|id| sorted.binary_search(id).is_ok());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_util::EpochSecs;

    fn point(m: &str, node: &str, label: &str) -> DataPoint {
        DataPoint::new(m, EpochSecs::new(0))
            .tag("NodeId", node)
            .tag("Label", label)
            .field_f64("v", 1.0)
    }

    #[test]
    fn series_key_is_canonical_under_tag_order() {
        let a =
            DataPoint::new("m", EpochSecs::new(0)).tag("b", "2").tag("a", "1").field_f64("v", 0.0);
        let b =
            DataPoint::new("m", EpochSecs::new(0)).tag("a", "1").tag("b", "2").field_f64("v", 0.0);
        assert_eq!(SeriesKey::of(&a), SeriesKey::of(&b));
        assert_eq!(SeriesKey::of(&a).to_string(), "m,a=1,b=2");
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let mut idx = SeriesIndex::new();
        let k = SeriesKey::of(&point("Power", "10.101.1.1", "NodePower"));
        let id1 = idx.get_or_create(&k);
        let id2 = idx.get_or_create(&k);
        assert_eq!(id1, id2);
        assert_eq!(idx.cardinality(), 1);
        assert_eq!(idx.key_of(id1), &k);
    }

    #[test]
    fn cardinality_counts_distinct_tag_sets() {
        let mut idx = SeriesIndex::new();
        for n in 0..10 {
            for label in ["NodePower", "CPUTemp"] {
                idx.get_or_create(&SeriesKey::of(&point("Power", &format!("10.101.1.{n}"), label)));
            }
        }
        assert_eq!(idx.cardinality(), 20);
        assert_eq!(idx.measurement_count(), 1);
    }

    #[test]
    fn select_with_predicates_intersects() {
        let mut idx = SeriesIndex::new();
        let a = idx.get_or_create(&SeriesKey::of(&point("Power", "n1", "NodePower")));
        let _b = idx.get_or_create(&SeriesKey::of(&point("Power", "n1", "CPUTemp")));
        let _c = idx.get_or_create(&SeriesKey::of(&point("Power", "n2", "NodePower")));
        let got = idx.select(
            "Power",
            &[("NodeId".into(), "n1".into()), ("Label".into(), "NodePower".into())],
        );
        assert_eq!(got, vec![a]);
    }

    #[test]
    fn select_without_predicates_returns_all() {
        let mut idx = SeriesIndex::new();
        for n in 0..5 {
            idx.get_or_create(&SeriesKey::of(&point("Thermal", &format!("n{n}"), "CPU1")));
        }
        assert_eq!(idx.select("Thermal", &[]).len(), 5);
        assert!(idx.select("Nope", &[]).is_empty());
    }

    #[test]
    fn select_with_unknown_value_is_empty() {
        let mut idx = SeriesIndex::new();
        idx.get_or_create(&SeriesKey::of(&point("Power", "n1", "NodePower")));
        assert!(idx.select("Power", &[("NodeId".into(), "missing".into())]).is_empty());
    }
}
