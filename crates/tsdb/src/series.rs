//! Series identity and the inverted tag index.
//!
//! A *series* is one (measurement, tag set) combination; each distinct
//! series holds its own columns. Series **cardinality** is the database's
//! main scalability axis — the paper's schema redesign (§IV-B2) worked
//! precisely because the original schema "introduced a large series
//! cardinality". The index here makes that cost concrete: query planning
//! touches structures whose size is the cardinality.

use crate::point::DataPoint;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Canonical series identity: measurement plus tags sorted by key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Measurement name.
    pub measurement: String,
    /// Tag pairs sorted by key (canonical order).
    pub tags: Vec<(String, String)>,
}

impl SeriesKey {
    /// Build the canonical key for a point.
    pub fn of(p: &DataPoint) -> SeriesKey {
        let mut tags = p.tags.clone();
        tags.sort();
        SeriesKey { measurement: p.measurement.clone(), tags }
    }

    /// Tag lookup on the canonical set.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.measurement)?;
        for (k, v) in &self.tags {
            write!(f, ",{k}={v}")?;
        }
        Ok(())
    }
}

/// Dense id for a series within one database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u32);

/// Dense id for an interned field name within one database.
///
/// Shards key their columns by `(SeriesId, FieldId)`, so the ingest hot
/// path never allocates a field-name `String` per appended value — the
/// name is interned here once, the first time it is seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u32);

/// Order-independent hash of a point's identity (measurement + tag set),
/// matching [`series_key_hash`] on the canonical key. Tag keys are unique
/// within a point, so XOR-combining per-pair hashes is collision-safe
/// under reordering.
fn point_identity_hash(measurement: &str, tags: &[(String, String)]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    measurement.hash(&mut h);
    let mut acc = h.finish();
    for (k, v) in tags {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        k.hash(&mut h);
        v.hash(&mut h);
        acc ^= h.finish();
    }
    acc
}

/// Series registry + inverted index (tag key/value → series ids).
#[derive(Debug, Default)]
pub struct SeriesIndex {
    by_key: HashMap<SeriesKey, SeriesId>,
    keys: Vec<SeriesKey>,
    /// Tombstoned (dropped) slots in `keys`.
    dropped: usize,
    /// measurement → series ids in that measurement.
    by_measurement: HashMap<String, Vec<SeriesId>>,
    /// (measurement, tag key, tag value) → series ids.
    inverted: HashMap<(String, String, String), Vec<SeriesId>>,
    /// Order-independent identity hash → candidate ids, for allocation-free
    /// point lookup on the write path ([`id_of_point`](Self::id_of_point)).
    by_hash: HashMap<u64, Vec<SeriesId>>,
    /// Field-name interning table (name → id, id → name).
    field_ids: HashMap<String, FieldId>,
    field_names: Vec<String>,
}

impl SeriesIndex {
    /// Empty index.
    pub fn new() -> Self {
        SeriesIndex::default()
    }

    /// Get the id for a series, registering it if new.
    pub fn get_or_create(&mut self, key: &SeriesKey) -> SeriesId {
        if let Some(&id) = self.by_key.get(key) {
            return id;
        }
        let id = SeriesId(self.keys.len() as u32);
        self.by_key.insert(key.clone(), id);
        self.keys.push(key.clone());
        self.by_measurement.entry(key.measurement.clone()).or_default().push(id);
        for (k, v) in &key.tags {
            self.inverted
                .entry((key.measurement.clone(), k.clone(), v.clone()))
                .or_default()
                .push(id);
        }
        self.by_hash.entry(point_identity_hash(&key.measurement, &key.tags)).or_default().push(id);
        id
    }

    /// Resolve a point's series id without allocating, if the series is
    /// already registered. This is the steady-state write path: the point's
    /// identity is hashed order-independently (no canonical `SeriesKey` is
    /// built) and candidates are verified by tag-set comparison.
    pub fn id_of_point(&self, p: &DataPoint) -> Option<SeriesId> {
        let candidates = self.by_hash.get(&point_identity_hash(&p.measurement, &p.tags))?;
        candidates.iter().copied().find(|&id| {
            let key = &self.keys[id.0 as usize];
            key.measurement == p.measurement
                && key.tags.len() == p.tags.len()
                && p.tags.iter().all(|(k, v)| key.tag(k) == Some(v.as_str()))
        })
    }

    /// Intern a field name, returning its dense id.
    pub fn intern_field(&mut self, name: &str) -> FieldId {
        if let Some(&id) = self.field_ids.get(name) {
            return id;
        }
        let id = FieldId(self.field_names.len() as u32);
        self.field_ids.insert(name.to_string(), id);
        self.field_names.push(name.to_string());
        id
    }

    /// Look up an interned field name without registering it.
    pub fn field_id(&self, name: &str) -> Option<FieldId> {
        self.field_ids.get(name).copied()
    }

    /// The name for an interned field id.
    pub fn field_name(&self, id: FieldId) -> &str {
        &self.field_names[id.0 as usize]
    }

    /// Number of distinct field names ever interned.
    pub fn field_count(&self) -> usize {
        self.field_names.len()
    }

    /// Total distinct live series (the cardinality number).
    pub fn cardinality(&self) -> usize {
        self.keys.len() - self.dropped
    }

    /// Slots in the id space, live or tombstoned (ids are never reused).
    pub fn id_space(&self) -> usize {
        self.keys.len()
    }

    /// The key for an id.
    pub fn key_of(&self, id: SeriesId) -> &SeriesKey {
        &self.keys[id.0 as usize]
    }

    /// Number of distinct measurements.
    pub fn measurement_count(&self) -> usize {
        self.by_measurement.len()
    }

    /// All measurement names (unordered).
    pub fn measurements(&self) -> impl Iterator<Item = &str> {
        self.by_measurement.keys().map(String::as_str)
    }

    /// Remove a measurement's series from the index. Ids of surviving
    /// series are unchanged (dropped ids become tombstones that no new
    /// series reuses, keeping shard references valid).
    pub fn drop_measurement(&mut self, measurement: &str) {
        let Some(ids) = self.by_measurement.remove(measurement) else {
            return;
        };
        for id in ids {
            let key = self.keys[id.0 as usize].clone();
            self.by_key.remove(&key);
            for (k, v) in &key.tags {
                if let Some(list) =
                    self.inverted.get_mut(&(measurement.to_string(), k.clone(), v.clone()))
                {
                    list.retain(|x| *x != id);
                }
            }
            if let Some(list) =
                self.by_hash.get_mut(&point_identity_hash(&key.measurement, &key.tags))
            {
                list.retain(|x| *x != id);
            }
            // Tombstone: keep the slot so ids stay stable, but mark the
            // key as dropped (empty measurement never matches a select).
            self.keys[id.0 as usize] = SeriesKey { measurement: String::new(), tags: Vec::new() };
            self.dropped += 1;
        }
    }

    /// Series ids in a measurement, filtered by tag equality predicates
    /// (AND semantics). Returns ids in ascending order.
    ///
    /// With no predicates this is all series of the measurement. With
    /// predicates, the inverted index produces each predicate's posting
    /// list and they are intersected — the same plan InfluxDB's TSI makes.
    pub fn select(&self, measurement: &str, predicates: &[(String, String)]) -> Vec<SeriesId> {
        let Some(all) = self.by_measurement.get(measurement) else {
            return Vec::new();
        };
        if predicates.is_empty() {
            let mut ids = all.clone();
            ids.sort();
            return ids;
        }
        let mut lists: Vec<&Vec<SeriesId>> = Vec::with_capacity(predicates.len());
        for (k, v) in predicates {
            match self.inverted.get(&(measurement.to_string(), k.clone(), v.clone())) {
                Some(list) => lists.push(list),
                None => return Vec::new(),
            }
        }
        // Intersect: start from the shortest list.
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<SeriesId> = lists[0].clone();
        result.sort();
        for list in &lists[1..] {
            let mut sorted: Vec<SeriesId> = (*list).clone();
            sorted.sort();
            result.retain(|id| sorted.binary_search(id).is_ok());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_util::EpochSecs;

    fn point(m: &str, node: &str, label: &str) -> DataPoint {
        DataPoint::new(m, EpochSecs::new(0))
            .tag("NodeId", node)
            .tag("Label", label)
            .field_f64("v", 1.0)
    }

    #[test]
    fn series_key_is_canonical_under_tag_order() {
        let a =
            DataPoint::new("m", EpochSecs::new(0)).tag("b", "2").tag("a", "1").field_f64("v", 0.0);
        let b =
            DataPoint::new("m", EpochSecs::new(0)).tag("a", "1").tag("b", "2").field_f64("v", 0.0);
        assert_eq!(SeriesKey::of(&a), SeriesKey::of(&b));
        assert_eq!(SeriesKey::of(&a).to_string(), "m,a=1,b=2");
    }

    #[test]
    fn get_or_create_is_idempotent() {
        let mut idx = SeriesIndex::new();
        let k = SeriesKey::of(&point("Power", "10.101.1.1", "NodePower"));
        let id1 = idx.get_or_create(&k);
        let id2 = idx.get_or_create(&k);
        assert_eq!(id1, id2);
        assert_eq!(idx.cardinality(), 1);
        assert_eq!(idx.key_of(id1), &k);
    }

    #[test]
    fn cardinality_counts_distinct_tag_sets() {
        let mut idx = SeriesIndex::new();
        for n in 0..10 {
            for label in ["NodePower", "CPUTemp"] {
                idx.get_or_create(&SeriesKey::of(&point("Power", &format!("10.101.1.{n}"), label)));
            }
        }
        assert_eq!(idx.cardinality(), 20);
        assert_eq!(idx.measurement_count(), 1);
    }

    #[test]
    fn select_with_predicates_intersects() {
        let mut idx = SeriesIndex::new();
        let a = idx.get_or_create(&SeriesKey::of(&point("Power", "n1", "NodePower")));
        let _b = idx.get_or_create(&SeriesKey::of(&point("Power", "n1", "CPUTemp")));
        let _c = idx.get_or_create(&SeriesKey::of(&point("Power", "n2", "NodePower")));
        let got = idx.select(
            "Power",
            &[("NodeId".into(), "n1".into()), ("Label".into(), "NodePower".into())],
        );
        assert_eq!(got, vec![a]);
    }

    #[test]
    fn select_without_predicates_returns_all() {
        let mut idx = SeriesIndex::new();
        for n in 0..5 {
            idx.get_or_create(&SeriesKey::of(&point("Thermal", &format!("n{n}"), "CPU1")));
        }
        assert_eq!(idx.select("Thermal", &[]).len(), 5);
        assert!(idx.select("Nope", &[]).is_empty());
    }

    #[test]
    fn id_of_point_matches_get_or_create_under_tag_reorder() {
        let mut idx = SeriesIndex::new();
        let p =
            DataPoint::new("m", EpochSecs::new(0)).tag("b", "2").tag("a", "1").field_f64("v", 0.0);
        assert_eq!(idx.id_of_point(&p), None);
        let id = idx.get_or_create(&SeriesKey::of(&p));
        // Same tags, different declaration order: still resolves.
        let q =
            DataPoint::new("m", EpochSecs::new(9)).tag("a", "1").tag("b", "2").field_f64("v", 1.0);
        assert_eq!(idx.id_of_point(&q), Some(id));
        // Different value or missing tag: no match.
        let r = DataPoint::new("m", EpochSecs::new(9)).tag("a", "1").field_f64("v", 1.0);
        assert_eq!(idx.id_of_point(&r), None);
    }

    #[test]
    fn field_interning_is_stable_and_dense() {
        let mut idx = SeriesIndex::new();
        let a = idx.intern_field("Reading");
        let b = idx.intern_field("CPUUsage");
        assert_eq!(idx.intern_field("Reading"), a);
        assert_ne!(a, b);
        assert_eq!(idx.field_id("Reading"), Some(a));
        assert_eq!(idx.field_id("nope"), None);
        assert_eq!(idx.field_name(b), "CPUUsage");
        assert_eq!(idx.field_count(), 2);
    }

    #[test]
    fn dropped_series_no_longer_resolve_from_points() {
        let mut idx = SeriesIndex::new();
        let p = point("Power", "n1", "NodePower");
        idx.get_or_create(&SeriesKey::of(&p));
        idx.drop_measurement("Power");
        assert_eq!(idx.id_of_point(&p), None);
    }

    #[test]
    fn select_with_unknown_value_is_empty() {
        let mut idx = SeriesIndex::new();
        idx.get_or_create(&SeriesKey::of(&point("Power", "n1", "NodePower")));
        assert!(idx.select("Power", &[("NodeId".into(), "missing".into())]).is_empty());
    }
}
