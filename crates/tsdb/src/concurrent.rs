//! Concurrent query execution.
//!
//! §IV-B3 of the paper: issuing the per-measurement queries concurrently
//! instead of sequentially made Metrics Builder 5.5–6.5× faster. This
//! module runs a batch of queries on a worker pool and reports both the
//! wall-clock results and the *simulated* elapsed time: each logical worker
//! accumulates the simulated cost of the queries it executed, and the batch
//! completes when the slowest worker does (`max` over workers), plus a
//! fan-out/merge overhead per query.
//!
//! Two levels of parallelism compose here. *Inter-query* concurrency (this
//! module) packs whole queries onto workers; *intra-query* scan
//! parallelism ([`crate::CostParams::scan_workers`]) divides each query's
//! scan CPU across its overlapping shards before the cost ever reaches
//! this module, via [`crate::CostParams::split`]. Both leave I/O
//! serialized on the shared storage backend, so their combined speedup
//! still saturates the way Fig. 15 does.

use crate::cost::QueryCost;
use crate::db::Db;
use crate::query::{Query, ResultSet};
use monster_sim::VDuration;
use monster_util::pool::ThreadPool;
use monster_util::Result;
use std::sync::Arc;

/// Outcome of a query batch.
pub struct BatchOutcome {
    /// Per-query results, in submission order.
    pub results: Vec<Result<ResultSet>>,
    /// Per-query physical costs, aligned with `results` (zero cost for
    /// queries that errored).
    pub costs: Vec<QueryCost>,
    /// Aggregate physical cost across all queries.
    pub total_cost: QueryCost,
    /// Simulated elapsed time for the batch under the execution mode used.
    pub simulated: VDuration,
}

impl BatchOutcome {
    /// Unwrap all results, propagating the first error.
    pub fn into_results(self) -> Result<Vec<ResultSet>> {
        self.results.into_iter().collect()
    }
}

/// Per-query coordination overhead when fanning out (connection setup,
/// result merge) — concurrent execution is not perfectly free. Scaled by
/// the cost model's amplification, like all per-query costs.
const FANOUT_OVERHEAD_SECS: f64 = 0.7e-3;

/// Execute queries one after another (the paper's original Metrics
/// Builder). Simulated time is the sum of per-query times.
pub fn run_sequential(db: &Db, queries: &[Query]) -> BatchOutcome {
    let mut results = Vec::with_capacity(queries.len());
    let mut costs = Vec::with_capacity(queries.len());
    let mut total = QueryCost::default();
    let mut simulated = VDuration::ZERO;
    for q in queries {
        match db.query(q) {
            Ok((rs, cost)) => {
                simulated += db.simulate_elapsed(&cost);
                total.absorb(&cost);
                costs.push(cost);
                results.push(Ok(rs));
            }
            Err(e) => {
                costs.push(QueryCost::default());
                results.push(Err(e));
            }
        }
    }
    BatchOutcome { results, costs, total_cost: total, simulated }
}

/// Execute queries on `workers` threads (the §IV-B3 optimization).
///
/// Simulated time model: CPU work parallelizes across the workers
/// (longest-processing-time-first bin packing, the steady state of a
/// work-pulling pool), but I/O serializes on the shared storage backend —
/// which is why the paper's measured speedup saturates at 5.5–6.5× rather
/// than the worker count.
pub fn run_concurrent(db: &Arc<Db>, queries: Vec<Query>, workers: usize) -> BatchOutcome {
    let n = queries.len();
    let workers = workers.max(1);
    let pool = ThreadPool::new(workers);
    // Pool threads don't inherit the caller's thread-local trace context;
    // re-install it per task so each query's scan span stays a child of
    // the request that issued the batch.
    let ctx = monster_obs::trace::current();
    let outputs = pool.scope_map(queries, |q| {
        let _trace = ctx.map(monster_obs::trace::set_current);
        let (rs, cost) = db.query(&q)?;
        let (cpu, io) = db.config().cost.split(&cost, &db.config().disk);
        Ok::<_, monster_util::Error>((rs, cost, cpu, io))
    });

    let mut results = Vec::with_capacity(n);
    let mut costs = Vec::with_capacity(n);
    let mut total = QueryCost::default();
    let mut cpu_each: Vec<VDuration> = Vec::with_capacity(n);
    let mut io_total = VDuration::ZERO;
    for r in outputs {
        match r {
            Ok((rs, cost, cpu, io)) => {
                total.absorb(&cost);
                cpu_each.push(cpu);
                io_total += io;
                costs.push(cost);
                results.push(Ok(rs));
            }
            Err(e) => {
                costs.push(QueryCost::default());
                results.push(Err(e));
            }
        }
    }
    cpu_each.sort_unstable_by(|a, b| b.cmp(a));
    let mut bins = vec![VDuration::ZERO; workers];
    for d in cpu_each {
        let min = bins.iter_mut().min().expect("at least one worker");
        *min += d;
    }
    let slowest_cpu = bins.into_iter().max().unwrap_or(VDuration::ZERO);
    let overhead =
        VDuration::from_secs_f64(FANOUT_OVERHEAD_SECS * n as f64 * db.config().cost.amplification);
    BatchOutcome { results, costs, total_cost: total, simulated: slowest_cpu + io_total + overhead }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Aggregation;
    use crate::{DataPoint, DbConfig};
    use monster_util::EpochSecs;

    fn seeded() -> Arc<Db> {
        seeded_with(DbConfig::default())
    }

    fn seeded_with(config: DbConfig) -> Arc<Db> {
        let db = Db::new(config);
        let mut batch = Vec::new();
        for n in 0..24 {
            for i in 0..360 {
                batch.push(
                    DataPoint::new("Power", EpochSecs::new(i * 60))
                        .tag("NodeId", format!("10.101.1.{n}"))
                        .field_f64("Reading", 250.0 + (i % 30) as f64),
                );
            }
        }
        db.write_batch(&batch).unwrap();
        Arc::new(db)
    }

    fn queries() -> Vec<Query> {
        (0..24)
            .map(|n| {
                Query::select("Power", "Reading", EpochSecs::new(0), EpochSecs::new(360 * 60))
                    .aggregate(Aggregation::Max)
                    .where_tag("NodeId", format!("10.101.1.{n}"))
                    .group_by_time(300)
            })
            .collect()
    }

    #[test]
    fn sequential_and_concurrent_agree_on_results() {
        let db = seeded();
        let seq = run_sequential(&db, &queries());
        let con = run_concurrent(&db, queries(), 8);
        let seq_rs = seq.into_results().unwrap();
        let con_rs = con.into_results().unwrap();
        assert_eq!(seq_rs, con_rs);
    }

    #[test]
    fn concurrency_shrinks_simulated_time() {
        let db = seeded();
        let seq = run_sequential(&db, &queries());
        let con = run_concurrent(&db, queries(), 8);
        // Same physical work...
        assert_eq!(seq.total_cost.points, con.total_cost.points);
        // ...but meaningfully less simulated wall time. (The full Fig. 15
        // band is validated at realistic scale by the fig15 harness; this
        // small fixture is I/O-skewed, so the bar is lower.)
        let speedup = seq.simulated.as_secs_f64() / con.simulated.as_secs_f64();
        assert!(speedup > 1.5, "speedup {speedup}");
    }

    #[test]
    fn one_worker_concurrent_approximates_sequential() {
        let db = seeded();
        let seq = run_sequential(&db, &queries());
        let con = run_concurrent(&db, queries(), 1);
        let ratio = con.simulated.as_secs_f64() / seq.simulated.as_secs_f64();
        assert!((0.95..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn intra_query_scan_parallelism_composes() {
        // Hourly shards make each query overlap 6 shards, giving the
        // intra-query fan-out room to bite.
        let base = DbConfig { shard_duration: 3600, ..DbConfig::default() };
        let serial = seeded_with(base);
        let fanned = seeded_with(DbConfig { cost: base.cost.with_scan_workers(4), ..base });
        let s = run_concurrent(&serial, queries(), 8);
        let f = run_concurrent(&fanned, queries(), 8);
        // Identical physical work and results; the fan-out only reshapes
        // simulated time.
        assert_eq!(s.total_cost, f.total_cost);
        assert!(s.total_cost.shards_scanned >= queries().len() * 6);
        assert!(
            f.simulated < s.simulated,
            "intra-query fan-out should shrink simulated time: {:?} vs {:?}",
            f.simulated,
            s.simulated
        );
        assert_eq!(s.into_results().unwrap(), f.into_results().unwrap());
    }

    #[test]
    fn errors_stay_in_position() {
        let db = seeded();
        let mut qs = queries();
        qs[3].end = qs[3].start; // make invalid
        let out = run_concurrent(&db, qs, 4);
        assert!(out.results[3].is_err());
        assert!(out.results[2].is_ok());
        assert!(out.into_results().is_err());
    }

    #[test]
    fn empty_batch() {
        let db = seeded();
        let out = run_concurrent(&db, vec![], 4);
        assert!(out.results.is_empty());
        assert_eq!(out.simulated, VDuration::ZERO);
    }
}
