//! Integer column codec: zig-zag varint of successive deltas.
//!
//! Integer fields in MonSTer are epoch times (monotone, small deltas) and
//! binary state codes (mostly constant) — both delta-encode to a byte or
//! less per value.

use monster_util::{Error, Result};

use super::timestamps::{unzigzag, zigzag};

/// Encode an integer column.
pub fn encode(vals: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() + 8);
    let mut prev = 0i64;
    for &v in vals {
        let delta = v.wrapping_sub(prev);
        let mut z = zigzag(delta);
        loop {
            let b = (z & 0x7F) as u8;
            z >>= 7;
            if z == 0 {
                out.push(b);
                break;
            }
            out.push(b | 0x80);
        }
        prev = v;
    }
    out
}

/// Decode `count` integers.
pub fn decode(data: &[u8], count: usize) -> Result<Vec<i64>> {
    let mut out = Vec::with_capacity(count);
    let mut pos = 0usize;
    let mut prev = 0i64;
    for _ in 0..count {
        let mut z: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = *data.get(pos).ok_or_else(|| Error::Corrupt("int column truncated".into()))?;
            pos += 1;
            z |= ((b & 0x7F) as u64) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 63 {
                return Err(Error::Corrupt("int varint overlong".into()));
            }
        }
        prev = prev.wrapping_add(unzigzag(z));
        out.push(prev);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(vals: &[i64]) {
        assert_eq!(decode(&encode(vals), vals.len()).unwrap(), vals);
    }

    #[test]
    fn round_trips() {
        rt(&[]);
        rt(&[0]);
        rt(&[i64::MAX, i64::MIN, 0, -1, 1]);
        rt(&(0..1000).map(|i| 1_583_792_296 + i * 60).collect::<Vec<_>>());
    }

    #[test]
    fn state_codes_pack_to_one_byte_each() {
        // Health codes: long runs of 0 with occasional 1/2.
        let vals: Vec<i64> = (0..1000).map(|i| if i % 97 == 0 { 2 } else { 0 }).collect();
        let enc = encode(&vals);
        assert!(enc.len() <= 1000);
        rt(&vals);
    }

    #[test]
    fn monotone_epochs_pack_small() {
        let vals: Vec<i64> = (0..1440).map(|i| 1_583_792_296 + i * 60).collect();
        let enc = encode(&vals);
        // First value ~5 bytes, rest 1-2 bytes.
        assert!(enc.len() < 1440 * 2 + 8, "got {}", enc.len());
    }

    #[test]
    fn truncation_detected() {
        let enc = encode(&[1, 2, 3]);
        assert!(decode(&enc[..1], 3).is_err());
    }
}
