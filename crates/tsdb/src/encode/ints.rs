//! Integer column codec: zig-zag varint of successive deltas.
//!
//! Integer fields in MonSTer are epoch times (monotone, small deltas) and
//! binary state codes (mostly constant) — both delta-encode to a byte or
//! less per value.

use monster_util::{Error, Result};

use super::timestamps::{unzigzag, zigzag};

/// Encode an integer column.
pub fn encode(vals: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() + 8);
    let mut prev = 0i64;
    for &v in vals {
        let delta = v.wrapping_sub(prev);
        let mut z = zigzag(delta);
        loop {
            let b = (z & 0x7F) as u8;
            z >>= 7;
            if z == 0 {
                out.push(b);
                break;
            }
            out.push(b | 0x80);
        }
        prev = v;
    }
    out
}

/// Decode `count` integers into a fresh vector.
pub fn decode(data: &[u8], count: usize) -> Result<Vec<i64>> {
    let mut out = Vec::with_capacity(count);
    decode_into(data, count, &mut out)?;
    Ok(out)
}

/// Decode `count` integers into `out`, clearing it first (the array fast
/// path; scans reuse the buffer so warm decodes never allocate).
pub fn decode_into(data: &[u8], count: usize, out: &mut Vec<i64>) -> Result<()> {
    out.clear();
    out.reserve(count);
    let mut pos = 0usize;
    let mut prev = 0i64;
    for _ in 0..count {
        prev = prev.wrapping_add(unzigzag(read_varint(data, &mut pos)?));
        out.push(prev);
    }
    Ok(())
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut z: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or_else(|| Error::Corrupt("int column truncated".into()))?;
        *pos += 1;
        z |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(z);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Corrupt("int varint overlong".into()));
        }
    }
}

/// Point-at-a-time streaming decoder — the reference implementation the
/// array path is proptested against.
pub struct Iter<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: i64,
}

/// Stream `count` integers out of an encoded block one at a time.
pub fn iter(data: &[u8], count: usize) -> Iter<'_> {
    Iter { data, pos: 0, remaining: count, prev: 0 }
}

impl Iterator for Iter<'_> {
    type Item = Result<i64>;

    fn next(&mut self) -> Option<Result<i64>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(read_varint(self.data, &mut self.pos).map(|z| {
            self.prev = self.prev.wrapping_add(unzigzag(z));
            self.prev
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(vals: &[i64]) {
        let enc = encode(vals);
        assert_eq!(decode(&enc, vals.len()).unwrap(), vals);
        let streamed: Vec<i64> = iter(&enc, vals.len()).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, vals);
        let mut buf = vec![7i64; 5];
        decode_into(&enc, vals.len(), &mut buf).unwrap();
        assert_eq!(buf, vals);
    }

    #[test]
    fn round_trips() {
        rt(&[]);
        rt(&[0]);
        rt(&[i64::MAX, i64::MIN, 0, -1, 1]);
        rt(&(0..1000).map(|i| 1_583_792_296 + i * 60).collect::<Vec<_>>());
    }

    #[test]
    fn state_codes_pack_to_one_byte_each() {
        // Health codes: long runs of 0 with occasional 1/2.
        let vals: Vec<i64> = (0..1000).map(|i| if i % 97 == 0 { 2 } else { 0 }).collect();
        let enc = encode(&vals);
        assert!(enc.len() <= 1000);
        rt(&vals);
    }

    #[test]
    fn monotone_epochs_pack_small() {
        let vals: Vec<i64> = (0..1440).map(|i| 1_583_792_296 + i * 60).collect();
        let enc = encode(&vals);
        // First value ~5 bytes, rest 1-2 bytes.
        assert!(enc.len() < 1440 * 2 + 8, "got {}", enc.len());
    }

    #[test]
    fn truncation_detected() {
        let enc = encode(&[1, 2, 3]);
        assert!(decode(&enc[..1], 3).is_err());
    }
}
