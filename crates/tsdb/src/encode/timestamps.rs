//! Gorilla delta-of-delta timestamp compression.
//!
//! Collection timestamps are nearly periodic (the 60 s interval of
//! §III-B4), so the delta of consecutive deltas is almost always zero and
//! encodes to a single bit. Encoding per value:
//!
//! ```text
//! dod == 0            → '0'
//! dod in [-63, 64]    → '10'   + 7 bits
//! dod in [-255, 256]  → '110'  + 9 bits
//! dod in [-2047,2048] → '1110' + 12 bits
//! otherwise           → '1111' + 64 bits
//! ```

use monster_compress::bitio::{BitReader, BitWriter};
use monster_util::Result;

const MASK57: u64 = (1u64 << 57) - 1;
const MASK40: u64 = (1u64 << 40) - 1;

/// Encode a timestamp column (epoch seconds).
pub fn encode(ts: &[i64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    if ts.is_empty() {
        return w.finish();
    }
    w.write(ts[0] as u64 & MASK57, 57);
    if ts.len() == 1 {
        return w.finish();
    }
    let first_delta = ts[1] - ts[0];
    w.write(zigzag(first_delta) & MASK40, 40);
    let mut prev = ts[1];
    let mut prev_delta = first_delta;
    for &t in &ts[2..] {
        let delta = t - prev;
        let dod = delta - prev_delta;
        if dod == 0 {
            w.write(0, 1);
        } else if (-63..=64).contains(&dod) {
            w.write(0b01, 2); // LSB-first: reads as '10'
            w.write((dod + 63) as u64, 7);
        } else if (-255..=256).contains(&dod) {
            w.write(0b011, 3);
            w.write((dod + 255) as u64, 9);
        } else if (-2047..=2048).contains(&dod) {
            w.write(0b0111, 4);
            w.write((dod + 2047) as u64, 12);
        } else {
            w.write(0b1111, 4);
            w.write(zigzag(dod) & MASK57, 57);
        }
        prev = t;
        prev_delta = delta;
    }
    w.finish()
}

/// Decode `count` timestamps into a fresh vector.
pub fn decode(data: &[u8], count: usize) -> Result<Vec<i64>> {
    let mut out = Vec::with_capacity(count);
    decode_into(data, count, &mut out)?;
    Ok(out)
}

/// Decode `count` timestamps into `out`, clearing it first. The whole
/// block is materialized in one pass over the bit stream — this is the
/// array fast path scans reuse a scratch buffer with, so steady-state
/// block decodes never allocate once the buffer has grown to block size.
pub fn decode_into(data: &[u8], count: usize, out: &mut Vec<i64>) -> Result<()> {
    out.clear();
    out.reserve(count);
    if count == 0 {
        return Ok(());
    }
    let mut r = BitReader::new(data);
    let first = sign_extend(r.read(57)?, 57);
    out.push(first);
    if count == 1 {
        return Ok(());
    }
    let first_delta = unzigzag(r.read(40)?);
    let mut prev = first + first_delta;
    out.push(prev);
    let mut prev_delta = first_delta;
    while out.len() < count {
        let dod = read_dod(&mut r)?;
        let delta = prev_delta + dod;
        prev += delta;
        out.push(prev);
        prev_delta = delta;
    }
    Ok(())
}

fn read_dod(r: &mut BitReader<'_>) -> Result<i64> {
    Ok(if r.read_bit()? == 0 {
        0
    } else if r.read_bit()? == 0 {
        r.read(7)? as i64 - 63
    } else if r.read_bit()? == 0 {
        r.read(9)? as i64 - 255
    } else if r.read_bit()? == 0 {
        r.read(12)? as i64 - 2047
    } else {
        unzigzag(r.read(57)?)
    })
}

/// Point-at-a-time streaming decoder: yields one timestamp per `next`
/// call without materializing the block. The reference implementation the
/// batch path is proptested against, and the baseline the
/// `tsdb/batch_codecs` criterion group measures the array win over.
pub struct Iter<'a> {
    r: BitReader<'a>,
    remaining: usize,
    emitted: usize,
    prev: i64,
    prev_delta: i64,
}

/// Stream `count` timestamps out of an encoded block one at a time.
pub fn iter(data: &[u8], count: usize) -> Iter<'_> {
    Iter { r: BitReader::new(data), remaining: count, emitted: 0, prev: 0, prev_delta: 0 }
}

impl Iter<'_> {
    fn step(&mut self) -> Result<i64> {
        match self.emitted {
            0 => self.prev = sign_extend(self.r.read(57)?, 57),
            1 => {
                self.prev_delta = unzigzag(self.r.read(40)?);
                self.prev += self.prev_delta;
            }
            _ => {
                self.prev_delta += read_dod(&mut self.r)?;
                self.prev += self.prev_delta;
            }
        }
        self.emitted += 1;
        Ok(self.prev)
    }
}

impl Iterator for Iter<'_> {
    type Item = Result<i64>;

    fn next(&mut self) -> Option<Result<i64>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.step())
    }
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn sign_extend(v: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(ts: &[i64]) {
        let enc = encode(ts);
        let dec = decode(&enc, ts.len()).unwrap();
        assert_eq!(dec, ts);
        // The streaming reference decoder agrees with the array path.
        let streamed: Vec<i64> = iter(&enc, ts.len()).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, ts);
        // decode_into reuses a dirty buffer without residue.
        let mut buf = vec![i64::MIN; 3];
        decode_into(&enc, ts.len(), &mut buf).unwrap();
        assert_eq!(buf, ts);
    }

    #[test]
    fn round_trips_edge_shapes() {
        rt(&[]);
        rt(&[1_583_792_296]);
        rt(&[0, 0]);
        rt(&[100, 160, 220, 280]);
        rt(&[-86_400, 0, 86_400]);
        rt(&[5, 4, 3, 2, 1]); // decreasing (out-of-order writes)
    }

    #[test]
    fn regular_cadence_encodes_to_about_one_bit() {
        // 1 day of 60 s samples: after the header, each sample is 1 bit.
        let ts: Vec<i64> = (0..1440).map(|i| 1_583_792_296 + i * 60).collect();
        let enc = encode(&ts);
        assert!(enc.len() < 200, "got {} bytes for 1440 stamps", enc.len());
        rt(&ts);
    }

    #[test]
    fn jittered_cadence_still_compresses() {
        let ts: Vec<i64> = (0..1000).map(|i| 1_583_792_296 + i * 60 + (i % 7) - 3).collect();
        let enc = encode(&ts);
        assert!(enc.len() < 1500, "got {} bytes", enc.len());
        rt(&ts);
    }

    #[test]
    fn large_jumps_round_trip() {
        rt(&[0, 1, 1_000_000_000, 1_000_000_060, -500]);
    }

    #[test]
    fn dod_bucket_boundaries() {
        // Hit every bucket edge exactly.
        for dod in [-64i64, -63, 0, 64, 65, -255, 256, 257, -2047, 2048, 2049, 100_000] {
            let ts = vec![0, 60, 120 + dod];
            rt(&ts);
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -63, i32::MAX as i64, i32::MIN as i64] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let ts: Vec<i64> = (0..100).map(|i| i * 60).collect();
        let enc = encode(&ts);
        assert!(decode(&enc[..4], 100).is_err());
    }
}
