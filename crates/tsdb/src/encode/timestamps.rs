//! Gorilla delta-of-delta timestamp compression.
//!
//! Collection timestamps are nearly periodic (the 60 s interval of
//! §III-B4), so the delta of consecutive deltas is almost always zero and
//! encodes to a single bit. Encoding per value:
//!
//! ```text
//! dod == 0            → '0'
//! dod in [-63, 64]    → '10'   + 7 bits
//! dod in [-255, 256]  → '110'  + 9 bits
//! dod in [-2047,2048] → '1110' + 12 bits
//! otherwise           → '1111' + 64 bits
//! ```

use monster_compress::bitio::{BitReader, BitWriter};
use monster_util::Result;

const MASK57: u64 = (1u64 << 57) - 1;
const MASK40: u64 = (1u64 << 40) - 1;

/// Encode a timestamp column (epoch seconds).
pub fn encode(ts: &[i64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    if ts.is_empty() {
        return w.finish();
    }
    w.write(ts[0] as u64 & MASK57, 57);
    if ts.len() == 1 {
        return w.finish();
    }
    let first_delta = ts[1] - ts[0];
    w.write(zigzag(first_delta) & MASK40, 40);
    let mut prev = ts[1];
    let mut prev_delta = first_delta;
    for &t in &ts[2..] {
        let delta = t - prev;
        let dod = delta - prev_delta;
        if dod == 0 {
            w.write(0, 1);
        } else if (-63..=64).contains(&dod) {
            w.write(0b01, 2); // LSB-first: reads as '10'
            w.write((dod + 63) as u64, 7);
        } else if (-255..=256).contains(&dod) {
            w.write(0b011, 3);
            w.write((dod + 255) as u64, 9);
        } else if (-2047..=2048).contains(&dod) {
            w.write(0b0111, 4);
            w.write((dod + 2047) as u64, 12);
        } else {
            w.write(0b1111, 4);
            w.write(zigzag(dod) & MASK57, 57);
        }
        prev = t;
        prev_delta = delta;
    }
    w.finish()
}

/// Decode `count` timestamps.
pub fn decode(data: &[u8], count: usize) -> Result<Vec<i64>> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return Ok(out);
    }
    let mut r = BitReader::new(data);
    let first = sign_extend(r.read(57)?, 57);
    out.push(first);
    if count == 1 {
        return Ok(out);
    }
    let first_delta = unzigzag(r.read(40)?);
    let mut prev = first + first_delta;
    out.push(prev);
    let mut prev_delta = first_delta;
    while out.len() < count {
        let dod = if r.read_bit()? == 0 {
            0
        } else if r.read_bit()? == 0 {
            r.read(7)? as i64 - 63
        } else if r.read_bit()? == 0 {
            r.read(9)? as i64 - 255
        } else if r.read_bit()? == 0 {
            r.read(12)? as i64 - 2047
        } else {
            unzigzag(r.read(57)?)
        };
        let delta = prev_delta + dod;
        prev += delta;
        out.push(prev);
        prev_delta = delta;
    }
    Ok(out)
}

pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn sign_extend(v: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(ts: &[i64]) {
        let enc = encode(ts);
        let dec = decode(&enc, ts.len()).unwrap();
        assert_eq!(dec, ts);
    }

    #[test]
    fn round_trips_edge_shapes() {
        rt(&[]);
        rt(&[1_583_792_296]);
        rt(&[0, 0]);
        rt(&[100, 160, 220, 280]);
        rt(&[-86_400, 0, 86_400]);
        rt(&[5, 4, 3, 2, 1]); // decreasing (out-of-order writes)
    }

    #[test]
    fn regular_cadence_encodes_to_about_one_bit() {
        // 1 day of 60 s samples: after the header, each sample is 1 bit.
        let ts: Vec<i64> = (0..1440).map(|i| 1_583_792_296 + i * 60).collect();
        let enc = encode(&ts);
        assert!(enc.len() < 200, "got {} bytes for 1440 stamps", enc.len());
        rt(&ts);
    }

    #[test]
    fn jittered_cadence_still_compresses() {
        let ts: Vec<i64> = (0..1000).map(|i| 1_583_792_296 + i * 60 + (i % 7) - 3).collect();
        let enc = encode(&ts);
        assert!(enc.len() < 1500, "got {} bytes", enc.len());
        rt(&ts);
    }

    #[test]
    fn large_jumps_round_trip() {
        rt(&[0, 1, 1_000_000_000, 1_000_000_060, -500]);
    }

    #[test]
    fn dod_bucket_boundaries() {
        // Hit every bucket edge exactly.
        for dod in [-64i64, -63, 0, 64, 65, -255, 256, 257, -2047, 2048, 2049, 100_000] {
            let ts = vec![0, 60, 120 + dod];
            rt(&ts);
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -63, i32::MAX as i64, i32::MIN as i64] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let ts: Vec<i64> = (0..100).map(|i| i * 60).collect();
        let enc = encode(&ts);
        assert!(decode(&enc[..4], 100).is_err());
    }
}
