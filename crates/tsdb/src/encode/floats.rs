//! Gorilla XOR float compression.
//!
//! Consecutive sensor readings XOR to values with long runs of leading and
//! trailing zero bits. Per value:
//!
//! ```text
//! xor == 0                                  → '0'
//! fits in previous leading/trailing window  → '10' + meaningful bits
//! otherwise                                 → '11' + 6b leading + 6b length
//!                                                  + meaningful bits
//! ```

use monster_compress::bitio::{BitReader, BitWriter};
use monster_util::{Error, Result};

/// Encode a float column.
pub fn encode(vals: &[f64]) -> Vec<u8> {
    let mut w = BitWriter::new();
    if vals.is_empty() {
        return w.finish();
    }
    let first = vals[0].to_bits();
    w.write(first & 0xFFFF_FFFF, 32);
    w.write(first >> 32, 32);
    let mut prev = first;
    let mut prev_lead: u32 = u32::MAX; // "no previous window"
    let mut prev_trail: u32 = 0;
    for &v in &vals[1..] {
        let bits = v.to_bits();
        let xor = bits ^ prev;
        if xor == 0 {
            w.write(0, 1);
        } else {
            let lead = xor.leading_zeros().min(31);
            let trail = xor.trailing_zeros();
            if prev_lead != u32::MAX && lead >= prev_lead && trail >= prev_trail {
                // Reuse the previous window.
                w.write(0b01, 2);
                let sig = 64 - prev_lead - prev_trail;
                write_wide(&mut w, xor >> prev_trail, sig);
            } else {
                w.write(0b11, 2);
                let sig = 64 - lead - trail;
                w.write(lead as u64, 6);
                // sig in 1..=64; store sig-1 in 6 bits.
                w.write((sig - 1) as u64, 6);
                write_wide(&mut w, xor >> trail, sig);
                prev_lead = lead;
                prev_trail = trail;
            }
        }
        prev = bits;
    }
    w.finish()
}

/// Decode `count` floats into a fresh vector.
pub fn decode(data: &[u8], count: usize) -> Result<Vec<f64>> {
    let mut out = Vec::with_capacity(count);
    decode_into(data, count, &mut out)?;
    Ok(out)
}

/// Decode `count` floats into `out`, clearing it first. The array fast
/// path: scans pass a reused scratch buffer so warm block decodes do not
/// allocate.
pub fn decode_into(data: &[u8], count: usize, out: &mut Vec<f64>) -> Result<()> {
    out.clear();
    out.reserve(count);
    if count == 0 {
        return Ok(());
    }
    let mut r = BitReader::new(data);
    let lo = r.read(32)?;
    let hi = r.read(32)?;
    let mut prev = lo | (hi << 32);
    out.push(f64::from_bits(prev));
    let mut lead: u32 = 0;
    let mut trail: u32 = 0;
    let mut have_window = false;
    while out.len() < count {
        if r.read_bit()? == 0 {
            out.push(f64::from_bits(prev));
            continue;
        }
        if r.read_bit()? == 0 {
            if !have_window {
                return Err(Error::Corrupt("float window reuse before definition".into()));
            }
        } else {
            lead = r.read(6)? as u32;
            let sig = r.read(6)? as u32 + 1;
            trail = 64 - lead - sig;
            have_window = true;
        }
        let sig = 64 - lead - trail;
        let xor = read_wide(&mut r, sig)? << trail;
        prev ^= xor;
        out.push(f64::from_bits(prev));
    }
    Ok(())
}

/// Point-at-a-time streaming decoder — the reference the array path is
/// proptested against and benchmarked over.
pub struct Iter<'a> {
    r: BitReader<'a>,
    remaining: usize,
    started: bool,
    prev: u64,
    lead: u32,
    trail: u32,
    have_window: bool,
}

/// Stream `count` floats out of an encoded block one at a time.
pub fn iter(data: &[u8], count: usize) -> Iter<'_> {
    Iter {
        r: BitReader::new(data),
        remaining: count,
        started: false,
        prev: 0,
        lead: 0,
        trail: 0,
        have_window: false,
    }
}

impl Iter<'_> {
    fn step(&mut self) -> Result<f64> {
        if !self.started {
            self.started = true;
            let lo = self.r.read(32)?;
            let hi = self.r.read(32)?;
            self.prev = lo | (hi << 32);
            return Ok(f64::from_bits(self.prev));
        }
        if self.r.read_bit()? == 0 {
            return Ok(f64::from_bits(self.prev));
        }
        if self.r.read_bit()? == 0 {
            if !self.have_window {
                return Err(Error::Corrupt("float window reuse before definition".into()));
            }
        } else {
            self.lead = self.r.read(6)? as u32;
            let sig = self.r.read(6)? as u32 + 1;
            self.trail = 64 - self.lead - sig;
            self.have_window = true;
        }
        let sig = 64 - self.lead - self.trail;
        let xor = read_wide(&mut self.r, sig)? << self.trail;
        self.prev ^= xor;
        Ok(f64::from_bits(self.prev))
    }
}

impl Iterator for Iter<'_> {
    type Item = Result<f64>;

    fn next(&mut self) -> Option<Result<f64>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.step())
    }
}

/// BitWriter caps single writes at 57 bits; split wider values.
fn write_wide(w: &mut BitWriter, v: u64, bits: u32) {
    if bits <= 57 {
        w.write(v & mask(bits), bits);
    } else {
        w.write(v & mask(32), 32);
        w.write((v >> 32) & mask(bits - 32), bits - 32);
    }
}

fn read_wide(r: &mut BitReader<'_>, bits: u32) -> Result<u64> {
    if bits <= 57 {
        r.read(bits)
    } else {
        let lo = r.read(32)?;
        let hi = r.read(bits - 32)?;
        Ok(lo | (hi << 32))
    }
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(vals: &[f64]) {
        let enc = encode(vals);
        let dec = decode(&enc, vals.len()).unwrap();
        assert_eq!(dec.len(), vals.len());
        for (a, b) in dec.iter().zip(vals) {
            assert!(a.to_bits() == b.to_bits(), "{a} != {b}");
        }
        // Streaming reference decoder is bit-identical to the array path.
        let streamed: Vec<f64> = iter(&enc, vals.len()).map(|r| r.unwrap()).collect();
        assert_eq!(streamed.len(), dec.len());
        for (a, b) in streamed.iter().zip(&dec) {
            assert!(a.to_bits() == b.to_bits(), "stream {a} != array {b}");
        }
        // decode_into reuses a dirty buffer without residue.
        let mut buf = vec![f64::NAN; 2];
        decode_into(&enc, vals.len(), &mut buf).unwrap();
        assert_eq!(buf.len(), vals.len());
    }

    #[test]
    fn round_trips_edge_shapes() {
        rt(&[]);
        rt(&[273.8]);
        rt(&[0.0, -0.0]);
        rt(&[1.0, 1.0, 1.0, 1.0]);
        rt(&[f64::MAX, f64::MIN, f64::MIN_POSITIVE]);
        rt(&[f64::NAN]); // NaN payload preserved bitwise
        rt(&[f64::INFINITY, f64::NEG_INFINITY]);
    }

    #[test]
    fn slow_moving_sensor_data_compresses() {
        // Power readings drifting slowly around 273 W.
        let vals: Vec<f64> = (0..1440).map(|i| 273.8 + ((i % 60) as f64) * 0.1).collect();
        let enc = encode(&vals);
        assert!(enc.len() < vals.len() * 8, "got {} bytes for {} floats", enc.len(), vals.len());
        rt(&vals);
    }

    #[test]
    fn constant_column_is_about_one_bit_per_value() {
        let vals = vec![36.0; 1440];
        let enc = encode(&vals);
        assert!(enc.len() < 200, "got {} bytes", enc.len());
        rt(&vals);
    }

    #[test]
    fn adversarial_alternation_round_trips() {
        let vals: Vec<f64> = (0..500).map(|i| if i % 2 == 0 { 1e300 } else { -1e-300 }).collect();
        rt(&vals);
    }

    #[test]
    fn pseudo_random_round_trips() {
        let mut x: u64 = 0xDEADBEEF;
        let vals: Vec<f64> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                f64::from_bits((x >> 12) | 0x3FF0_0000_0000_0000)
            })
            .collect();
        rt(&vals);
    }

    #[test]
    fn truncation_is_an_error() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 0.7).collect();
        let enc = encode(&vals);
        assert!(decode(&enc[..6], 100).is_err());
    }
}
