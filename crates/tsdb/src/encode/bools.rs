//! Boolean column codec: one bit per value.

use monster_util::{Error, Result};

/// Encode a boolean column.
pub fn encode(vals: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; vals.len().div_ceil(8)];
    for (i, &v) in vals.iter().enumerate() {
        if v {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Decode `count` booleans into a fresh vector.
pub fn decode(data: &[u8], count: usize) -> Result<Vec<bool>> {
    let mut out = Vec::with_capacity(count);
    decode_into(data, count, &mut out)?;
    Ok(out)
}

/// Decode `count` booleans into `out`, clearing it first (the array fast
/// path; scans reuse the buffer so warm decodes never allocate).
pub fn decode_into(data: &[u8], count: usize, out: &mut Vec<bool>) -> Result<()> {
    if data.len() < count.div_ceil(8) {
        return Err(Error::Corrupt("bool column truncated".into()));
    }
    out.clear();
    out.reserve(count);
    out.extend((0..count).map(|i| data[i / 8] & (1 << (i % 8)) != 0));
    Ok(())
}

/// Point-at-a-time streaming decoder — the reference implementation the
/// array path is proptested against.
pub struct Iter<'a> {
    data: &'a [u8],
    i: usize,
    count: usize,
}

/// Stream `count` booleans out of an encoded block one at a time.
pub fn iter(data: &[u8], count: usize) -> Iter<'_> {
    Iter { data, i: 0, count }
}

impl Iterator for Iter<'_> {
    type Item = Result<bool>;

    fn next(&mut self) -> Option<Result<bool>> {
        if self.i >= self.count {
            return None;
        }
        let i = self.i;
        self.i += 1;
        Some(match self.data.get(i / 8) {
            Some(byte) => Ok(byte & (1 << (i % 8)) != 0),
            None => Err(Error::Corrupt("bool column truncated".into())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            let vals: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let enc = encode(&vals);
            assert_eq!(decode(&enc, n).unwrap(), vals);
            let streamed: Vec<bool> = iter(&enc, n).map(|r| r.unwrap()).collect();
            assert_eq!(streamed, vals);
            let mut buf = vec![true; 3];
            decode_into(&enc, n, &mut buf).unwrap();
            assert_eq!(buf, vals);
        }
    }

    #[test]
    fn density_is_one_bit() {
        assert_eq!(encode(&[true; 64]).len(), 8);
        assert_eq!(encode(&[false; 65]).len(), 9);
    }

    #[test]
    fn truncation_detected() {
        assert!(decode(&[0xFF], 9).is_err());
        assert!(decode(&[], 1).is_err());
        assert!(decode(&[], 0).is_ok());
    }
}
