//! Boolean column codec: one bit per value.

use monster_util::{Error, Result};

/// Encode a boolean column.
pub fn encode(vals: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; vals.len().div_ceil(8)];
    for (i, &v) in vals.iter().enumerate() {
        if v {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Decode `count` booleans.
pub fn decode(data: &[u8], count: usize) -> Result<Vec<bool>> {
    if data.len() < count.div_ceil(8) {
        return Err(Error::Corrupt("bool column truncated".into()));
    }
    Ok((0..count).map(|i| data[i / 8] & (1 << (i % 8)) != 0).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            let vals: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            assert_eq!(decode(&encode(&vals), n).unwrap(), vals);
        }
    }

    #[test]
    fn density_is_one_bit() {
        assert_eq!(encode(&[true; 64]).len(), 8);
        assert_eq!(encode(&[false; 65]).len(), 9);
    }

    #[test]
    fn truncation_detected() {
        assert!(decode(&[0xFF], 9).is_err());
        assert!(decode(&[], 1).is_err());
        assert!(decode(&[], 0).is_ok());
    }
}
