//! Block codecs for columnar storage.
//!
//! Each sealed block stores one column's worth of data for up to
//! [`crate::column::BLOCK_SIZE`] points:
//!
//! * [`timestamps`] — Gorilla delta-of-delta (regular 60 s collection
//!   cadence encodes to ~1 bit per sample);
//! * [`floats`] — Gorilla XOR float compression (slow-moving sensor
//!   readings share exponents/mantissa prefixes);
//! * [`ints`] — zig-zag varint delta (epoch times, binary state codes);
//! * [`bools`] — bit packing;
//! * [`strings`] — per-block dictionary or raw, whichever encodes
//!   smaller (job-list strings repeat heavily between adjacent
//!   intervals; all-distinct blocks skip the dictionary overhead).

pub mod bools;
pub mod floats;
pub mod ints;
pub mod strings;
pub mod timestamps;
