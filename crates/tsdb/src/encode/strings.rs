//! String column codec: per-block dictionary *or* raw, whichever is
//! smaller.
//!
//! MonSTer's string fields repeat heavily — the same job list appears in
//! consecutive intervals, health strings cycle through a tiny vocabulary —
//! so a block dictionary captures most of the redundancy. But an
//! all-distinct block (job IDs, free-form messages) pays the dictionary
//! overhead twice: every string stored once in the dictionary *plus* one
//! index per value. The encoder builds both layouts and keeps the
//! smaller, stamping the choice in a leading mode byte.
//!
//! Layout: `mode u8 | payload` where mode is
//!
//! * `0x00` (raw): `(len varint, bytes)*` — `count` strings in order;
//! * `0x01` (dict): `dict_len varint | (len varint, bytes)* |
//!   (index varint)*`.

use monster_util::{Error, Result};
use std::collections::HashMap;

const MODE_RAW: u8 = 0x00;
const MODE_DICT: u8 = 0x01;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or_else(|| Error::Corrupt("string column truncated".into()))?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Corrupt("string varint overlong".into()));
        }
    }
}

fn encode_dict(vals: &[String]) -> Vec<u8> {
    let mut dict: Vec<&str> = Vec::new();
    let mut lookup: HashMap<&str, u64> = HashMap::new();
    let mut indices: Vec<u64> = Vec::with_capacity(vals.len());
    for v in vals {
        let idx = *lookup.entry(v.as_str()).or_insert_with(|| {
            dict.push(v.as_str());
            (dict.len() - 1) as u64
        });
        indices.push(idx);
    }
    let mut out = vec![MODE_DICT];
    push_varint(&mut out, dict.len() as u64);
    for s in &dict {
        push_varint(&mut out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
    for idx in indices {
        push_varint(&mut out, idx);
    }
    out
}

fn encode_raw(vals: &[String]) -> Vec<u8> {
    let mut out = vec![MODE_RAW];
    for v in vals {
        push_varint(&mut out, v.len() as u64);
        out.extend_from_slice(v.as_bytes());
    }
    out
}

/// Encode a string column, choosing dictionary or raw layout per block by
/// encoded size (ties go to raw — simpler to decode).
pub fn encode(vals: &[String]) -> Vec<u8> {
    let dict = encode_dict(vals);
    let raw = encode_raw(vals);
    if dict.len() < raw.len() {
        dict
    } else {
        raw
    }
}

fn read_string(data: &[u8], pos: &mut usize) -> Result<String> {
    let len = read_varint(data, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= data.len())
        .ok_or_else(|| Error::Corrupt("string entry truncated".into()))?;
    let s = std::str::from_utf8(&data[*pos..end])
        .map_err(|_| Error::Corrupt("string entry not UTF-8".into()))?;
    *pos = end;
    Ok(s.to_string())
}

/// Decode `count` strings into a fresh vector.
pub fn decode(data: &[u8], count: usize) -> Result<Vec<String>> {
    let mut out = Vec::with_capacity(count);
    decode_into(data, count, &mut out)?;
    Ok(out)
}

/// Decode `count` strings into `out`, clearing it first. String payloads
/// still allocate (each value owns its bytes), but the outer vector is
/// reused by scan scratch buffers like the numeric codecs.
pub fn decode_into(data: &[u8], count: usize, out: &mut Vec<String>) -> Result<()> {
    out.clear();
    out.reserve(count);
    let mut pos = 0usize;
    let mode = *data.first().ok_or_else(|| Error::Corrupt("string column empty".into()))?;
    pos += 1;
    match mode {
        MODE_RAW => {
            for _ in 0..count {
                out.push(read_string(data, &mut pos)?);
            }
            Ok(())
        }
        MODE_DICT => {
            let dict = read_dict(data, &mut pos)?;
            for _ in 0..count {
                let idx = read_varint(data, &mut pos)? as usize;
                let s = dict
                    .get(idx)
                    .ok_or_else(|| Error::Corrupt("string index out of range".into()))?;
                out.push(s.clone());
            }
            Ok(())
        }
        other => Err(Error::Corrupt(format!("unknown string column mode {other:#04x}"))),
    }
}

fn read_dict(data: &[u8], pos: &mut usize) -> Result<Vec<String>> {
    let dict_len = read_varint(data, pos)? as usize;
    if dict_len > data.len() {
        return Err(Error::Corrupt("string dict length implausible".into()));
    }
    let mut dict: Vec<String> = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        dict.push(read_string(data, pos)?);
    }
    Ok(dict)
}

/// Point-at-a-time streaming decoder. Dictionary blocks materialize the
/// dictionary once up front, then stream indices; raw blocks stream
/// straight off the wire. The reference the array path is proptested
/// against.
pub struct Iter<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
    /// `Some(dict)` in dictionary mode, `None` in raw mode.
    dict: Option<Vec<String>>,
    /// A header parse error to surface on the first `next` call.
    failed: Option<Error>,
}

/// Stream `count` strings out of an encoded block one at a time.
pub fn iter(data: &[u8], count: usize) -> Iter<'_> {
    let mut it = Iter { data, pos: 0, remaining: count, dict: None, failed: None };
    match data.first() {
        None => it.failed = Some(Error::Corrupt("string column empty".into())),
        Some(&MODE_RAW) => it.pos = 1,
        Some(&MODE_DICT) => {
            it.pos = 1;
            match read_dict(data, &mut it.pos) {
                Ok(dict) => it.dict = Some(dict),
                Err(e) => it.failed = Some(e),
            }
        }
        Some(&other) => {
            it.failed = Some(Error::Corrupt(format!("unknown string column mode {other:#04x}")))
        }
    }
    it
}

impl Iterator for Iter<'_> {
    type Item = Result<String>;

    fn next(&mut self) -> Option<Result<String>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if let Some(e) = self.failed.take() {
            self.remaining = 0;
            return Some(Err(e));
        }
        Some(match &self.dict {
            None => read_string(self.data, &mut self.pos),
            Some(dict) => read_varint(self.data, &mut self.pos).and_then(|idx| {
                dict.get(idx as usize)
                    .cloned()
                    .ok_or_else(|| Error::Corrupt("string index out of range".into()))
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(vals: &[&str]) {
        let owned: Vec<String> = vals.iter().map(|s| s.to_string()).collect();
        let enc = encode(&owned);
        assert_eq!(decode(&enc, owned.len()).unwrap(), owned);
        let streamed: Vec<String> = iter(&enc, owned.len()).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, owned);
        let mut buf = vec!["residue".to_string()];
        decode_into(&enc, owned.len(), &mut buf).unwrap();
        assert_eq!(buf, owned);
    }

    #[test]
    fn round_trips() {
        rt(&[]);
        rt(&["a"]);
        rt(&["", "", ""]);
        rt(&["Warning", "Error", "Warning", "OK", "OK", "OK"]);
        rt(&["ünïcode", "😀", "plain"]);
    }

    #[test]
    fn repeated_job_lists_dedupe() {
        let list = "['1291784', '1318962', '1318307', '1318324']";
        let vals: Vec<String> = (0..500).map(|_| list.to_string()).collect();
        let enc = encode(&vals);
        assert_eq!(enc[0], 0x01, "repetitive block should pick the dictionary");
        // One dictionary entry + 500 single-byte indices.
        assert!(enc.len() < list.len() + 520, "got {}", enc.len());
        assert_eq!(decode(&enc, 500).unwrap(), vals);
    }

    #[test]
    fn high_cardinality_still_correct() {
        let vals: Vec<String> = (0..300).map(|i| format!("job-{i}")).collect();
        assert_eq!(decode(&encode(&vals), 300).unwrap(), vals);
    }

    #[test]
    fn all_distinct_blocks_pick_raw_and_shrink() {
        let vals: Vec<String> = (0..300).map(|i| format!("message-{i}")).collect();
        let enc = encode(&vals);
        assert_eq!(enc[0], 0x00, "distinct block should pick raw");
        // Raw skips the per-value index bytes the dictionary would add.
        let dict = super::encode_dict(&vals);
        assert!(enc.len() < dict.len(), "raw {} vs dict {}", enc.len(), dict.len());
        assert_eq!(decode(&enc, 300).unwrap(), vals);
    }

    #[test]
    fn both_modes_round_trip_explicitly() {
        let vals: Vec<String> = vec!["a".into(), "b".into(), "a".into()];
        for enc in [super::encode_raw(&vals), super::encode_dict(&vals)] {
            assert_eq!(decode(&enc, 3).unwrap(), vals);
        }
    }

    #[test]
    fn corruption_detected() {
        let vals: Vec<String> = vec!["abc".into(), "def".into()];
        let enc = encode(&vals);
        assert!(decode(&enc[..2], 2).is_err());
        assert!(decode(&[], 1).is_err());
        // Unknown mode byte.
        assert!(decode(&[0xFF, 0xFF, 0xFF, 0x7F], 1).is_err());
        // Absurd dictionary size.
        assert!(decode(&[0x01, 0xFF, 0xFF, 0xFF, 0x7F], 1).is_err());
    }
}
