//! String column codec: per-block dictionary + varint indices.
//!
//! MonSTer's string fields repeat heavily — the same job list appears in
//! consecutive intervals, health strings cycle through a tiny vocabulary —
//! so a block dictionary captures most of the redundancy.
//!
//! Layout: `dict_len varint | (len varint, bytes)* | (index varint)*`.

use monster_util::{Error, Result};
use std::collections::HashMap;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or_else(|| Error::Corrupt("string column truncated".into()))?;
        *pos += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Corrupt("string varint overlong".into()));
        }
    }
}

/// Encode a string column.
pub fn encode(vals: &[String]) -> Vec<u8> {
    let mut dict: Vec<&str> = Vec::new();
    let mut lookup: HashMap<&str, u64> = HashMap::new();
    let mut indices: Vec<u64> = Vec::with_capacity(vals.len());
    for v in vals {
        let idx = *lookup.entry(v.as_str()).or_insert_with(|| {
            dict.push(v.as_str());
            (dict.len() - 1) as u64
        });
        indices.push(idx);
    }
    let mut out = Vec::new();
    push_varint(&mut out, dict.len() as u64);
    for s in &dict {
        push_varint(&mut out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
    for idx in indices {
        push_varint(&mut out, idx);
    }
    out
}

/// Decode `count` strings.
pub fn decode(data: &[u8], count: usize) -> Result<Vec<String>> {
    let mut pos = 0usize;
    let dict_len = read_varint(data, &mut pos)? as usize;
    if dict_len > data.len() {
        return Err(Error::Corrupt("string dict length implausible".into()));
    }
    let mut dict: Vec<String> = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let len = read_varint(data, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| Error::Corrupt("string entry truncated".into()))?;
        let s = std::str::from_utf8(&data[pos..end])
            .map_err(|_| Error::Corrupt("string entry not UTF-8".into()))?;
        dict.push(s.to_string());
        pos = end;
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let idx = read_varint(data, &mut pos)? as usize;
        let s = dict.get(idx).ok_or_else(|| Error::Corrupt("string index out of range".into()))?;
        out.push(s.clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(vals: &[&str]) {
        let owned: Vec<String> = vals.iter().map(|s| s.to_string()).collect();
        assert_eq!(decode(&encode(&owned), owned.len()).unwrap(), owned);
    }

    #[test]
    fn round_trips() {
        rt(&[]);
        rt(&["a"]);
        rt(&["", "", ""]);
        rt(&["Warning", "Error", "Warning", "OK", "OK", "OK"]);
        rt(&["ünïcode", "😀", "plain"]);
    }

    #[test]
    fn repeated_job_lists_dedupe() {
        let list = "['1291784', '1318962', '1318307', '1318324']";
        let vals: Vec<String> = (0..500).map(|_| list.to_string()).collect();
        let enc = encode(&vals);
        // One dictionary entry + 500 single-byte indices.
        assert!(enc.len() < list.len() + 520, "got {}", enc.len());
    }

    #[test]
    fn high_cardinality_still_correct() {
        let vals: Vec<String> = (0..300).map(|i| format!("job-{i}")).collect();
        assert_eq!(decode(&encode(&vals), 300).unwrap(), vals);
    }

    #[test]
    fn corruption_detected() {
        let vals: Vec<String> = vec!["abc".into(), "def".into()];
        let enc = encode(&vals);
        assert!(decode(&enc[..2], 2).is_err());
        // Absurd dictionary size.
        assert!(decode(&[0xFF, 0xFF, 0xFF, 0x7F], 1).is_err());
    }
}
