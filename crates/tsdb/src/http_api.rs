//! The database's HTTP surface — the wire between the paper's hosts.
//!
//! Table III puts the Metrics Collector, the storage service, and the
//! Metrics Builder on three separate machines: the collector *writes* to
//! InfluxDB over HTTP and the builder *queries* it over HTTP. This module
//! provides that surface, shaped like InfluxDB 1.x's API:
//!
//! ```text
//! POST /write            — line-protocol batch in the body
//! GET  /query?q=<influxql>          — data or SHOW meta-queries
//! POST /query?q=DROP MEASUREMENT m  — destructive statements
//! GET  /ping             — liveness (204)
//! ```
//!
//! plus [`RemoteDb`], the client used by services on other hosts. Query
//! responses carry the physical [`QueryCost`] counters in
//! `X-Cost-*` headers so remote callers can keep driving the simulated
//! timing model.

use crate::db::Db;
use crate::lineproto;
use crate::query::MetaQuery;
use crate::QueryCost;
use monster_http::{Client, Method, PersistentClient, Request, Response, Router, Status};
use monster_json::{jobj, Value};
use monster_util::{Error, Result};
use std::net::SocketAddr;
use std::sync::Arc;

/// Build the database's router.
pub fn router(db: Arc<Db>) -> Router {
    let write_db = Arc::clone(&db);
    let query_db = Arc::clone(&db);
    let drop_db = Arc::clone(&db);
    Router::new()
        .route(Method::Get, "/ping", |_, _| Response {
            status: Status::NO_CONTENT,
            headers: Default::default(),
            body: monster_http::Body::empty(),
        })
        .route(Method::Post, "/write", move |req, _| {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return Response::error(Status::BAD_REQUEST, "body is not UTF-8");
            };
            match lineproto::parse_batch(text) {
                Ok(points) => match write_db.write_batch(&points) {
                    Ok(()) => Response {
                        status: Status::NO_CONTENT,
                        headers: Default::default(),
                        body: monster_http::Body::empty(),
                    },
                    Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
                },
                Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
            }
        })
        .route(Method::Get, "/query", move |req, _| {
            let Some(q) = req.query_param("q") else {
                return Response::error(Status::BAD_REQUEST, "missing q parameter");
            };
            // URL-ish decoding: '+' and %20 as spaces, %27 as quote (the
            // characters our queries use).
            let q = decode_query(q);
            if q.trim().to_ascii_uppercase().starts_with("SHOW") {
                return match MetaQuery::parse(&q) {
                    Ok(mq) => {
                        let rows: Vec<Value> =
                            mq.run(&query_db).into_iter().map(Value::from).collect();
                        Response::json(&jobj! { "results" => Value::Array(rows) })
                    }
                    Err(e) => Response::error(Status::BAD_REQUEST, &e.to_string()),
                };
            }
            match query_db.query_str(&q) {
                Ok((rs, cost)) => {
                    let mut resp = Response::json(&result_set_to_json(&rs));
                    attach_cost(&mut resp, &cost);
                    resp
                }
                Err(Error::Parse(m)) | Err(Error::Invalid(m)) => {
                    Response::error(Status::BAD_REQUEST, &m)
                }
                Err(e) => Response::error(Status::INTERNAL_ERROR, &e.to_string()),
            }
        })
        .route(Method::Post, "/query", move |req, _| {
            let Some(q) = req.query_param("q") else {
                return Response::error(Status::BAD_REQUEST, "missing q parameter");
            };
            let q = decode_query(q);
            let upper = q.trim().to_ascii_uppercase();
            if let Some(rest) = upper.strip_prefix("DROP MEASUREMENT") {
                // Use the original casing for the measurement name.
                let name = q.trim()[q.trim().len() - rest.trim().len()..].trim();
                let dropped = drop_db.drop_measurement(name);
                return Response::json(&jobj! { "dropped_series" => dropped as i64 });
            }
            Response::error(Status::BAD_REQUEST, "only DROP MEASUREMENT is POSTable")
        })
}

fn decode_query(q: &str) -> String {
    q.replace('+', " ")
        .replace("%20", " ")
        .replace("%27", "'")
        .replace("%3D", "=")
        .replace("%3E", ">")
        .replace("%3C", "<")
}

fn encode_query(q: &str) -> String {
    q.replace('=', "%3D")
        .replace('>', "%3E")
        .replace('<', "%3C")
        .replace('\'', "%27")
        .replace(' ', "+")
}

/// Serialize a result set the way InfluxDB 1.x does (series → columns +
/// values).
fn result_set_to_json(rs: &crate::ResultSet) -> Value {
    let series: Vec<Value> = rs
        .series
        .iter()
        .map(|s| {
            let tags: Vec<Value> = s
                .key
                .tags
                .iter()
                .map(|(k, v)| jobj! { "key" => k.as_str(), "value" => v.as_str() })
                .collect();
            let values: Vec<Value> = s
                .points
                .iter()
                .map(|(t, v)| {
                    let val = match v.as_f64() {
                        Some(x) => Value::Float(x),
                        None => Value::Str(v.as_str().unwrap_or_default().to_string()),
                    };
                    Value::Array(vec![Value::Int(t.as_secs()), val])
                })
                .collect();
            jobj! {
                "name" => s.key.measurement.as_str(),
                "tags" => Value::Array(tags),
                "columns" => vec!["time", "value"],
                "values" => Value::Array(values),
            }
        })
        .collect();
    jobj! { "results" => Value::Array(series) }
}

fn attach_cost(resp: &mut Response, cost: &QueryCost) {
    resp.headers.set("X-Cost-Points", cost.points.to_string());
    resp.headers.set("X-Cost-Bytes", cost.bytes.to_string());
    resp.headers.set("X-Cost-Blocks", cost.blocks.to_string());
    resp.headers.set("X-Cost-Bytes-Cold", cost.bytes_cold.to_string());
    resp.headers.set("X-Cost-Blocks-Cold", cost.blocks_cold.to_string());
    resp.headers.set("X-Cost-Summarized", cost.blocks_summarized.to_string());
    resp.headers.set("X-Cost-Series", cost.series.to_string());
    resp.headers.set("X-Cost-Index", cost.index_entries.to_string());
    resp.headers.set("X-Cost-Shards", cost.shards_scanned.to_string());
}

fn extract_cost(resp: &Response) -> QueryCost {
    let get = |name: &str| resp.headers.get(name).and_then(|v| v.parse().ok()).unwrap_or(0);
    QueryCost {
        points: get("X-Cost-Points"),
        bytes: get("X-Cost-Bytes"),
        blocks: get("X-Cost-Blocks"),
        bytes_cold: get("X-Cost-Bytes-Cold"),
        blocks_cold: get("X-Cost-Blocks-Cold"),
        blocks_summarized: get("X-Cost-Summarized"),
        series: get("X-Cost-Series"),
        index_entries: get("X-Cost-Index"),
        shards_scanned: get("X-Cost-Shards"),
        queries: 1,
    }
}

/// A client for a database served on another host, mirroring the local
/// [`Db`] surface the collector and builder use.
pub struct RemoteDb {
    client: PersistentClient,
}

impl RemoteDb {
    /// Connect to a database service.
    pub fn connect(addr: SocketAddr) -> RemoteDb {
        RemoteDb { client: PersistentClient::new(addr, Client::new()) }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        let resp = self.client.send(&Request::get("/ping"))?;
        if resp.status == Status::NO_CONTENT {
            Ok(())
        } else {
            Err(Error::Http { status: resp.status.0, message: "ping failed".into() })
        }
    }

    /// Write a batch of points (line protocol over the wire).
    pub fn write_batch(&mut self, points: &[crate::DataPoint]) -> Result<()> {
        let body = lineproto::encode_batch(points).into_bytes();
        let mut req = Request::get("/write");
        req.method = Method::Post;
        req.body = body;
        let resp = self.client.send(&req)?;
        if resp.status == Status::NO_CONTENT {
            Ok(())
        } else {
            Err(Error::Http {
                status: resp.status.0,
                message: String::from_utf8_lossy(&resp.body).into_owned(),
            })
        }
    }

    /// Run a query remotely; returns per-series `(tags, points)` rows plus
    /// the server-reported physical cost.
    pub fn query_str(&mut self, q: &str) -> Result<(Value, QueryCost)> {
        let req = Request::get(&format!("/query?q={}", encode_query(q)));
        let resp = self.client.send(&req)?;
        if !resp.status.is_success() {
            return Err(Error::Http {
                status: resp.status.0,
                message: String::from_utf8_lossy(&resp.body).into_owned(),
            });
        }
        let cost = extract_cost(&resp);
        Ok((resp.json_body()?, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataPoint, DbConfig};
    use monster_http::Server;
    use monster_util::EpochSecs;

    fn served() -> (Server, Arc<Db>) {
        let db = Arc::new(Db::new(DbConfig::default()));
        let server = Server::spawn(0, router(Arc::clone(&db))).unwrap();
        (server, db)
    }

    fn points(n: i64) -> Vec<DataPoint> {
        (0..n)
            .map(|i| {
                DataPoint::new("Power", EpochSecs::new(i * 60))
                    .tag("NodeId", "10.101.1.1")
                    .tag("Label", "NodePower")
                    .field_f64("Reading", 250.0 + i as f64)
            })
            .collect()
    }

    #[test]
    fn ping_write_query_round_trip() {
        let (server, db) = served();
        let mut remote = RemoteDb::connect(server.addr());
        remote.ping().unwrap();
        remote.write_batch(&points(120)).unwrap();
        assert_eq!(db.stats().points, 120);

        let (doc, cost) = remote
            .query_str(
                "SELECT max(Reading) FROM Power WHERE NodeId='10.101.1.1' AND \
                 time >= 0 AND time < 7200 GROUP BY time(10m)",
            )
            .unwrap();
        let series = doc.get("results").unwrap().as_array().unwrap();
        assert_eq!(series.len(), 1);
        let values = series[0].get("values").unwrap().as_array().unwrap();
        assert_eq!(values.len(), 12);
        // First window max: samples 0..9 → 259.
        assert_eq!(values[0].at(1).unwrap().as_f64(), Some(259.0));
        assert!(cost.points >= 120);
        assert!(cost.bytes > 0);
    }

    #[test]
    fn show_queries_over_http() {
        let (server, _db) = served();
        let mut remote = RemoteDb::connect(server.addr());
        remote.write_batch(&points(3)).unwrap();
        let (doc, _) = remote.query_str("SHOW MEASUREMENTS").unwrap();
        let rows = doc.get("results").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].as_str(), Some("Power"));
    }

    #[test]
    fn drop_measurement_over_http() {
        let (server, db) = served();
        let mut remote = RemoteDb::connect(server.addr());
        remote.write_batch(&points(5)).unwrap();
        let client = Client::new();
        let mut req = Request::get("/query?q=DROP+MEASUREMENT+Power");
        req.method = Method::Post;
        let resp = client.send_ok(server.addr(), &req).unwrap();
        assert_eq!(resp.json_body().unwrap().get("dropped_series").unwrap().as_i64(), Some(1));
        assert_eq!(db.stats().points, 0);
    }

    #[test]
    fn bad_inputs_are_400() {
        let (server, _db) = served();
        let client = Client::new();
        // Bad line protocol.
        let mut req = Request::get("/write");
        req.method = Method::Post;
        req.body = b"not line protocol".to_vec();
        assert_eq!(client.send(server.addr(), &req).unwrap().status, Status::BAD_REQUEST);
        // Bad query.
        let resp = client.send(server.addr(), &Request::get("/query?q=SELEKT+nope")).unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        // Missing q.
        let resp = client.send(server.addr(), &Request::get("/query")).unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
    }

    #[test]
    fn type_conflicts_surface_as_400() {
        let (server, _db) = served();
        let mut remote = RemoteDb::connect(server.addr());
        remote.write_batch(&points(1)).unwrap();
        let conflict = vec![DataPoint::new("Power", EpochSecs::new(999))
            .tag("NodeId", "10.101.1.1")
            .tag("Label", "NodePower")
            .field_str("Reading", "oops")];
        let err = remote.write_batch(&conflict).unwrap_err();
        assert!(matches!(err, Error::Http { status: 400, .. }), "{err}");
    }
}
