//! Synthetic user population and arrival process.
//!
//! Reproduces the workload texture visible in the paper's Fig. 6 timeline:
//! a handful of MPI users submitting multi-node jobs (user "jieyao": 2 jobs
//! × 58 hosts), array-job users flooding the queue with single-core tasks
//! (user "abdumal": 997 jobs on 29 hosts), and a long tail of serial users.
//! Arrivals are Poisson per user with day/night modulation.

use crate::job::{JobId, JobShape, JobSpec};
use crate::qmaster::Qmaster;
use monster_sim::SimRng;
use monster_util::{EpochSecs, UserName};

/// A user's behavioural profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserProfile {
    /// Multi-node MPI jobs, long runtimes.
    Mpi,
    /// Large array jobs of short single-core tasks.
    Array,
    /// Small serial/threaded jobs.
    Serial,
}

/// Workload generator configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// MPI users.
    pub mpi_users: usize,
    /// Array-job users.
    pub array_users: usize,
    /// Serial users.
    pub serial_users: usize,
    /// Mean submissions per user per day (before array fan-out).
    pub submissions_per_user_day: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mpi_users: 4,
            array_users: 3,
            serial_users: 18,
            submissions_per_user_day: 6.0,
            seed: 2019,
        }
    }
}

/// Generates submissions and feeds them to a qmaster.
pub struct WorkloadGenerator {
    users: Vec<(UserName, UserProfile)>,
    rng: SimRng,
    config: WorkloadConfig,
    /// Array-parent counter for ArrayTask shapes.
    next_array_parent: u64,
}

/// Paper-cast user names for the first few generated users, so examples
/// and the Fig. 6 reproduction read like the original.
const MPI_NAMES: [&str; 4] = ["jieyao", "mariegrl", "dchen", "tngo"];
const ARRAY_NAMES: [&str; 3] = ["abdumal", "ghazali", "jhass"];

impl WorkloadGenerator {
    /// Build the user population.
    pub fn new(config: WorkloadConfig) -> Self {
        let mut users = Vec::new();
        for i in 0..config.mpi_users {
            let name = MPI_NAMES.get(i).map(|s| s.to_string()).unwrap_or_else(|| format!("mpi{i}"));
            users.push((UserName::new(name), UserProfile::Mpi));
        }
        for i in 0..config.array_users {
            let name =
                ARRAY_NAMES.get(i).map(|s| s.to_string()).unwrap_or_else(|| format!("arr{i}"));
            users.push((UserName::new(name), UserProfile::Array));
        }
        for i in 0..config.serial_users {
            users.push((UserName::new(format!("user{i:02}")), UserProfile::Serial));
        }
        let rng = SimRng::derive(config.seed, "workload");
        WorkloadGenerator { users, rng, config, next_array_parent: 900_000 }
    }

    /// The user population.
    pub fn users(&self) -> &[(UserName, UserProfile)] {
        &self.users
    }

    /// Generate all submissions in `[start, end)` and enqueue them on the
    /// qmaster. Returns the number of jobs submitted (array tasks counted
    /// individually, as UGE's qstat does).
    pub fn drive(&mut self, qm: &mut Qmaster, start: EpochSecs, end: EpochSecs) -> usize {
        let mut submitted = 0;
        let horizon = end - start;
        let users = self.users.clone();
        for (user, profile) in users {
            // Poisson arrivals: exponential gaps with day/night modulation.
            let mean_gap = 86_400.0 / self.config.submissions_per_user_day;
            let mut t = start + self.rng.exponential(mean_gap * 0.5) as i64;
            while t < end {
                submitted += self.submit_one(qm, &user, profile, t);
                let hour = (t.as_secs() % 86_400) / 3_600;
                // Nights are quieter: stretch the gap.
                let night_factor = if (1..7).contains(&hour) { 2.5 } else { 1.0 };
                t = t + (self.rng.exponential(mean_gap) * night_factor) as i64 + 1;
            }
            let _ = horizon;
        }
        submitted
    }

    fn submit_one(
        &mut self,
        qm: &mut Qmaster,
        user: &UserName,
        profile: UserProfile,
        at: EpochSecs,
    ) -> usize {
        match profile {
            UserProfile::Mpi => {
                let nodes = *self.rng.pick(&[4u32, 8, 16, 29, 58]);
                qm.submit_at(
                    at,
                    JobSpec {
                        user: user.clone(),
                        name: format!("mpi_{nodes}n.sh"),
                        shape: JobShape::Parallel { nodes },
                        runtime_secs: self.rng.lognormal(7_200.0, 0.8) as i64 + 60,
                        priority: 0,
                        mem_per_slot_gib: self.rng.uniform(1.0, 3.0),
                    },
                );
                1
            }
            UserProfile::Array => {
                let tasks = *self.rng.pick(&[50usize, 100, 250, 500, 997]);
                let parent = JobId(self.next_array_parent);
                self.next_array_parent += 1;
                let runtime = self.rng.lognormal(1_200.0, 0.6) as i64 + 30;
                let mem = self.rng.uniform(0.3, 1.5);
                for i in 0..tasks {
                    qm.submit_at(
                        at,
                        JobSpec {
                            user: user.clone(),
                            name: format!("array_{parent}.{i}"),
                            shape: JobShape::ArrayTask { parent, index: i as u32 },
                            runtime_secs: runtime,
                            priority: 0,
                            mem_per_slot_gib: mem,
                        },
                    );
                }
                tasks
            }
            UserProfile::Serial => {
                let slots = *self.rng.pick(&[1u32, 1, 2, 4, 8, 12]);
                qm.submit_at(
                    at,
                    JobSpec {
                        user: user.clone(),
                        name: "serial.sh".into(),
                        shape: JobShape::Serial { slots },
                        runtime_secs: self.rng.lognormal(3_600.0, 1.0) as i64 + 30,
                        priority: 0,
                        mem_per_slot_gib: self.rng.uniform(0.5, 4.0),
                    },
                );
                1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmaster::QmasterConfig;

    fn run_day(nodes: usize, seed: u64) -> (Qmaster, usize) {
        let cfg = QmasterConfig { nodes, ..QmasterConfig::default() };
        let t0 = cfg.start_time;
        let mut qm = Qmaster::new(cfg);
        let mut gen = WorkloadGenerator::new(WorkloadConfig { seed, ..WorkloadConfig::default() });
        let n = gen.drive(&mut qm, t0, t0 + 86_400);
        qm.run_until(t0 + 86_400);
        (qm, n)
    }

    #[test]
    fn population_has_paper_cast() {
        let gen = WorkloadGenerator::new(WorkloadConfig::default());
        let names: Vec<&str> = gen.users().iter().map(|(u, _)| u.as_str()).collect();
        assert!(names.contains(&"jieyao"));
        assert!(names.contains(&"abdumal"));
        assert_eq!(gen.users().len(), 25);
    }

    #[test]
    fn one_day_produces_realistic_mix() {
        let (qm, submitted) = run_day(64, 42);
        assert!(submitted > 100, "submitted {submitted}");
        // Mixture of states exists.
        let done = qm.finished_jobs().len();
        let running = qm.running_jobs().len();
        assert!(done > 0, "no jobs finished");
        assert!(running > 0, "nothing running at day end");
        // Array users produced single-slot tasks; MPI users multi-node.
        let any_array = qm.jobs().any(|j| matches!(j.spec.shape, JobShape::ArrayTask { .. }));
        let any_mpi = qm.jobs().any(|j| matches!(j.spec.shape, JobShape::Parallel { .. }));
        assert!(any_array && any_mpi);
    }

    #[test]
    fn cluster_gets_utilized_but_not_corrupted() {
        let (qm, _) = run_day(32, 7);
        let mut total_util = 0.0;
        for n in qm.node_ids() {
            let u = qm.utilization(n);
            assert!((0.0..=1.0).contains(&u));
            total_util += u;
        }
        assert!(total_util > 1.0, "cluster idle all day");
    }

    #[test]
    fn deterministic_workload() {
        let (qm1, n1) = run_day(16, 99);
        let (qm2, n2) = run_day(16, 99);
        assert_eq!(n1, n2);
        assert_eq!(qm1.finished_jobs().len(), qm2.finished_jobs().len());
        assert_eq!(qm1.running_jobs().len(), qm2.running_jobs().len());
    }

    #[test]
    fn different_seeds_differ() {
        let (_, n1) = run_day(16, 1);
        let (_, n2) = run_day(16, 2);
        assert_ne!(n1, n2);
    }
}
