//! Slurm-flavoured facade.
//!
//! §III-B2: "Metrics Collector also supports query metrics from Slurm".
//! MonSTer is scheduler-agnostic by speaking to a small trait; this module
//! provides the Slurm dialect over the same simulated cluster state, with
//! payloads shaped like `slurmrestd` (`/slurm/v0.0.36/nodes`, `/jobs`).

use crate::host::LoadReport;
use crate::job::{Job, JobState};
use crate::qmaster::Qmaster;
use monster_json::{jobj, Value};

/// The scheduler-agnostic surface the collector consumes. UGE implements
/// it natively on [`Qmaster`]; [`SlurmView`] adapts the same state.
pub trait ResourceManager {
    /// Node-level load reports.
    fn node_reports(&self) -> Vec<LoadReport>;
    /// All known jobs.
    fn job_table(&self) -> Vec<&Job>;
    /// Scheduler dialect name ("uge" / "slurm").
    fn dialect(&self) -> &'static str;
}

impl ResourceManager for Qmaster {
    fn node_reports(&self) -> Vec<LoadReport> {
        self.all_load_reports()
    }

    fn job_table(&self) -> Vec<&Job> {
        self.jobs().collect()
    }

    fn dialect(&self) -> &'static str {
        "uge"
    }
}

/// A Slurm-dialect view over a qmaster.
pub struct SlurmView<'a> {
    qm: &'a Qmaster,
}

impl<'a> SlurmView<'a> {
    /// Wrap a qmaster.
    pub fn new(qm: &'a Qmaster) -> Self {
        SlurmView { qm }
    }

    /// `GET /slurm/v0.0.36/nodes` equivalent.
    pub fn nodes_payload(&self) -> Value {
        let nodes: Vec<Value> = self
            .qm
            .all_load_reports()
            .iter()
            .map(|r| {
                jobj! {
                    "name" => r.node.label(),
                    "address" => r.node.bmc_addr(),
                    "state" => if self.qm.host_available(r.node) {
                        if r.cpu_usage > 0.0 { "allocated" } else { "idle" }
                    } else {
                        "down"
                    },
                    "cpus" => 36i64,
                    "alloc_cpus" => (r.cpu_usage * 36.0).round() as i64,
                    "real_memory" => (r.mem_total_gib * 1024.0) as i64,
                    "alloc_memory" => (r.mem_used_gib * 1024.0) as i64,
                }
            })
            .collect();
        jobj! { "nodes" => Value::Array(nodes) }
    }

    /// `GET /slurm/v0.0.36/jobs` equivalent.
    pub fn jobs_payload(&self) -> Value {
        let jobs: Vec<Value> = self
            .qm
            .jobs()
            .map(|j| {
                let state = match &j.state {
                    JobState::Pending => "PENDING",
                    JobState::Running { .. } => "RUNNING",
                    JobState::Done { .. } => "COMPLETED",
                    JobState::Failed { .. } => "NODE_FAIL",
                };
                let (start, end) = match &j.state {
                    JobState::Pending => (None, None),
                    JobState::Running { start, .. } => (Some(*start), None),
                    JobState::Done { start, end, .. } | JobState::Failed { start, end, .. } => {
                        (Some(*start), Some(*end))
                    }
                };
                jobj! {
                    "job_id" => j.id.as_u64() as i64,
                    "user_name" => j.spec.user.as_str(),
                    "name" => j.spec.name.as_str(),
                    "job_state" => state,
                    "submit_time" => j.submit_time.as_secs(),
                    "start_time" => start.map(|t| t.as_secs()),
                    "end_time" => end.map(|t| t.as_secs()),
                    "cpus" => j.total_slots(crate::host::SLOTS_PER_NODE) as i64,
                    "nodes" => j.hosts().iter().map(|h| h.label()).collect::<Vec<_>>().join(","),
                }
            })
            .collect();
        jobj! { "jobs" => Value::Array(jobs) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobShape, JobSpec};
    use crate::qmaster::QmasterConfig;
    use monster_util::UserName;

    fn qm() -> Qmaster {
        let cfg = QmasterConfig { nodes: 4, ..QmasterConfig::default() };
        let t0 = cfg.start_time;
        let mut qm = Qmaster::new(cfg);
        qm.submit_at(
            t0 + 1,
            JobSpec {
                user: UserName::new("slurmfan"),
                name: "a.sh".into(),
                shape: JobShape::Serial { slots: 18 },
                runtime_secs: 50,
                priority: 0,
                mem_per_slot_gib: 1.0,
            },
        );
        qm.submit_at(
            t0 + 2,
            JobSpec {
                user: UserName::new("slurmfan"),
                name: "b.sh".into(),
                shape: JobShape::Serial { slots: 18 },
                runtime_secs: 100_000,
                priority: 0,
                mem_per_slot_gib: 1.0,
            },
        );
        qm.run_until(t0 + 600);
        qm
    }

    #[test]
    fn nodes_payload_shape() {
        let qm = qm();
        let v = SlurmView::new(&qm).nodes_payload();
        let nodes = v.get("nodes").unwrap().as_array().unwrap();
        assert_eq!(nodes.len(), 4);
        let busy =
            nodes.iter().filter(|n| n.get("state").unwrap().as_str() == Some("allocated")).count();
        assert_eq!(busy, 1);
        assert_eq!(nodes[0].get("cpus").unwrap().as_i64(), Some(36));
    }

    #[test]
    fn jobs_payload_tracks_states() {
        let qm = qm();
        let v = SlurmView::new(&qm).jobs_payload();
        let jobs = v.get("jobs").unwrap().as_array().unwrap();
        assert_eq!(jobs.len(), 2);
        let states: Vec<&str> =
            jobs.iter().map(|j| j.get("job_state").unwrap().as_str().unwrap()).collect();
        assert!(states.contains(&"COMPLETED"));
        assert!(states.contains(&"RUNNING"));
    }

    #[test]
    fn trait_unifies_dialects() {
        let qm = qm();
        let rm: &dyn ResourceManager = &qm;
        assert_eq!(rm.dialect(), "uge");
        assert_eq!(rm.node_reports().len(), 4);
        assert_eq!(rm.job_table().len(), 2);
    }
}
