//! Execution hosts: slot accounting and the per-node resource model.
//!
//! Each host runs an execution daemon that reports load to the qmaster
//! every 40 s (the UGE default the paper cites). The resource model turns
//! the set of running jobs into the CPU/memory/swap numbers Table II lists.

use crate::job::JobId;
use monster_util::{EpochSecs, NodeId};
use std::collections::BTreeMap;

/// Quanah node profile: 36 cores, 192 GiB RAM, 4 GiB swap.
pub const SLOTS_PER_NODE: u32 = 36;
/// Total RAM per node in GiB.
pub const MEM_TOTAL_GIB: f64 = 192.0;
/// Total swap per node in GiB.
pub const SWAP_TOTAL_GIB: f64 = 4.0;
/// Baseline OS memory footprint in GiB.
const MEM_BASE_GIB: f64 = 6.0;

/// One execution host.
#[derive(Debug, Clone)]
pub struct ExecHost {
    /// The node this daemon runs on.
    pub node: NodeId,
    /// Slots in use, keyed by job id (a job may hold several slots).
    allocations: BTreeMap<JobId, HostAllocation>,
    /// Whether the execd is responding. The qmaster marks hosts `false`
    /// after missed load reports and stops scheduling onto them.
    pub alive: bool,
    /// Last load-report time the qmaster received.
    pub last_report: EpochSecs,
}

/// A job's footprint on one host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostAllocation {
    /// Slots held.
    pub slots: u32,
    /// Memory held, GiB.
    pub mem_gib: f64,
}

/// A load report, as the execd sends and the collector later reads
/// (Table II's node-level metrics).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Reporting node.
    pub node: NodeId,
    /// CPU utilization 0..=1 (allocated slots / total, which is how UGE's
    /// np_load_avg looks for compute-bound HPC jobs).
    pub cpu_usage: f64,
    /// Total RAM, GiB.
    pub mem_total_gib: f64,
    /// RAM in use, GiB.
    pub mem_used_gib: f64,
    /// Total swap, GiB.
    pub swap_total_gib: f64,
    /// Swap in use, GiB.
    pub swap_used_gib: f64,
    /// Jobs currently on the node.
    pub job_list: Vec<JobId>,
}

impl ExecHost {
    /// A fresh, idle host.
    pub fn new(node: NodeId) -> Self {
        ExecHost { node, allocations: BTreeMap::new(), alive: true, last_report: EpochSecs::new(0) }
    }

    /// Slots currently allocated.
    pub fn slots_used(&self) -> u32 {
        self.allocations.values().map(|a| a.slots).sum()
    }

    /// Slots free for new work.
    pub fn slots_free(&self) -> u32 {
        SLOTS_PER_NODE - self.slots_used()
    }

    /// Jobs on this host.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.allocations.keys().copied().collect()
    }

    /// Whether `slots` more slots fit.
    pub fn fits(&self, slots: u32) -> bool {
        self.alive && self.slots_free() >= slots
    }

    /// Allocate slots to a job. Panics if it does not fit (schedulers must
    /// check [`fits`](Self::fits) first).
    pub fn allocate(&mut self, job: JobId, slots: u32, mem_gib: f64) {
        assert!(self.fits(slots), "over-allocating host {}", self.node);
        let prev = self.allocations.insert(job, HostAllocation { slots, mem_gib });
        assert!(prev.is_none(), "job {job} double-allocated on {}", self.node);
    }

    /// Release a job's slots (no-op if absent, e.g. already cleaned up).
    pub fn release(&mut self, job: JobId) {
        self.allocations.remove(&job);
    }

    /// Memory in use: OS baseline plus per-job footprints, capped so
    /// overflow spills into swap.
    fn memory_model(&self) -> (f64, f64) {
        let wanted = MEM_BASE_GIB + self.allocations.values().map(|a| a.mem_gib).sum::<f64>();
        if wanted <= MEM_TOTAL_GIB {
            (wanted, 0.0)
        } else {
            let spill = (wanted - MEM_TOTAL_GIB).min(SWAP_TOTAL_GIB);
            (MEM_TOTAL_GIB, spill)
        }
    }

    /// Produce the load report the execd would send at `now`.
    pub fn load_report(&self, now: EpochSecs) -> LoadReport {
        let (mem_used, swap_used) = self.memory_model();
        LoadReport {
            node: self.node,
            cpu_usage: self.slots_used() as f64 / SLOTS_PER_NODE as f64,
            mem_total_gib: MEM_TOTAL_GIB,
            mem_used_gib: mem_used,
            swap_total_gib: SWAP_TOTAL_GIB,
            swap_used_gib: swap_used,
            job_list: self.job_ids(),
        }
        .stamped(now)
    }
}

impl LoadReport {
    fn stamped(self, _now: EpochSecs) -> LoadReport {
        self
    }

    /// Free memory, GiB (Table II lists both used and free).
    pub fn mem_free_gib(&self) -> f64 {
        self.mem_total_gib - self.mem_used_gib
    }

    /// Free swap, GiB.
    pub fn swap_free_gib(&self) -> f64 {
        self.swap_total_gib - self.swap_used_gib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> ExecHost {
        ExecHost::new(NodeId::new(1, 1))
    }

    #[test]
    fn slot_accounting() {
        let mut h = host();
        assert_eq!(h.slots_free(), 36);
        h.allocate(JobId(1), 4, 8.0);
        h.allocate(JobId(2), 32, 64.0);
        assert_eq!(h.slots_used(), 36);
        assert_eq!(h.slots_free(), 0);
        assert!(!h.fits(1));
        h.release(JobId(1));
        assert!(h.fits(4));
        assert_eq!(h.job_ids(), vec![JobId(2)]);
        h.release(JobId(99)); // releasing unknown is a no-op
    }

    #[test]
    #[should_panic(expected = "over-allocating")]
    fn over_allocation_panics() {
        let mut h = host();
        h.allocate(JobId(1), 36, 1.0);
        h.allocate(JobId(2), 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "double-allocated")]
    fn double_allocation_panics() {
        let mut h = host();
        h.allocate(JobId(1), 1, 1.0);
        h.allocate(JobId(1), 1, 1.0);
    }

    #[test]
    fn dead_host_never_fits() {
        let mut h = host();
        h.alive = false;
        assert!(!h.fits(1));
    }

    #[test]
    fn load_report_reflects_allocations() {
        let mut h = host();
        h.allocate(JobId(1), 18, 30.0);
        let r = h.load_report(EpochSecs::new(100));
        assert_eq!(r.cpu_usage, 0.5);
        assert_eq!(r.mem_used_gib, 36.0);
        assert_eq!(r.mem_free_gib(), 156.0);
        assert_eq!(r.swap_used_gib, 0.0);
        assert_eq!(r.job_list, vec![JobId(1)]);
    }

    #[test]
    fn memory_overflow_spills_to_swap() {
        let mut h = host();
        h.allocate(JobId(1), 36, 200.0);
        let r = h.load_report(EpochSecs::new(0));
        assert_eq!(r.mem_used_gib, MEM_TOTAL_GIB);
        assert!(r.swap_used_gib > 0.0);
        assert!(r.swap_used_gib <= SWAP_TOTAL_GIB);
        assert_eq!(r.mem_free_gib(), 0.0);
    }
}
