//! `monster-scheduler` — a discrete-event Univa Grid Engine simulator.
//!
//! MonSTer's in-band measurements come from the cluster's resource manager
//! (§III-B2): UGE's qmaster tracks node load and job state via execution-
//! daemon reports every 40 s, and its ARCo console exposes accounting
//! records the collector polls each interval (≈19 KB per node and ≈23 KB
//! per job of accounting payload — Table IV's traffic).
//!
//! No UGE deployment exists here, so this crate implements the moving
//! parts the paper describes:
//!
//! * [`job`] — job specs, lifecycle states, array/parallel job shapes;
//! * [`host`] — execution hosts: slot accounting, per-job CPU/memory
//!   model, load reports;
//! * [`qmaster`] — the scheduler core: priority queue, first-fit
//!   placement, 40 s load reports, lost-host detection, completion events,
//!   driven by a discrete-event queue;
//! * [`accounting`] — ARCo-style records and the JSON payloads whose
//!   sizes reproduce Table IV;
//! * [`workload`] — a synthetic user population (MPI users, array-job
//!   users, serial users — the Fig. 6 cast) generating Poisson arrivals;
//! * [`slurm`] — a Slurm-flavoured facade over the same state, because
//!   MonSTer "also supports query metrics from Slurm";
//! * [`trace`] — Standard Workload Format (SWF) parsing and replay, so
//!   archived production traces can drive the simulation.

#![warn(missing_docs)]

pub mod accounting;
pub mod host;
pub mod job;
pub mod qmaster;
pub mod slurm;
pub mod trace;
pub mod workload;

pub use job::{Job, JobId, JobShape, JobSpec, JobState};
pub use qmaster::{Qmaster, QmasterConfig};
pub use workload::{WorkloadConfig, WorkloadGenerator};
