//! Standard Workload Format (SWF) trace replay.
//!
//! The synthetic workload generator covers the paper's user archetypes; for
//! validation against *real* cluster behaviour, the community's parallel
//! workload archives distribute traces in SWF — one line per job, 18
//! whitespace-separated fields, `;` comment headers. This module parses
//! SWF and replays a trace through the simulated qmaster, so any archived
//! workload (or a site's own accounting dump) can drive the deployment.
//!
//! Field mapping (SWF → simulator):
//!
//! | SWF field | use |
//! |---|---|
//! | 2 (submit time) | submission offset from trace start |
//! | 4 (run time) | job runtime |
//! | 8 (requested processors, falling back to 5: used processors) | shape |
//! | 12 (user id) | user name (`u<uid>`) |
//! | 11 (status) | ignored (the simulator decides outcomes) |
//!
//! Jobs requesting ≤ one node's slots become serial jobs; larger requests
//! become whole-node parallel jobs, matching UGE's exclusive MPI placement
//! on Quanah.

use crate::host::SLOTS_PER_NODE;
use crate::job::{JobShape, JobSpec};
use crate::qmaster::Qmaster;
use monster_util::{EpochSecs, Error, Result, UserName};

/// One parsed SWF job record (the fields the simulator uses).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceJob {
    /// SWF job number.
    pub job_number: u64,
    /// Seconds after trace start.
    pub submit_offset: i64,
    /// Runtime in seconds.
    pub runtime_secs: i64,
    /// Processors requested.
    pub processors: u32,
    /// Submitting user id.
    pub user_id: u32,
}

impl TraceJob {
    /// The simulator job spec for this record.
    pub fn to_spec(&self) -> JobSpec {
        let shape = if self.processors <= SLOTS_PER_NODE {
            JobShape::Serial { slots: self.processors.max(1) }
        } else {
            JobShape::Parallel { nodes: self.processors.div_ceil(SLOTS_PER_NODE) }
        };
        JobSpec {
            user: UserName::new(format!("u{}", self.user_id)),
            name: format!("swf-{}", self.job_number),
            shape,
            runtime_secs: self.runtime_secs.max(1),
            priority: 0,
            mem_per_slot_gib: 2.0,
        }
    }
}

/// A parsed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Jobs in file order.
    pub jobs: Vec<TraceJob>,
}

impl Trace {
    /// Parse SWF text. Comment lines (`;`) are skipped; malformed data
    /// lines are an error (truncated traces should fail loudly).
    pub fn parse(text: &str) -> Result<Trace> {
        let mut jobs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() < 12 {
                return Err(Error::parse(format!(
                    "SWF line {}: expected ≥12 fields, got {}",
                    lineno + 1,
                    fields.len()
                )));
            }
            let num = |i: usize| -> Result<i64> {
                fields[i].parse().map_err(|_| {
                    Error::parse(format!(
                        "SWF line {}: field {} ({:?}) is not a number",
                        lineno + 1,
                        i + 1,
                        fields[i]
                    ))
                })
            };
            let submit = num(1)?;
            let runtime = num(3)?;
            // Requested processors (field 8); -1 means "unknown" — fall
            // back to used processors (field 5).
            let requested = num(7)?;
            let used = num(4)?;
            let processors = if requested > 0 { requested } else { used };
            let uid = num(11)?;
            if runtime <= 0 || processors <= 0 {
                // Cancelled-before-start entries; skip like most SWF
                // consumers do.
                continue;
            }
            jobs.push(TraceJob {
                job_number: num(0)? as u64,
                submit_offset: submit.max(0),
                runtime_secs: runtime,
                processors: processors as u32,
                user_id: uid.max(0) as u32,
            });
        }
        Ok(Trace { jobs })
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Trace> {
        let text = std::fs::read_to_string(path)?;
        Trace::parse(&text)
    }

    /// Total processor-seconds in the trace.
    pub fn core_seconds(&self) -> i64 {
        self.jobs.iter().map(|j| j.runtime_secs * j.processors as i64).sum()
    }

    /// Replay onto a qmaster, anchoring offsets at `start`. Jobs past
    /// `horizon_secs` are skipped. Returns submissions enqueued.
    pub fn drive(&self, qm: &mut Qmaster, start: EpochSecs, horizon_secs: i64) -> usize {
        let mut submitted = 0;
        for job in &self.jobs {
            if job.submit_offset >= horizon_secs {
                continue;
            }
            qm.submit_at(start + job.submit_offset, job.to_spec());
            submitted += 1;
        }
        submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qmaster::QmasterConfig;

    /// A small hand-written SWF fragment (header + 5 jobs).
    const SAMPLE: &str = "\
; Version: 2.2
; Computer: Quanah-like test cluster
; MaxJobs: 5
; UnixStartTime: 1587340800
1 0 10 3600 36 -1 -1 36 -1 -1 1 101 1 1 1 -1 -1 -1
2 60 5 1800 1 -1 -1 1 -1 -1 1 102 1 1 1 -1 -1 -1
3 120 0 7200 144 -1 -1 144 -1 -1 1 101 1 1 1 -1 -1 -1
4 180 0 0 4 -1 -1 4 -1 -1 5 103 1 1 1 -1 -1 -1
5 240 0 600 -1 -1 -1 -1 -1 -1 1 104 1 1 1 -1 -1 -1
";

    #[test]
    fn parses_sample_trace() {
        let t = Trace::parse(SAMPLE).unwrap();
        // Job 4 (zero runtime) and job 5 (unknown processors) are skipped.
        assert_eq!(t.jobs.len(), 3);
        assert_eq!(t.jobs[0].job_number, 1);
        assert_eq!(t.jobs[0].processors, 36);
        assert_eq!(t.jobs[2].processors, 144);
        assert_eq!(t.core_seconds(), 36 * 3600 + 1800 + 144 * 7200);
    }

    #[test]
    fn shapes_map_to_cluster_geometry() {
        let t = Trace::parse(SAMPLE).unwrap();
        // 36 procs = one full node (serial, all slots).
        assert_eq!(t.jobs[0].to_spec().shape, JobShape::Serial { slots: 36 });
        // 1 proc = one slot.
        assert_eq!(t.jobs[1].to_spec().shape, JobShape::Serial { slots: 1 });
        // 144 procs = 4 whole nodes.
        assert_eq!(t.jobs[2].to_spec().shape, JobShape::Parallel { nodes: 4 });
        assert_eq!(t.jobs[0].to_spec().user.as_str(), "u101");
    }

    #[test]
    fn replay_drives_the_qmaster() {
        let cfg = QmasterConfig { nodes: 8, ..QmasterConfig::default() };
        let t0 = cfg.start_time;
        let mut qm = Qmaster::new(cfg);
        let t = Trace::parse(SAMPLE).unwrap();
        let submitted = t.drive(&mut qm, t0, 86_400);
        assert_eq!(submitted, 3);
        qm.run_until(t0 + 600);
        // All three fit on 8 nodes simultaneously (1 + 1 + 4 nodes).
        assert_eq!(qm.running_jobs().len(), 3);
        qm.run_until(t0 + 4 * 3600);
        // By 4 h everything has finished: the longest job (7200 s MPI,
        // dispatched ~120 s in) ends around t0 + 7320 s.
        assert_eq!(qm.running_jobs().len(), 0);
        assert_eq!(qm.finished_jobs().len(), 3);
    }

    #[test]
    fn horizon_filters_submissions() {
        let cfg = QmasterConfig { nodes: 4, ..QmasterConfig::default() };
        let t0 = cfg.start_time;
        let mut qm = Qmaster::new(cfg);
        let t = Trace::parse(SAMPLE).unwrap();
        assert_eq!(t.drive(&mut qm, t0, 100), 2); // offsets 0 and 60 qualify
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Trace::parse("1 2 3").is_err());
        assert!(Trace::parse("1 0 10 x 36 -1 -1 36 -1 -1 1 101").is_err());
        // Empty/comment-only is fine.
        assert_eq!(Trace::parse("; header only\n\n").unwrap().jobs.len(), 0);
    }
}
