//! The qmaster: queueing, scheduling, load reports, failure detection.
//!
//! A discrete-event reimplementation of the UGE control flow the paper
//! sketches in §III-B2: users submit through `qsub`; the qmaster holds
//! pending jobs in a priority queue and dispatches the highest-priority job
//! when resources free up; execution daemons report load every 40 s; a host
//! that stops reporting is labelled unavailable and receives no further
//! work.

use crate::host::{ExecHost, LoadReport, SLOTS_PER_NODE};
#[cfg(test)]
use crate::job::JobShape;
use crate::job::{Job, JobId, JobSpec, JobState};
use monster_sim::{EventQueue, VInstant};
use monster_util::{EpochSecs, Error, NodeId, Result};
use std::collections::{BTreeMap, HashSet};

/// Fair-share policy: users with heavy recent usage are deprioritized,
/// like UGE's share-tree policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairshareConfig {
    /// Half-life of accumulated usage, seconds (UGE's default share-tree
    /// half-life is hours-scale).
    pub halflife_secs: i64,
    /// Priority penalty per normalized unit of usage. One unit equals the
    /// whole cluster for one half-life.
    pub weight: f64,
}

impl Default for FairshareConfig {
    fn default() -> Self {
        FairshareConfig { halflife_secs: 4 * 3600, weight: 100.0 }
    }
}

/// Backfill policy for the scheduler pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackfillPolicy {
    /// First-fit skip: any pending job that fits starts, even if it delays
    /// a bigger job ahead of it (can starve wide jobs).
    #[default]
    Aggressive,
    /// EASY backfill: the highest-priority blocked job gets a reservation
    /// at the earliest time its resources free up (runtimes are known);
    /// later jobs may only start if they cannot delay that reservation.
    Easy,
}

/// Qmaster configuration.
#[derive(Debug, Clone)]
pub struct QmasterConfig {
    /// Cluster size (467 for Quanah).
    pub nodes: usize,
    /// Sleds per chassis (management addressing).
    pub slots_per_chassis: u16,
    /// Execd load-report interval (UGE default: 40 s).
    pub load_report_interval: i64,
    /// Scheduler pass interval.
    pub schedule_interval: i64,
    /// Reports a host may miss before being declared lost.
    pub lost_after_missed_reports: u32,
    /// Simulation start time.
    pub start_time: EpochSecs,
    /// Fair-share policy; `None` = pure priority + FIFO.
    pub fairshare: Option<FairshareConfig>,
    /// Backfill policy.
    pub backfill: BackfillPolicy,
}

impl Default for QmasterConfig {
    fn default() -> Self {
        QmasterConfig {
            nodes: 467,
            slots_per_chassis: 4,
            load_report_interval: 40,
            schedule_interval: 15,
            lost_after_missed_reports: 3,
            start_time: EpochSecs::parse_rfc3339("2020-04-20T00:00:00Z").expect("valid"),
            fairshare: None,
            backfill: BackfillPolicy::default(),
        }
    }
}

/// An EASY reservation for the head blocked job.
#[derive(Debug)]
struct Reservation {
    /// When the resources provably free up.
    at: EpochSecs,
    /// The hosts providing them.
    #[allow(dead_code)]
    shadow: Vec<NodeId>,
    /// Per-shadow-host spare slots beyond the reservation at `at`.
    slack: std::collections::HashMap<NodeId, u32>,
    /// Reserved slots per host.
    per_host: u32,
    /// Reserved host count.
    hosts_needed: u32,
}

#[derive(Debug)]
enum Event {
    Submit(JobSpec),
    JobEnd(JobId),
    ScheduleTick,
    LoadReportTick,
    /// Failure injection: the execd on this node stops responding.
    ExecdDown(NodeId),
    /// The execd comes back.
    ExecdUp(NodeId),
}

/// The scheduler core.
pub struct Qmaster {
    config: QmasterConfig,
    now: EpochSecs,
    hosts: BTreeMap<NodeId, ExecHost>,
    /// Ground truth: execds that are actually down (failure injection).
    execds_down: HashSet<NodeId>,
    jobs: BTreeMap<JobId, Job>,
    pending: Vec<JobId>,
    next_id: u64,
    events: EventQueue<Event>,
    /// Completed/failed jobs, in completion order (ARCo's source).
    finished: Vec<JobId>,
    /// Set when cluster state changed in a way that could let a pending
    /// job start; cleared after a scheduler pass. Skipping no-op passes
    /// keeps day-scale simulations fast.
    dirty: bool,
    /// Per-user decayed core-second usage (fair-share accounting):
    /// (usage at `stamp`, stamp).
    usage: std::collections::HashMap<monster_util::UserName, (f64, EpochSecs)>,
}

impl Qmaster {
    /// Boot a qmaster over an idle cluster.
    pub fn new(config: QmasterConfig) -> Self {
        let ids = NodeId::enumerate(config.nodes, config.slots_per_chassis);
        let hosts = ids
            .iter()
            .map(|&id| {
                let mut h = ExecHost::new(id);
                h.last_report = config.start_time;
                (id, h)
            })
            .collect();
        let mut qm = Qmaster {
            now: config.start_time,
            hosts,
            execds_down: HashSet::new(),
            jobs: BTreeMap::new(),
            pending: Vec::new(),
            next_id: 1_290_000, // Quanah-era job ids (Fig. 5)
            events: EventQueue::new(),
            finished: Vec::new(),
            dirty: false,
            usage: std::collections::HashMap::new(),
            config,
        };
        // Kick off the periodic ticks.
        let t0 = qm.now;
        qm.schedule_event(t0 + qm.config.schedule_interval, Event::ScheduleTick);
        qm.schedule_event(t0 + qm.config.load_report_interval, Event::LoadReportTick);
        qm
    }

    fn instant_of(&self, t: EpochSecs) -> VInstant {
        let offset = t - self.config.start_time;
        assert!(offset >= 0, "time before simulation start");
        VInstant::from_nanos(offset as u64 * 1_000_000_000)
    }

    fn schedule_event(&mut self, at: EpochSecs, e: Event) {
        let at = at.max(self.now);
        self.events.schedule(self.instant_of(at), e);
    }

    /// Current simulation time.
    pub fn now(&self) -> EpochSecs {
        self.now
    }

    /// Enqueue a submission at `at` (≥ now).
    pub fn submit_at(&mut self, at: EpochSecs, spec: JobSpec) {
        self.schedule_event(at, Event::Submit(spec));
    }

    /// Inject an execd failure at `at`.
    pub fn fail_execd_at(&mut self, at: EpochSecs, node: NodeId) {
        self.schedule_event(at, Event::ExecdDown(node));
    }

    /// Bring an execd back at `at`.
    pub fn recover_execd_at(&mut self, at: EpochSecs, node: NodeId) {
        self.schedule_event(at, Event::ExecdUp(node));
    }

    /// Advance the simulation to `t`, processing every event on the way.
    pub fn run_until(&mut self, t: EpochSecs) {
        let target = self.instant_of(t);
        while let Some(at) = self.events.peek_time() {
            if at > target {
                break;
            }
            let (at, event) = self.events.pop().expect("peeked");
            self.now = self.config.start_time + (at.as_nanos() / 1_000_000_000) as i64;
            self.handle(event);
        }
        self.now = self.now.max(t);
    }

    fn handle(&mut self, e: Event) {
        match e {
            Event::Submit(spec) => {
                let id = JobId(self.next_id);
                self.next_id += 1;
                self.jobs
                    .insert(id, Job { id, spec, submit_time: self.now, state: JobState::Pending });
                self.pending.push(id);
                self.dirty = true;
                monster_obs::counter("monster_sched_jobs_submitted_total").inc();
                monster_obs::gauge("monster_sched_pending_jobs").set(self.pending.len() as i64);
            }
            Event::ScheduleTick => {
                self.schedule_pass();
                let next = self.now + self.config.schedule_interval;
                self.schedule_event(next, Event::ScheduleTick);
            }
            Event::LoadReportTick => {
                self.receive_reports();
                let next = self.now + self.config.load_report_interval;
                self.schedule_event(next, Event::LoadReportTick);
            }
            Event::JobEnd(id) => self.finish_job(id, false),
            Event::ExecdDown(node) => {
                self.execds_down.insert(node);
            }
            Event::ExecdUp(node) => {
                self.execds_down.remove(&node);
                if let Some(h) = self.hosts.get_mut(&node) {
                    h.alive = true;
                    h.last_report = self.now;
                }
                self.dirty = true;
            }
        }
    }

    /// One scheduler pass: highest priority first, FIFO within priority,
    /// first-fit host selection.
    fn schedule_pass(&mut self) {
        if !self.dirty || self.pending.is_empty() {
            return;
        }
        self.dirty = false;
        // Sort by effective priority (descending), then FIFO. Effective
        // priorities are finite floats; scale to integers for a total
        // order.
        let mut keyed: Vec<(i64, EpochSecs, JobId)> = self
            .pending
            .iter()
            .map(|id| {
                let j = &self.jobs[id];
                // Quantize to 0.1-priority buckets: negligible decayed
                // usage must not override FIFO order.
                let eff = (self.effective_priority(j) * 10.0).round() as i64;
                (-eff, j.submit_time, j.id)
            })
            .collect();
        keyed.sort();
        self.pending = keyed.into_iter().map(|(_, _, id)| id).collect();
        let mut still_pending = Vec::new();
        let ids: Vec<JobId> = self.pending.drain(..).collect();
        // Identical shapes fail identically within one pass: memoize the
        // (slots_per_host, hosts_needed) pairs that could not be placed so
        // a 997-task array job costs one host scan, not 997.
        let mut failed_shapes: Vec<(u32, u32)> = Vec::new();
        // EASY state: the head blocked job's reservation, if any.
        let mut reservation: Option<Reservation> = None;
        for id in ids {
            let shape_key = {
                let shape = &self.jobs[&id].spec.shape;
                (shape.slots_per_host(SLOTS_PER_NODE), shape.hosts_needed())
            };
            if failed_shapes.iter().any(|&(s, h)| s <= shape_key.0 && h <= shape_key.1) {
                still_pending.push(id);
                continue;
            }
            // Under EASY with an active reservation, a candidate may only
            // start if it cannot delay the reserved job.
            if let Some(res) = &reservation {
                let runtime = self.jobs[&id].spec.runtime_secs;
                if !self.backfill_allowed(res, shape_key.0, shape_key.1, runtime) {
                    still_pending.push(id);
                    continue;
                }
            }
            if self.try_dispatch(id) {
                // A dispatch may consume reserved slack; recompute.
                if let Some(res) = &reservation {
                    reservation = self.easy_reservation(res.per_host, res.hosts_needed);
                }
            } else {
                failed_shapes.push(shape_key);
                still_pending.push(id);
                if self.config.backfill == BackfillPolicy::Easy && reservation.is_none() {
                    reservation = self.easy_reservation(shape_key.0, shape_key.1);
                }
            }
        }
        self.pending = still_pending;
        // Queue depth after the pass: what `/metrics` reports as backlog.
        monster_obs::gauge("monster_sched_pending_jobs").set(self.pending.len() as i64);
    }

    /// Earliest future instant at which `hosts_needed` hosts each have
    /// `per_host` free slots, assuming running jobs end on schedule.
    /// Returns `None` when the shape never fits (bigger than the cluster).
    fn easy_reservation(&self, per_host: u32, hosts_needed: u32) -> Option<Reservation> {
        // Per-host: free slots now, plus (end_time, slots) of running jobs.
        let mut frees: std::collections::HashMap<NodeId, Vec<(EpochSecs, u32)>> =
            std::collections::HashMap::new();
        for job in self.jobs.values() {
            if let JobState::Running { start, hosts } = &job.state {
                let end = *start + job.spec.runtime_secs;
                let slots = job.spec.shape.slots_per_host(SLOTS_PER_NODE);
                for h in hosts {
                    frees.entry(*h).or_default().push((end, slots));
                }
            }
        }
        let mut end_times: Vec<EpochSecs> =
            frees.values().flat_map(|v| v.iter().map(|(e, _)| *e)).collect();
        end_times.push(self.now);
        end_times.sort();
        end_times.dedup();
        for t in end_times {
            let mut shadow = Vec::new();
            let mut slack = std::collections::HashMap::new();
            for (node, h) in self.hosts.iter() {
                if !h.alive {
                    continue;
                }
                let freed: u32 = frees
                    .get(node)
                    .map(|v| v.iter().filter(|(e, _)| *e <= t).map(|(_, s)| s).sum())
                    .unwrap_or(0);
                let free_at_t = h.slots_free() + freed;
                if free_at_t >= per_host {
                    shadow.push(*node);
                    slack.insert(*node, free_at_t - per_host);
                    if shadow.len() == hosts_needed as usize {
                        return Some(Reservation { at: t, shadow, slack, per_host, hosts_needed });
                    }
                }
            }
        }
        None
    }

    /// Whether starting a (per_host, hosts_needed, runtime) job *now*
    /// provably cannot delay the reservation: it either ends before the
    /// reserved time, or the shadow hosts keep enough slack even with it
    /// still running.
    fn backfill_allowed(
        &self,
        res: &Reservation,
        per_host: u32,
        hosts_needed: u32,
        runtime_secs: i64,
    ) -> bool {
        if self.now + runtime_secs <= res.at {
            return true;
        }
        // Ends after the reservation: it must fit entirely on capacity the
        // reservation does not need. Count hosts that could host it without
        // eating reserved slots.
        let mut usable = 0u32;
        for (node, h) in self.hosts.iter() {
            if !h.fits(per_host) {
                continue;
            }
            let ok = match res.slack.get(node) {
                // Shadow host: only its slack beyond the reservation.
                Some(&slack) => slack >= per_host,
                None => true,
            };
            if ok {
                usable += 1;
                if usable >= hosts_needed {
                    return true;
                }
            }
        }
        false
    }

    fn try_dispatch(&mut self, id: JobId) -> bool {
        let (shape, mem_per_slot, runtime) = {
            let j = &self.jobs[&id];
            (j.spec.shape.clone(), j.spec.mem_per_slot_gib, j.spec.runtime_secs)
        };
        let per_host = shape.slots_per_host(SLOTS_PER_NODE);
        let hosts_needed = shape.hosts_needed() as usize;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(hosts_needed);
        for (node, h) in self.hosts.iter() {
            if h.fits(per_host) {
                chosen.push(*node);
                if chosen.len() == hosts_needed {
                    break;
                }
            }
        }
        if chosen.len() < hosts_needed {
            return false;
        }
        for node in &chosen {
            self.hosts.get_mut(node).expect("chosen host exists").allocate(
                id,
                per_host,
                per_host as f64 * mem_per_slot,
            );
        }
        let start = self.now;
        let job = self.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Running { start, hosts: chosen };
        self.schedule_event(start + runtime, Event::JobEnd(id));
        monster_obs::counter("monster_sched_jobs_started_total").inc();
        monster_obs::gauge("monster_sched_running_jobs").add(1);
        true
    }

    fn finish_job(&mut self, id: JobId, failed: bool) {
        let Some(job) = self.jobs.get_mut(&id) else { return };
        let JobState::Running { start, hosts } = job.state.clone() else {
            return; // already finished (e.g. killed by host loss)
        };
        job.state = if failed {
            JobState::Failed { start, end: self.now, hosts: hosts.clone() }
        } else {
            JobState::Done { start, end: self.now, hosts: hosts.clone() }
        };
        for node in hosts {
            if let Some(h) = self.hosts.get_mut(&node) {
                h.release(id);
            }
        }
        self.finished.push(id);
        self.dirty = true;
        monster_obs::counter("monster_sched_jobs_finished_total").inc();
        monster_obs::gauge("monster_sched_running_jobs").sub(1);
        // Fair-share accounting: charge the user the job's core-seconds.
        if self.config.fairshare.is_some() {
            let job = &self.jobs[&id];
            let slots = job.total_slots(SLOTS_PER_NODE) as f64;
            let span = match &job.state {
                JobState::Done { start, end, .. } | JobState::Failed { start, end, .. } => {
                    (*end - *start) as f64
                }
                _ => 0.0,
            };
            let user = job.spec.user.clone();
            let now = self.now;
            let decayed = self.decayed_usage(&user, now);
            self.usage.insert(user, (decayed + slots * span, now));
        }
    }

    /// A user's usage decayed to `now`.
    fn decayed_usage(&self, user: &monster_util::UserName, now: EpochSecs) -> f64 {
        let Some(fs) = self.config.fairshare else { return 0.0 };
        match self.usage.get(user) {
            Some((u, stamp)) => {
                let dt = (now - *stamp).max(0) as f64;
                u * 0.5f64.powf(dt / fs.halflife_secs as f64)
            }
            None => 0.0,
        }
    }

    /// Effective scheduling priority: the submitted priority minus the
    /// fair-share penalty (scaled by the user's share of one
    /// cluster-half-life of capacity).
    fn effective_priority(&self, job: &Job) -> f64 {
        let base = job.spec.priority as f64;
        let Some(fs) = self.config.fairshare else { return base };
        let cluster_capacity =
            self.hosts.len() as f64 * SLOTS_PER_NODE as f64 * fs.halflife_secs as f64;
        let share = self.decayed_usage(&job.spec.user, self.now) / cluster_capacity;
        base - fs.weight * share
    }

    /// Load-report processing: live execds refresh their stamp; hosts past
    /// the lost threshold are declared unavailable and their jobs killed
    /// ("the qmaster labels the executing host and its resources as no
    /// longer available", §III-B2).
    fn receive_reports(&mut self) {
        let lost_after =
            self.config.load_report_interval * self.config.lost_after_missed_reports as i64;
        let mut lost: Vec<NodeId> = Vec::new();
        for (node, h) in self.hosts.iter_mut() {
            if self.execds_down.contains(node) {
                if h.alive && self.now - h.last_report > lost_after {
                    h.alive = false;
                    lost.push(*node);
                }
            } else {
                h.last_report = self.now;
                h.alive = true;
            }
        }
        // Kill jobs on lost hosts.
        let victims: Vec<JobId> = lost.iter().flat_map(|n| self.hosts[n].job_ids()).collect();
        for id in victims {
            self.finish_job(id, true);
        }
    }

    // ----- queries (the surface the collector consumes) -----

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.hosts.keys().copied().collect()
    }

    /// A host's latest load report (what ARCo exposes per node).
    pub fn load_report(&self, node: NodeId) -> Result<LoadReport> {
        let h = self.hosts.get(&node).ok_or_else(|| Error::not_found(format!("no host {node}")))?;
        Ok(h.load_report(self.now))
    }

    /// Load reports for the whole cluster.
    pub fn all_load_reports(&self) -> Vec<LoadReport> {
        self.hosts.values().map(|h| h.load_report(self.now)).collect()
    }

    /// Ids of the jobs currently placed on `node` — the attribution the
    /// alert engine stamps on node-scoped alerts, so an operator can see
    /// whose work a failing node is carrying.
    pub fn jobs_on(&self, node: NodeId) -> Vec<JobId> {
        self.hosts.get(&node).map(|h| h.job_ids()).unwrap_or_default()
    }

    /// CPU utilization of a node, 0..=1 (drives the BMC sensor model).
    pub fn utilization(&self, node: NodeId) -> f64 {
        self.hosts.get(&node).map(|h| h.slots_used() as f64 / SLOTS_PER_NODE as f64).unwrap_or(0.0)
    }

    /// A job by id.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All jobs (any state), ascending id.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Currently running jobs.
    pub fn running_jobs(&self) -> Vec<&Job> {
        self.jobs.values().filter(|j| j.is_running()).collect()
    }

    /// Currently pending jobs.
    pub fn pending_jobs(&self) -> Vec<&Job> {
        self.pending.iter().map(|id| &self.jobs[id]).collect()
    }

    /// Jobs finished since the start, in completion order.
    pub fn finished_jobs(&self) -> Vec<&Job> {
        self.finished.iter().map(|id| &self.jobs[id]).collect()
    }

    /// Whether the qmaster currently considers a host available.
    pub fn host_available(&self, node: NodeId) -> bool {
        self.hosts.get(&node).map(|h| h.alive).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monster_util::UserName;

    fn cfg(nodes: usize) -> QmasterConfig {
        QmasterConfig { nodes, ..QmasterConfig::default() }
    }

    fn t0() -> EpochSecs {
        QmasterConfig::default().start_time
    }

    fn serial_spec(user: &str, slots: u32, runtime: i64) -> JobSpec {
        JobSpec {
            user: UserName::new(user),
            name: "job.sh".into(),
            shape: JobShape::Serial { slots },
            runtime_secs: runtime,
            priority: 0,
            mem_per_slot_gib: 2.0,
        }
    }

    #[test]
    fn job_lifecycle_pending_running_done() {
        let mut qm = Qmaster::new(cfg(2));
        qm.submit_at(t0() + 5, serial_spec("alice", 4, 600));
        qm.run_until(t0() + 10);
        assert_eq!(qm.pending_jobs().len(), 1);
        // Next schedule tick at +15 dispatches it.
        qm.run_until(t0() + 20);
        assert_eq!(qm.running_jobs().len(), 1);
        let job = qm.running_jobs()[0];
        assert_eq!(job.hosts().len(), 1);
        assert!(job.wait_secs(qm.now()) <= 15);
        // Runs 600 s.
        qm.run_until(t0() + 700);
        assert_eq!(qm.running_jobs().len(), 0);
        assert_eq!(qm.finished_jobs().len(), 1);
        assert!(matches!(qm.finished_jobs()[0].state, JobState::Done { .. }));
        // Slots freed.
        assert_eq!(qm.utilization(qm.node_ids()[0]), 0.0);
    }

    #[test]
    fn priority_order_dispatch() {
        let mut qm = Qmaster::new(cfg(1));
        // Fill the node so both candidates queue.
        qm.submit_at(t0() + 1, serial_spec("hog", 36, 100));
        let mut low = serial_spec("low", 36, 100);
        low.priority = 0;
        let mut high = serial_spec("high", 36, 100);
        high.priority = 10;
        // Submitted after the first schedule tick (t0+15) so the hog is
        // already running when they queue.
        qm.submit_at(t0() + 16, low);
        qm.submit_at(t0() + 17, high);
        qm.run_until(t0() + 50);
        assert_eq!(qm.running_jobs()[0].spec.user.as_str(), "hog");
        // After the hog ends, "high" must beat "low" despite later submit.
        qm.run_until(t0() + 200);
        let running = qm.running_jobs();
        assert_eq!(running.len(), 1);
        assert_eq!(running[0].spec.user.as_str(), "high");
    }

    #[test]
    fn mpi_job_takes_whole_nodes() {
        let mut qm = Qmaster::new(cfg(8));
        let spec = JobSpec {
            user: UserName::new("jieyao"),
            name: "mpi.sh".into(),
            shape: JobShape::Parallel { nodes: 4 },
            runtime_secs: 1000,
            priority: 0,
            mem_per_slot_gib: 1.0,
        };
        qm.submit_at(t0() + 1, spec);
        qm.run_until(t0() + 60);
        let running = qm.running_jobs();
        assert_eq!(running.len(), 1);
        assert_eq!(running[0].hosts().len(), 4);
        for &n in running[0].hosts() {
            assert_eq!(qm.utilization(n), 1.0);
        }
        // Remaining hosts idle.
        let busy: HashSet<NodeId> = running[0].hosts().iter().copied().collect();
        for n in qm.node_ids() {
            if !busy.contains(&n) {
                assert_eq!(qm.utilization(n), 0.0);
            }
        }
    }

    #[test]
    fn too_large_job_waits_forever() {
        let mut qm = Qmaster::new(cfg(2));
        let spec = JobSpec {
            user: UserName::new("greedy"),
            name: "huge.sh".into(),
            shape: JobShape::Parallel { nodes: 10 },
            runtime_secs: 100,
            priority: 0,
            mem_per_slot_gib: 1.0,
        };
        qm.submit_at(t0() + 1, spec);
        qm.run_until(t0() + 3600);
        assert_eq!(qm.pending_jobs().len(), 1);
        assert_eq!(qm.running_jobs().len(), 0);
    }

    #[test]
    fn array_tasks_pack_onto_hosts() {
        let mut qm = Qmaster::new(cfg(2));
        // The "abdumal" pattern: many 1-slot tasks sharing hosts.
        for i in 0..72 {
            let spec = JobSpec {
                user: UserName::new("abdumal"),
                name: format!("array.{i}"),
                shape: JobShape::ArrayTask { parent: JobId(1), index: i },
                runtime_secs: 500,
                priority: 0,
                mem_per_slot_gib: 0.5,
            };
            qm.submit_at(t0() + 1, spec);
        }
        qm.run_until(t0() + 60);
        assert_eq!(qm.running_jobs().len(), 72);
        // 72 single-slot tasks exactly fill 2 x 36-core hosts.
        for n in qm.node_ids() {
            assert_eq!(qm.utilization(n), 1.0);
        }
    }

    #[test]
    fn lost_execd_kills_jobs_and_blocks_scheduling() {
        let mut qm = Qmaster::new(cfg(2));
        qm.submit_at(t0() + 1, serial_spec("victim", 36, 100_000));
        qm.run_until(t0() + 30);
        let node = qm.running_jobs()[0].hosts()[0];
        qm.fail_execd_at(t0() + 60, node);
        // After 3 missed 40 s reports the host is declared lost.
        qm.run_until(t0() + 400);
        assert!(!qm.host_available(node));
        assert_eq!(qm.running_jobs().len(), 0);
        assert!(matches!(qm.finished_jobs()[0].state, JobState::Failed { .. }));
        // New work avoids the dead host.
        qm.submit_at(t0() + 410, serial_spec("next", 36, 100));
        qm.run_until(t0() + 500);
        let running = qm.running_jobs();
        assert_eq!(running.len(), 1);
        assert_ne!(running[0].hosts()[0], node);
        // Recovery restores availability.
        qm.recover_execd_at(t0() + 600, node);
        qm.run_until(t0() + 700);
        assert!(qm.host_available(node));
    }

    #[test]
    fn load_reports_expose_table2_metrics() {
        let mut qm = Qmaster::new(cfg(1));
        qm.submit_at(t0() + 1, serial_spec("alice", 18, 10_000));
        qm.run_until(t0() + 60);
        let node = qm.node_ids()[0];
        let r = qm.load_report(node).unwrap();
        assert_eq!(r.cpu_usage, 0.5);
        assert!(r.mem_used_gib > 6.0);
        assert!(r.mem_free_gib() > 0.0);
        assert_eq!(r.swap_total_gib, 4.0);
        assert_eq!(r.job_list.len(), 1);
        assert!(qm.load_report(NodeId::new(99, 1)).is_err());
    }

    #[test]
    fn backfill_behaviour_fifo_within_priority() {
        let mut qm = Qmaster::new(cfg(1));
        qm.submit_at(t0() + 1, serial_spec("first", 20, 10_000));
        qm.submit_at(t0() + 2, serial_spec("second", 20, 10_000)); // doesn't fit
        qm.submit_at(t0() + 3, serial_spec("third", 16, 10_000)); // fits alongside first
        qm.run_until(t0() + 60);
        let users: Vec<&str> = qm.running_jobs().iter().map(|j| j.spec.user.as_str()).collect();
        // First-fit lets "third" in while "second" waits.
        assert!(users.contains(&"first"));
        assert!(users.contains(&"third"));
        assert_eq!(qm.pending_jobs().len(), 1);
        assert_eq!(qm.pending_jobs()[0].spec.user.as_str(), "second");
    }
}
