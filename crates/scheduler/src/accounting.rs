//! ARCo-style accounting: the JSON the collector pulls each interval.
//!
//! §III-B2: the Metrics Collector reads computing-resource metrics and
//! application details through UGE's Accounting and Reporting Console.
//! §IV-A measures that payload at about 19 KB per node and 23 KB per job,
//! totalling ≈298 KB/s for 467 nodes and ~400 jobs on a 60 s interval
//! (Table IV). The payload builders here reproduce those shapes — sizes
//! emerge from the real field inventory (Table II) plus the node/job
//! detail a real ARCo dump carries.

use crate::host::LoadReport;
use crate::job::{Job, JobState};
use crate::qmaster::Qmaster;
use monster_json::{jobj, Value};

/// The per-node accounting document (Table II's node-level metrics plus
/// the descriptive payload ARCo attaches).
pub fn node_document(report: &LoadReport) -> Value {
    let jobs: Vec<Value> = report.job_list.iter().map(|id| Value::from(id.to_string())).collect();
    jobj! {
        "hostname" => report.node.label(),
        "address" => report.node.bmc_addr(),
        "cpu_usage" => report.cpu_usage,
        "mem_total_gib" => report.mem_total_gib,
        "mem_used_gib" => report.mem_used_gib,
        "mem_free_gib" => report.mem_free_gib(),
        "swap_total_gib" => report.swap_total_gib,
        "swap_used_gib" => report.swap_used_gib,
        "swap_free_gib" => report.swap_free_gib(),
        "job_list" => Value::Array(jobs),
        // The descriptive payload a real qhost/ARCo host record carries:
        // full host complexes, three queue instances each dumping its
        // complex values, topology, and per-core load entries. This
        // verbosity is what makes the paper's per-node accounting payload
        // ≈19 KB.
        "arch" => "lx-amd64",
        "num_proc" => 36i64,
        "topology" => "SCCCCCCCCCCCCCCCCCCSCCCCCCCCCCCCCCCCCC",
        "topology_inuse" => "SCCCCCCCCCCCCCCCCCCSCCCCCCCCCCCCCCCCCC",
        "host_values" => host_complexes(report),
        "queue_instances" => Value::Array(
            ["omni.q", "general.q", "xlquanah.q"]
                .iter()
                .map(|q| queue_instance(q, report))
                .collect()
        ),
        "load_values" => Value::Array(
            (0..36).map(|c| {
                jobj! {
                    "core" => c as i64,
                    "load_avg" => report.cpu_usage * (1.0 + (c % 5) as f64 * 0.002),
                    "load_short" => report.cpu_usage * (1.0 + (c % 7) as f64 * 0.003),
                    "load_medium" => report.cpu_usage,
                }
            }).collect()
        ),
    }
}

/// The host-level complex values a `qhost -F` dump reports.
fn host_complexes(report: &LoadReport) -> Value {
    let mem_free = report.mem_free_gib();
    let swap_free = report.swap_free_gib();
    jobj! {
        "hl:arch" => "lx-amd64",
        "hl:num_proc" => 36i64,
        "hl:m_socket" => 2i64,
        "hl:m_core" => 36i64,
        "hl:m_thread" => 36i64,
        "hl:load_avg" => report.cpu_usage * 36.0,
        "hl:load_short" => report.cpu_usage * 36.0,
        "hl:load_medium" => report.cpu_usage * 36.0,
        "hl:load_long" => report.cpu_usage * 36.0,
        "hl:np_load_avg" => report.cpu_usage,
        "hl:np_load_short" => report.cpu_usage,
        "hl:np_load_medium" => report.cpu_usage,
        "hl:np_load_long" => report.cpu_usage,
        "hl:mem_total" => format!("{:.3}G", report.mem_total_gib),
        "hl:mem_used" => format!("{:.3}G", report.mem_used_gib),
        "hl:mem_free" => format!("{:.3}G", mem_free),
        "hl:swap_total" => format!("{:.3}G", report.swap_total_gib),
        "hl:swap_used" => format!("{:.3}G", report.swap_used_gib),
        "hl:swap_free" => format!("{:.3}G", swap_free),
        "hl:virtual_total" => format!("{:.3}G", report.mem_total_gib + report.swap_total_gib),
        "hl:virtual_used" => format!("{:.3}G", report.mem_used_gib + report.swap_used_gib),
        "hl:virtual_free" => format!("{:.3}G", mem_free + swap_free),
        "hl:cpu" => report.cpu_usage * 100.0,
        "hl:m_cache_l1" => "32.000K",
        "hl:m_cache_l2" => "256.000K",
        "hl:m_cache_l3" => "45.000M",
        "hl:m_mem_total" => format!("{:.3}G", report.mem_total_gib),
        "hl:m_mem_used" => format!("{:.3}G", report.mem_used_gib),
        "hl:m_mem_free" => format!("{:.3}G", mem_free),
        "hl:display_win_gui" => false,
    }
}

/// One queue instance's `qstat -F` style dump.
fn queue_instance(qname: &str, report: &LoadReport) -> Value {
    jobj! {
        "qname" => qname,
        "hostname" => report.node.label(),
        "qtype" => "BP",
        "slots_total" => 36i64,
        "slots_used" => (report.cpu_usage * 36.0).round() as i64,
        "slots_resv" => 0i64,
        "state" => if report.cpu_usage >= 1.0 { "full" } else { "" },
        "seq_no" => 0i64,
        "rerun" => false,
        "tmpdir" => "/tmp",
        "shell" => "/bin/bash",
        "prolog" => "NONE",
        "epilog" => "NONE",
        "shell_start_mode" => "unix_behavior",
        "starter_method" => "NONE",
        "suspend_method" => "NONE",
        "resume_method" => "NONE",
        "terminate_method" => "NONE",
        "notify" => "00:00:60",
        "processors" => "UNDEFINED",
        "qf:qname" => qname,
        "qf:hostname" => report.node.label(),
        "qf:min_cpu_interval" => "00:05:00",
        "qf:pe_list" => "make mpi sm",
        "qf:ckpt_list" => "NONE",
        "qf:calendar" => "NONE",
        "qf:priority" => "0",
        "qf:s_rt" => "INFINITY",
        "qf:h_rt" => "48:00:00",
        "qf:s_cpu" => "INFINITY",
        "qf:h_cpu" => "INFINITY",
        "qf:s_fsize" => "INFINITY",
        "qf:h_fsize" => "INFINITY",
        "qf:s_data" => "INFINITY",
        "qf:h_data" => "INFINITY",
        "qf:s_stack" => "INFINITY",
        "qf:h_stack" => "INFINITY",
        "qf:s_core" => "INFINITY",
        "qf:h_core" => "INFINITY",
        "qf:s_rss" => "INFINITY",
        "qf:h_rss" => "INFINITY",
        "qf:s_vmem" => "INFINITY",
        "qf:h_vmem" => "5.3G",
        "qc:slots" => (36.0 - report.cpu_usage * 36.0).round() as i64,
        "qc:mem_free" => format!("{:.3}G", report.mem_free_gib()),
        "qc:swap_free" => format!("{:.3}G", report.swap_free_gib()),
    }
}

/// The per-job accounting document (Table II's job-level metrics).
pub fn job_document(job: &Job, slots_per_node: u32) -> Value {
    let (state, start, end) = match &job.state {
        JobState::Pending => ("pending", None, None),
        JobState::Running { start, .. } => ("running", Some(*start), None),
        JobState::Done { start, end, .. } => ("done", Some(*start), Some(*end)),
        JobState::Failed { start, end, .. } => ("failed", Some(*start), Some(*end)),
    };
    let hosts: Vec<Value> = job.hosts().iter().map(|h| Value::from(h.label())).collect();
    let slots = job.total_slots(slots_per_node) as i64;
    // CPU seconds accrue while running (compute-bound approximation).
    let cpu_secs = match (start, end) {
        (Some(s), Some(e)) => (e - s) * slots,
        _ => 0,
    };
    jobj! {
        "job_number" => job.id.to_string(),
        "owner" => job.spec.user.as_str(),
        "job_name" => job.spec.name.as_str(),
        "state" => state,
        "submission_time" => job.submit_time.as_secs(),
        "start_time" => start.map(|t| t.as_secs()),
        "end_time" => end.map(|t| t.as_secs()),
        "slots" => slots,
        "granted_pe" => match job.spec.shape {
            crate::job::JobShape::Parallel { .. } => Value::from("mpi"),
            _ => Value::Null,
        },
        "hosts" => Value::Array(hosts),
        "cpu" => cpu_secs,
        "mem_per_slot_gib" => job.spec.mem_per_slot_gib,
        "priority" => job.spec.priority as i64,
        // ARCo's usage blob: rusage fields a real record carries.
        "ru_wallclock" => end.zip(start).map(|(e, s)| e - s),
        "ru_utime" => cpu_secs as f64 * 0.97,
        "ru_stime" => cpu_secs as f64 * 0.03,
        "ru_maxrss" => (job.spec.mem_per_slot_gib * 1024.0 * 1024.0) as i64,
        "ru_ixrss" => 0i64,
        "ru_ismrss" => 0i64,
        "ru_idrss" => 0i64,
        "ru_isrss" => 0i64,
        "ru_minflt" => cpu_secs * 251,
        "ru_majflt" => cpu_secs / 17,
        "ru_nswap" => 0i64,
        "ru_inblock" => cpu_secs * 31,
        "ru_oublock" => cpu_secs * 13,
        "ru_msgsnd" => 0i64,
        "ru_msgrcv" => 0i64,
        "ru_nsignals" => 0i64,
        "ru_nvcsw" => cpu_secs * 97,
        "ru_nivcsw" => cpu_secs * 11,
        "maxvmem_gib" => job.spec.mem_per_slot_gib * slots as f64,
        "io" => cpu_secs as f64 * 0.0021,
        "iow" => cpu_secs as f64 * 0.0003,
        "category" => "-u all.q -l h_vmem=5.3G -pe mpi",
        "account" => "sge",
        "department" => "defaultdepartment",
        "project" => "NONE",
        "granted_req" => "h_vmem=5.3G",
        "sge_o_home" => format!("/home/{}", job.spec.user.as_str()),
        "sge_o_path" => "/opt/sge/bin/lx-amd64:/usr/local/bin:/usr/bin:/bin:/usr/local/sbin:/usr/sbin:/opt/ohpc/pub/mpi/openmpi3-gnu8/bin:/opt/ohpc/pub/compiler/gcc/8.3.0/bin",
        "sge_o_shell" => "/bin/bash",
        "sge_o_workdir" => format!("/home/{}/runs/{}", job.spec.user.as_str(), job.spec.name),
        "sge_o_host" => "quanah",
        "mail_list" => format!("{}@quanah.hpcc.ttu.edu", job.spec.user.as_str()),
        "submit_cmd" => format!("qsub -q omni.q -pe mpi {} -l h_vmem=5.3G {}", slots, job.spec.name),
        "context" => "NONE",
        // qstat -j verbosity: the job's submission environment and the
        // per-queue-instance scheduling diagnostics — on a production
        // cluster these sections dominate the record and push the per-job
        // payload into the tens of kilobytes the paper measures.
        "env" => job_environment(job),
        "scheduling_info" => scheduling_info(job),
        "per_host_usage" => Value::Array(
            job.hosts().iter().map(|h| {
                jobj! {
                    "host" => h.label(),
                    "cpu" => cpu_secs as f64 / job.hosts().len().max(1) as f64,
                    "mem" => job.spec.mem_per_slot_gib,
                    "io" => 0.002f64,
                    "vmem" => format!("{:.3}G", job.spec.mem_per_slot_gib),
                    "maxvmem" => format!("{:.3}G", job.spec.mem_per_slot_gib * 1.08),
                }
            }).collect()
        ),
    }
}

/// The submission environment `qstat -j` echoes back (representative UGE
/// module environment on an OpenHPC system).
fn job_environment(job: &Job) -> Value {
    let user = job.spec.user.as_str();
    jobj! {
        "HOME" => format!("/home/{user}"),
        "USER" => user,
        "LOGNAME" => user,
        "SHELL" => "/bin/bash",
        "TERM" => "xterm-256color",
        "LANG" => "en_US.UTF-8",
        "HOSTNAME" => "login-20-25.localdomain",
        "PWD" => format!("/home/{user}/runs/{}", job.spec.name),
        "PATH" => "/opt/sge/bin/lx-amd64:/opt/ohpc/pub/mpi/openmpi3-gnu8/bin:/opt/ohpc/pub/compiler/gcc/8.3.0/bin:/opt/ohpc/pub/utils/prun/1.3:/opt/ohpc/pub/utils/autotools/bin:/opt/ohpc/pub/bin:/usr/local/bin:/usr/bin:/usr/local/sbin:/usr/sbin",
        "LD_LIBRARY_PATH" => "/opt/ohpc/pub/mpi/openmpi3-gnu8/lib:/opt/ohpc/pub/compiler/gcc/8.3.0/lib64:/opt/sge/lib/lx-amd64",
        "MANPATH" => "/opt/ohpc/pub/mpi/openmpi3-gnu8/share/man:/opt/ohpc/pub/compiler/gcc/8.3.0/share/man:/usr/local/share/man:/usr/share/man",
        "MODULEPATH" => "/opt/ohpc/pub/moduledeps/gnu8-openmpi3:/opt/ohpc/pub/moduledeps/gnu8:/opt/ohpc/pub/modulefiles",
        "LOADEDMODULES" => "autotools:prun/1.3:gnu8/8.3.0:openmpi3/3.1.4:ohpc",
        "MPI_DIR" => "/opt/ohpc/pub/mpi/openmpi3-gnu8",
        "OMP_NUM_THREADS" => "1",
        "SGE_ROOT" => "/opt/sge",
        "SGE_CELL" => "default",
        "SGE_CLUSTER_NAME" => "quanah",
        "SGE_ARCH" => "lx-amd64",
        "SGE_EXECD_PORT" => "6445",
        "SGE_QMASTER_PORT" => "6444",
        "SGE_O_WORKDIR" => format!("/home/{user}/runs/{}", job.spec.name),
        "SGE_STDOUT_PATH" => format!("/home/{user}/runs/{}/{}.o{}", job.spec.name, job.spec.name, job.id),
        "SGE_STDERR_PATH" => format!("/home/{user}/runs/{}/{}.e{}", job.spec.name, job.spec.name, job.id),
        "SGE_TASK_ID" => match job.spec.shape {
            crate::job::JobShape::ArrayTask { index, .. } => Value::from(index as i64),
            _ => Value::from("undefined"),
        },
        "NSLOTS" => job.total_slots(crate::host::SLOTS_PER_NODE) as i64,
        "NQUEUES" => 1i64,
        "NHOSTS" => job.hosts().len() as i64,
        "PE_HOSTFILE" => format!("/opt/sge/default/spool/execd/active_jobs/{}.1/pe_hostfile", job.id),
        "TMPDIR" => format!("/tmp/{}.1.omni.q", job.id),
        "JOB_ID" => job.id.to_string(),
        "JOB_NAME" => job.spec.name.as_str(),
        "JOB_SCRIPT" => format!("/opt/sge/default/spool/execd/job_scripts/{}", job.id),
        "QUEUE" => "omni.q",
        "REQUEST" => job.spec.name.as_str(),
        "RESTARTED" => "0",
        "ENVIRONMENT" => "BATCH",
        "ARC" => "lx-amd64",
        "DISPLAY" => Value::Null,
        "XDG_RUNTIME_DIR" => format!("/run/user/{}", 20000 + (job.id.as_u64() % 1000)),
        "XDG_SESSION_ID" => (job.id.as_u64() % 10_000) as i64,
    }
}

/// The per-queue-instance scheduling diagnostics `qstat -j` appends — one
/// line per representative queue instance explaining why the job did (or
/// did not) land there. On the 467-node production cluster this section
/// alone runs to many kilobytes.
fn scheduling_info(job: &Job) -> Value {
    let lines: Vec<Value> = (0..80)
        .map(|i| {
            let chassis = i / 4 + 1;
            let slot = i % 4 + 1;
            Value::from(format!(
                "queue instance \"omni.q@compute-{chassis}-{slot}.localdomain\" dropped because it is temporarily not available (load threshold np_load_avg=1.75 / job {} requests {} slots)",
                job.id,
                job.spec.shape.slots_per_host(crate::host::SLOTS_PER_NODE),
            ))
        })
        .collect();
    Value::Array(lines)
}

/// Serialize a document the way the production collector received it —
/// UGE's qstat/qhost XML dialect, which is several times more verbose than
/// JSON. Table IV's payload sizes are measured on this encoding.
pub fn to_xml(tag: &str, v: &Value) -> String {
    let mut out = String::new();
    write_xml(&mut out, tag, v);
    out
}

fn write_xml(out: &mut String, tag: &str, v: &Value) {
    match v {
        Value::Object(o) => {
            out.push('<');
            out.push_str(tag);
            out.push('>');
            for (k, val) in o.iter() {
                write_xml(out, &sanitize_tag(k), val);
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
        Value::Array(items) => {
            out.push('<');
            out.push_str(tag);
            out.push('>');
            for item in items {
                write_xml(out, "element", item);
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
        scalar => {
            out.push('<');
            out.push_str(tag);
            out.push('>');
            match scalar {
                Value::Str(s) => out.push_str(s),
                other => out.push_str(&other.to_string_compact()),
            }
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

fn sanitize_tag(k: &str) -> String {
    k.replace(':', "_")
}

/// How long a finished job stays in the accounting pull (one pull covers
/// running jobs plus jobs that finished within this window, matching what
/// a per-interval qstat/ARCo query returns).
const RECENT_FINISH_WINDOW_SECS: i64 = 600;

/// Jobs included in one accounting pull: running, or finished recently.
fn pull_jobs(qm: &Qmaster) -> Vec<&Job> {
    let now = qm.now();
    qm.jobs()
        .filter(|j| match &j.state {
            JobState::Pending => false,
            JobState::Running { .. } => true,
            JobState::Done { end, .. } | JobState::Failed { end, .. } => {
                now - *end <= RECENT_FINISH_WINDOW_SECS
            }
        })
        .collect()
}

/// One full accounting pull: every node document plus every active/recent
/// job document. Returns the JSON and its transmitted size in bytes
/// (measured on the XML wire encoding the production collector parses).
pub fn accounting_pull(qm: &Qmaster) -> (Value, usize) {
    let reports = qm.all_load_reports();
    let nodes: Vec<Value> = reports.iter().map(node_document).collect();
    let jobs: Vec<Value> =
        pull_jobs(qm).iter().map(|j| job_document(j, crate::host::SLOTS_PER_NODE)).collect();
    let size: usize =
        reports.iter().map(|r| to_xml("host", &node_document(r)).len()).sum::<usize>()
            + pull_jobs(qm)
                .iter()
                .map(|j| to_xml("job_info", &job_document(j, crate::host::SLOTS_PER_NODE)).len())
                .sum::<usize>();
    let doc = jobj! {
        "timestamp" => qm.now().as_secs(),
        "nodes" => Value::Array(nodes),
        "jobs" => Value::Array(jobs),
    };
    (doc, size)
}

/// Table IV's bandwidth arithmetic for one pull.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthReport {
    /// Total monitoring bandwidth, KB/s.
    pub total_kb_per_sec: f64,
    /// Per-node share, KB/s.
    pub per_node_kb_per_sec: f64,
    /// Per-job share, KB/s.
    pub per_job_kb_per_sec: f64,
    /// Nodes counted.
    pub nodes: usize,
    /// Jobs counted.
    pub jobs: usize,
}

/// Compute Table IV from one accounting pull over `interval_secs`. Sizes
/// are measured on the XML wire encoding.
pub fn bandwidth_report(qm: &Qmaster, interval_secs: f64) -> BandwidthReport {
    let reports = qm.all_load_reports();
    let node_bytes: usize = reports.iter().map(|r| to_xml("host", &node_document(r)).len()).sum();
    let jobs: Vec<&Job> = pull_jobs(qm);
    let job_bytes: usize = jobs
        .iter()
        .map(|j| to_xml("job_info", &job_document(j, crate::host::SLOTS_PER_NODE)).len())
        .sum();
    let total = (node_bytes + job_bytes) as f64 / 1024.0 / interval_secs;
    BandwidthReport {
        total_kb_per_sec: total,
        per_node_kb_per_sec: node_bytes as f64
            / 1024.0
            / reports.len().max(1) as f64
            / interval_secs,
        per_job_kb_per_sec: job_bytes as f64 / 1024.0 / jobs.len().max(1) as f64 / interval_secs,
        nodes: reports.len(),
        jobs: jobs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobShape, JobSpec};
    use crate::qmaster::QmasterConfig;
    use monster_util::UserName;

    fn qm_with_jobs(nodes: usize, jobs: usize) -> Qmaster {
        let cfg = QmasterConfig { nodes, ..QmasterConfig::default() };
        let t0 = cfg.start_time;
        let mut qm = Qmaster::new(cfg);
        for i in 0..jobs {
            qm.submit_at(
                t0 + 1 + i as i64,
                JobSpec {
                    user: UserName::new(format!("user{}", i % 7)),
                    name: format!("job{i}.sh"),
                    shape: JobShape::Serial { slots: 4 },
                    runtime_secs: 100_000,
                    priority: 0,
                    mem_per_slot_gib: 2.0,
                },
            );
        }
        qm.run_until(t0 + 600);
        qm
    }

    #[test]
    fn node_document_size_matches_paper_scale() {
        // ≈19 KB per node (§IV-A). Ours must land in the right decade —
        // the exact paper number depends on ARCo verbosity; we assert the
        // order of magnitude and record the measured value in
        // EXPERIMENTS.md.
        let qm = qm_with_jobs(4, 8);
        let r = qm.load_report(qm.node_ids()[0]).unwrap();
        let size = node_document(&r).to_string_compact().len();
        assert!((400..40_000).contains(&size), "node doc {size} bytes");
    }

    #[test]
    fn job_document_fields_cover_table2() {
        let qm = qm_with_jobs(2, 3);
        let job = qm.running_jobs()[0];
        let doc = job_document(job, 36);
        for key in [
            "job_number",
            "owner",
            "job_name",
            "slots",
            "submission_time",
            "start_time",
            "hosts",
            "cpu",
            "state",
        ] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        assert_eq!(doc.get("state").unwrap().as_str(), Some("running"));
        assert!(doc.get("end_time").unwrap().is_null());
    }

    #[test]
    fn finished_job_document_has_times_and_cpu() {
        let cfg = QmasterConfig { nodes: 1, ..QmasterConfig::default() };
        let t0 = cfg.start_time;
        let mut qm = Qmaster::new(cfg);
        qm.submit_at(
            t0 + 1,
            JobSpec {
                user: UserName::new("alice"),
                name: "quick.sh".into(),
                shape: JobShape::Serial { slots: 2 },
                runtime_secs: 300,
                priority: 0,
                mem_per_slot_gib: 1.0,
            },
        );
        qm.run_until(t0 + 1000);
        let job = qm.finished_jobs()[0];
        let doc = job_document(job, 36);
        assert_eq!(doc.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(doc.get("cpu").unwrap().as_i64(), Some(600)); // 300 s x 2 slots
        assert_eq!(doc.get("ru_wallclock").unwrap().as_i64(), Some(300));
    }

    #[test]
    fn accounting_pull_aggregates_everything() {
        let qm = qm_with_jobs(6, 10);
        let (doc, size) = accounting_pull(&qm);
        assert_eq!(doc.get("nodes").unwrap().as_array().unwrap().len(), 6);
        assert_eq!(doc.get("jobs").unwrap().as_array().unwrap().len(), 10);
        assert!(size > 1000);
    }

    #[test]
    fn bandwidth_report_shape() {
        let qm = qm_with_jobs(8, 12);
        let bw = bandwidth_report(&qm, 60.0);
        assert_eq!(bw.nodes, 8);
        assert_eq!(bw.jobs, 12);
        assert!(bw.total_kb_per_sec > 0.0);
        // total ≈ nodes*per_node + jobs*per_job
        let reconstructed = bw.per_node_kb_per_sec * 8.0 + bw.per_job_kb_per_sec * 12.0;
        assert!((reconstructed - bw.total_kb_per_sec).abs() / bw.total_kb_per_sec < 0.01);
    }
}
