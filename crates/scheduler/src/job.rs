//! Job model: specs, shapes, lifecycle.

use monster_util::{EpochSecs, NodeId, UserName};

pub use monster_util::JobId;

/// How a job consumes resources.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobShape {
    /// A serial/threaded job: `slots` cores on one node.
    Serial {
        /// Cores requested (1..=slots_per_node).
        slots: u32,
    },
    /// An MPI job under a parallel environment: `nodes` whole nodes,
    /// exclusively (36 slots each on Quanah).
    Parallel {
        /// Whole nodes requested.
        nodes: u32,
    },
    /// One task of an array job: 1 slot, tagged with the array task index
    /// (UGE schedules tasks independently; the Fig. 6 "997 jobs on 29
    /// hosts" user is this shape).
    ArrayTask {
        /// The parent array job id.
        parent: JobId,
        /// Task index within the array.
        index: u32,
    },
}

impl JobShape {
    /// Slots needed on each node the job lands on.
    pub fn slots_per_host(&self, slots_per_node: u32) -> u32 {
        match self {
            JobShape::Serial { slots } => *slots,
            JobShape::Parallel { .. } => slots_per_node,
            JobShape::ArrayTask { .. } => 1,
        }
    }

    /// Number of distinct hosts required.
    pub fn hosts_needed(&self) -> u32 {
        match self {
            JobShape::Parallel { nodes } => *nodes,
            _ => 1,
        }
    }
}

/// A submission: everything known at `qsub` time.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Owner.
    pub user: UserName,
    /// Job name (script name).
    pub name: String,
    /// Resource shape.
    pub shape: JobShape,
    /// True runtime once started (the simulator knows; the scheduler does
    /// not use it for placement, mirroring UGE without h_rt hints).
    pub runtime_secs: i64,
    /// Scheduling priority (higher first).
    pub priority: i32,
    /// Memory per occupied slot, in GiB (drives the node memory model).
    pub mem_per_slot_gib: f64,
}

/// Lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Executing.
    Running {
        /// Dispatch time.
        start: EpochSecs,
        /// Hosts allocated.
        hosts: Vec<NodeId>,
    },
    /// Finished normally.
    Done {
        /// Dispatch time.
        start: EpochSecs,
        /// Completion time.
        end: EpochSecs,
        /// Hosts that ran it.
        hosts: Vec<NodeId>,
    },
    /// Killed by a host failure.
    Failed {
        /// Dispatch time.
        start: EpochSecs,
        /// Failure time.
        end: EpochSecs,
        /// Hosts that ran it.
        hosts: Vec<NodeId>,
    },
}

/// A job known to the qmaster.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Assigned id.
    pub id: JobId,
    /// The submission.
    pub spec: JobSpec,
    /// Submission time.
    pub submit_time: EpochSecs,
    /// Current state.
    pub state: JobState,
}

impl Job {
    /// Queue wait so far (or total, once started).
    pub fn wait_secs(&self, now: EpochSecs) -> i64 {
        match &self.state {
            JobState::Pending => now - self.submit_time,
            JobState::Running { start, .. }
            | JobState::Done { start, .. }
            | JobState::Failed { start, .. } => *start - self.submit_time,
        }
    }

    /// Hosts currently/finally allocated (empty while pending).
    pub fn hosts(&self) -> &[NodeId] {
        match &self.state {
            JobState::Pending => &[],
            JobState::Running { hosts, .. }
            | JobState::Done { hosts, .. }
            | JobState::Failed { hosts, .. } => hosts,
        }
    }

    /// True while executing.
    pub fn is_running(&self) -> bool {
        matches!(self.state, JobState::Running { .. })
    }

    /// True once finished (done or failed).
    pub fn is_finished(&self) -> bool {
        matches!(self.state, JobState::Done { .. } | JobState::Failed { .. })
    }

    /// Total slots across all hosts.
    pub fn total_slots(&self, slots_per_node: u32) -> u32 {
        self.spec.shape.slots_per_host(slots_per_node) * self.spec.shape.hosts_needed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(shape: JobShape) -> JobSpec {
        JobSpec {
            user: UserName::new("jieyao"),
            name: "run.sh".into(),
            shape,
            runtime_secs: 3600,
            priority: 0,
            mem_per_slot_gib: 2.0,
        }
    }

    #[test]
    fn shapes_compute_resources() {
        assert_eq!(JobShape::Serial { slots: 4 }.slots_per_host(36), 4);
        assert_eq!(JobShape::Serial { slots: 4 }.hosts_needed(), 1);
        assert_eq!(JobShape::Parallel { nodes: 58 }.slots_per_host(36), 36);
        assert_eq!(JobShape::Parallel { nodes: 58 }.hosts_needed(), 58);
        let at = JobShape::ArrayTask { parent: JobId(100), index: 7 };
        assert_eq!(at.slots_per_host(36), 1);
        assert_eq!(at.hosts_needed(), 1);
    }

    #[test]
    fn wait_time_freezes_at_start() {
        let mut j = Job {
            id: JobId(1),
            spec: spec(JobShape::Serial { slots: 1 }),
            submit_time: EpochSecs::new(100),
            state: JobState::Pending,
        };
        assert_eq!(j.wait_secs(EpochSecs::new(160)), 60);
        j.state = JobState::Running { start: EpochSecs::new(150), hosts: vec![NodeId::new(1, 1)] };
        assert_eq!(j.wait_secs(EpochSecs::new(1_000)), 50);
        assert!(j.is_running());
        assert!(!j.is_finished());
        assert_eq!(j.hosts().len(), 1);
    }

    #[test]
    fn total_slots_for_mpi_job() {
        let j = Job {
            id: JobId(2),
            spec: spec(JobShape::Parallel { nodes: 58 }),
            submit_time: EpochSecs::new(0),
            state: JobState::Pending,
        };
        // The paper's user "jieyao": 58 hosts x 36 cores.
        assert_eq!(j.total_slots(36), 2088);
        assert!(j.hosts().is_empty());
    }
}
