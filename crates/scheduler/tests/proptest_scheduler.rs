//! Property tests: scheduler invariants under arbitrary workloads.

use monster_scheduler::{
    host::SLOTS_PER_NODE, JobShape, JobSpec, JobState, Qmaster, QmasterConfig,
};
use monster_util::UserName;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ArbJob {
    offset: i64,
    slots: u32,
    nodes: u32,
    runtime: i64,
    priority: i32,
    parallel: bool,
}

fn arb_job() -> impl Strategy<Value = ArbJob> {
    (0i64..3_600, 1u32..=SLOTS_PER_NODE, 1u32..=6, 30i64..7_200, -5i32..5, any::<bool>()).prop_map(
        |(offset, slots, nodes, runtime, priority, parallel)| ArbJob {
            offset,
            slots,
            nodes,
            runtime,
            priority,
            parallel,
        },
    )
}

fn run_workload(jobs: &[ArbJob], nodes: usize, horizon: i64) -> Qmaster {
    let cfg = QmasterConfig { nodes, ..QmasterConfig::default() };
    let t0 = cfg.start_time;
    let mut qm = Qmaster::new(cfg);
    for (i, j) in jobs.iter().enumerate() {
        let shape = if j.parallel {
            JobShape::Parallel { nodes: j.nodes }
        } else {
            JobShape::Serial { slots: j.slots }
        };
        qm.submit_at(
            t0 + j.offset,
            JobSpec {
                user: UserName::new(format!("u{}", i % 5)),
                name: format!("job{i}"),
                shape,
                runtime_secs: j.runtime,
                priority: j.priority,
                mem_per_slot_gib: 1.0,
            },
        );
    }
    qm.run_until(t0 + horizon);
    qm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No host is ever oversubscribed, whatever the workload.
    #[test]
    fn no_host_oversubscription(jobs in prop::collection::vec(arb_job(), 1..40), checkpoints in 1usize..6) {
        let horizon = 7_200;
        for k in 1..=checkpoints {
            let qm = run_workload(&jobs, 8, horizon * k as i64 / checkpoints as i64);
            for node in qm.node_ids() {
                let report = qm.load_report(node).unwrap();
                prop_assert!(report.cpu_usage <= 1.0 + 1e-9, "{node}: {}", report.cpu_usage);
            }
        }
    }

    /// Job conservation: every submission is pending, running, or finished.
    #[test]
    fn jobs_are_conserved(jobs in prop::collection::vec(arb_job(), 1..40)) {
        let qm = run_workload(&jobs, 8, 7_200);
        let total = qm.jobs().count();
        prop_assert_eq!(total, jobs.len());
        let pending = qm.pending_jobs().len();
        let running = qm.running_jobs().len();
        let finished = qm.finished_jobs().len();
        prop_assert_eq!(pending + running + finished, total);
    }

    /// Causality: submit ≤ start ≤ end, and runtimes are honoured exactly.
    #[test]
    fn job_times_are_causal(jobs in prop::collection::vec(arb_job(), 1..30)) {
        let qm = run_workload(&jobs, 8, 20_000);
        for job in qm.jobs() {
            match &job.state {
                JobState::Pending => {}
                JobState::Running { start, .. } => {
                    prop_assert!(*start >= job.submit_time);
                }
                JobState::Done { start, end, .. } => {
                    prop_assert!(*start >= job.submit_time);
                    prop_assert_eq!(*end - *start, job.spec.runtime_secs);
                }
                JobState::Failed { start, end, .. } => {
                    prop_assert!(*start >= job.submit_time);
                    prop_assert!(*end >= *start);
                }
            }
        }
    }

    /// A running job holds exactly the hosts its shape requires, and every
    /// host it holds lists it back.
    #[test]
    fn allocations_are_bidirectional(jobs in prop::collection::vec(arb_job(), 1..30)) {
        let qm = run_workload(&jobs, 8, 5_000);
        for job in qm.running_jobs() {
            prop_assert_eq!(job.hosts().len() as u32, job.spec.shape.hosts_needed());
            for &h in job.hosts() {
                let report = qm.load_report(h).unwrap();
                prop_assert!(report.job_list.contains(&job.id), "{} missing from {h}", job.id);
            }
        }
        // And no host lists a job that is not running on it.
        for node in qm.node_ids() {
            for id in qm.load_report(node).unwrap().job_list {
                let job = qm.job(id).unwrap();
                prop_assert!(job.is_running());
                prop_assert!(job.hosts().contains(&node));
            }
        }
    }

    /// Determinism: the same workload replays identically.
    #[test]
    fn replay_is_deterministic(jobs in prop::collection::vec(arb_job(), 1..20)) {
        let a = run_workload(&jobs, 6, 6_000);
        let b = run_workload(&jobs, 6, 6_000);
        prop_assert_eq!(a.running_jobs().len(), b.running_jobs().len());
        prop_assert_eq!(a.finished_jobs().len(), b.finished_jobs().len());
        for (x, y) in a.jobs().zip(b.jobs()) {
            prop_assert_eq!(x, y);
        }
    }
}
