//! EASY-backfill tests: wide jobs cannot be starved; harmless short jobs
//! still slip through.

use monster_scheduler::qmaster::BackfillPolicy;
use monster_scheduler::{JobShape, JobSpec, Qmaster, QmasterConfig};
use monster_util::{EpochSecs, UserName};

fn spec(user: &str, shape: JobShape, runtime: i64) -> JobSpec {
    JobSpec {
        user: UserName::new(user),
        name: format!("{user}.sh"),
        shape,
        runtime_secs: runtime,
        priority: 0,
        mem_per_slot_gib: 1.0,
    }
}

fn qm(nodes: usize, backfill: BackfillPolicy) -> (Qmaster, EpochSecs) {
    let cfg = QmasterConfig { nodes, backfill, ..QmasterConfig::default() };
    let t0 = cfg.start_time;
    (Qmaster::new(cfg), t0)
}

/// The starvation scenario on a 2-node cluster:
///   t=1:  filler occupies node A for 1 h.
///   t=10: a 2-node MPI job queues (needs both nodes: blocked for ~1 h).
///   t=20: a stream of 2-hour single-node jobs queues behind it.
/// Under aggressive backfill the long jobs keep grabbing node B and the
/// MPI job starves; under EASY they must wait and the MPI job starts the
/// moment the filler ends.
fn starvation_scenario(policy: BackfillPolicy) -> (Qmaster, EpochSecs) {
    let (mut qm, t0) = qm(2, policy);
    qm.submit_at(t0 + 1, spec("filler", JobShape::Serial { slots: 36 }, 3600));
    qm.submit_at(t0 + 10, spec("mpi", JobShape::Parallel { nodes: 2 }, 1800));
    for i in 0..4 {
        qm.submit_at(t0 + 20 + i, spec("stream", JobShape::Serial { slots: 36 }, 7200));
    }
    qm.run_until(t0 + 2 * 3600);
    (qm, t0)
}

#[test]
fn aggressive_backfill_starves_the_wide_job() {
    let (qm, _) = starvation_scenario(BackfillPolicy::Aggressive);
    let mpi = qm.jobs().find(|j| j.spec.user.as_str() == "mpi").unwrap();
    // Two hours in, the MPI job still hasn't started: stream jobs keep
    // taking the free node.
    assert!(!mpi.is_running() && !mpi.is_finished(), "state {:?}", mpi.state);
}

#[test]
fn easy_backfill_honours_the_reservation() {
    let (qm, t0) = starvation_scenario(BackfillPolicy::Easy);
    let mpi = qm.jobs().find(|j| j.spec.user.as_str() == "mpi").unwrap();
    // The MPI job ran: it started right after the filler ended (~1 h)
    // and finished 30 minutes later.
    match &mpi.state {
        monster_scheduler::JobState::Done { start, end, .. } => {
            assert!((*start - t0) >= 3600 && (*start - t0) <= 3700, "started {} s in", *start - t0);
            assert_eq!(*end - *start, 1800);
        }
        other => panic!("MPI job should have completed, state {other:?}"),
    }
    // No stream job started before the MPI job (they all end after the
    // reservation and would consume its second node).
    for j in qm.jobs().filter(|j| j.spec.user.as_str() == "stream") {
        if let Some(start) = match &j.state {
            monster_scheduler::JobState::Running { start, .. } => Some(*start),
            monster_scheduler::JobState::Done { start, .. } => Some(*start),
            _ => None,
        } {
            assert!(start - t0 >= 3600, "stream job jumped the reservation at {}", start - t0);
        }
    }
}

#[test]
fn easy_still_backfills_harmless_short_jobs() {
    let (mut qm, t0) = qm(2, BackfillPolicy::Easy);
    qm.submit_at(t0 + 1, spec("filler", JobShape::Serial { slots: 36 }, 3600));
    qm.submit_at(t0 + 10, spec("mpi", JobShape::Parallel { nodes: 2 }, 1800));
    // A 10-minute job ends well before the ~1 h reservation: backfillable.
    qm.submit_at(t0 + 20, spec("quickie", JobShape::Serial { slots: 36 }, 600));
    qm.run_until(t0 + 900);
    let quickie = qm.jobs().find(|j| j.spec.user.as_str() == "quickie").unwrap();
    assert!(quickie.is_finished(), "short job should have backfilled, state {:?}", quickie.state);
    // And the MPI job's reservation still holds.
    qm.run_until(t0 + 2 * 3600);
    let mpi = qm.jobs().find(|j| j.spec.user.as_str() == "mpi").unwrap();
    assert!(mpi.is_finished(), "MPI delayed: {:?}", mpi.state);
}

#[test]
fn easy_with_empty_cluster_behaves_normally() {
    let (mut qm, t0) = qm(4, BackfillPolicy::Easy);
    for i in 0..6 {
        qm.submit_at(t0 + 1 + i, spec("u", JobShape::Serial { slots: 18 }, 300));
    }
    qm.run_until(t0 + 600);
    // 6 x 18-slot jobs fit on 4 nodes (2 per node on 3 nodes); all done.
    assert_eq!(qm.finished_jobs().len(), 6);
}

#[test]
fn impossible_jobs_never_block_the_queue() {
    let (mut qm, t0) = qm(2, BackfillPolicy::Easy);
    // Wider than the cluster: no reservation possible.
    qm.submit_at(t0 + 1, spec("huge", JobShape::Parallel { nodes: 10 }, 100));
    qm.submit_at(t0 + 2, spec("ok", JobShape::Serial { slots: 4 }, 100));
    qm.run_until(t0 + 300);
    assert_eq!(qm.pending_jobs().len(), 1);
    let ok = qm.jobs().find(|j| j.spec.user.as_str() == "ok").unwrap();
    assert!(ok.is_finished());
}
