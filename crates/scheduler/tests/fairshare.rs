//! Fair-share policy tests: heavy users yield to light users under
//! contention, and the penalty decays.

use monster_scheduler::qmaster::FairshareConfig;
use monster_scheduler::{JobShape, JobSpec, Qmaster, QmasterConfig};
use monster_util::{EpochSecs, UserName};

fn spec(user: &str, runtime: i64) -> JobSpec {
    JobSpec {
        user: UserName::new(user),
        name: format!("{user}.sh"),
        shape: JobShape::Serial { slots: 36 }, // whole node
        runtime_secs: runtime,
        priority: 0,
        mem_per_slot_gib: 1.0,
    }
}

fn qm(fairshare: Option<FairshareConfig>) -> (Qmaster, EpochSecs) {
    let cfg = QmasterConfig { nodes: 1, fairshare, ..QmasterConfig::default() };
    let t0 = cfg.start_time;
    (Qmaster::new(cfg), t0)
}

/// The contention scenario: `hog` burns the single node for an hour, then
/// both users race for the next slot. Returns who won.
fn run_contention(fairshare: Option<FairshareConfig>) -> String {
    let (mut qm, t0) = qm(fairshare);
    // The hog runs a 1-hour job first, accruing usage.
    qm.submit_at(t0 + 1, spec("hog", 3600));
    qm.run_until(t0 + 60);
    // While it runs, hog queues its next job *before* the light user does.
    qm.submit_at(t0 + 100, spec("hog", 3600));
    qm.submit_at(t0 + 200, spec("light", 3600));
    // Both are pending; the node frees up when the first job ends.
    qm.run_until(t0 + 3700 + 60);
    let running = qm.running_jobs();
    assert_eq!(running.len(), 1, "exactly one job should hold the node");
    running[0].spec.user.as_str().to_string()
}

#[test]
fn without_fairshare_fifo_wins() {
    // Plain FIFO: the hog's earlier submission runs first.
    assert_eq!(run_contention(None), "hog");
}

#[test]
fn with_fairshare_light_user_jumps_the_queue() {
    // With fair share, the hog's hour of usage outweighs its FIFO edge.
    let fs = FairshareConfig { halflife_secs: 4 * 3600, weight: 100.0 };
    assert_eq!(run_contention(Some(fs)), "light");
}

#[test]
fn fairshare_penalty_decays() {
    // Same scenario, but the second race happens two days later: the hog's
    // usage has decayed through ~12 half-lives and FIFO order wins again.
    let fs = FairshareConfig { halflife_secs: 4 * 3600, weight: 100.0 };
    let (mut qm, t0) = qm(Some(fs));
    qm.submit_at(t0 + 1, spec("hog", 3600));
    qm.run_until(t0 + 2 * 86_400);
    // Node idle; queue both with hog first while a filler occupies it.
    qm.submit_at(t0 + 2 * 86_400 + 10, spec("filler", 600));
    qm.run_until(t0 + 2 * 86_400 + 60);
    qm.submit_at(t0 + 2 * 86_400 + 100, spec("hog", 3600));
    qm.submit_at(t0 + 2 * 86_400 + 200, spec("light", 3600));
    qm.run_until(t0 + 2 * 86_400 + 700);
    let running = qm.running_jobs();
    assert_eq!(running.len(), 1);
    assert_eq!(running[0].spec.user.as_str(), "hog", "decayed usage should restore FIFO");
}

#[test]
fn explicit_priority_still_dominates() {
    // A high submitted priority beats the fair-share penalty.
    let fs = FairshareConfig { halflife_secs: 4 * 3600, weight: 100.0 };
    let (mut qm, t0) = qm(Some(fs));
    qm.submit_at(t0 + 1, spec("hog", 3600));
    qm.run_until(t0 + 60);
    let mut prio = spec("hog", 3600);
    prio.priority = 1000;
    qm.submit_at(t0 + 100, prio);
    qm.submit_at(t0 + 200, spec("light", 3600));
    qm.run_until(t0 + 3700 + 60);
    assert_eq!(qm.running_jobs()[0].spec.user.as_str(), "hog");
}
