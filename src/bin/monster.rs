//! `monster` — the command-line entry point.
//!
//! The paper's pitch is a monitoring tool that works "out of the box";
//! this binary is that box:
//!
//! ```text
//! monster demo  [--nodes N] [--intervals N]    collect + query a deployment
//! monster serve [--nodes N] [--port P]         run the Metrics Builder API
//! monster query [--nodes N] <influxql>         run one query over demo data
//! monster watch [--nodes N] [--intervals N]    collect with anomaly alerts
//! monster top   [--nodes N] [--intervals N]    fleet dashboard snapshots
//! monster report [--nodes N] [--hours H]       per-user utilization report
//! ```

use monster::analysis::{AnomalyConfig, AnomalyDetector};
use monster::builder::{BuilderRequest, ExecMode};
use monster::redfish::bmc::BmcConfig;
use monster::tsdb::Aggregation;
use monster::util::bytesize::ByteSize;
use monster::{Monster, MonsterConfig};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  monster demo  [--nodes N] [--intervals N]\n  monster serve [--nodes N] [--port P]\n  monster query [--nodes N] <influxql>\n  monster watch [--nodes N] [--intervals N]\n  monster top   [--nodes N] [--intervals N]\n  monster report [--nodes N] [--hours H]"
    );
    ExitCode::from(2)
}

/// Parse `--key value` flags; returns (flags, positional args).
fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if let Some(v) = it.next() {
                flags.insert(key.to_string(), v.clone());
            }
        } else {
            positional.push(a.clone());
        }
    }
    (flags, positional)
}

fn flag_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> usize {
    flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn deployment(nodes: usize) -> Monster {
    Monster::new(MonsterConfig { nodes, bmc: BmcConfig::default(), ..MonsterConfig::default() })
}

fn cmd_demo(flags: &HashMap<String, String>) -> ExitCode {
    let nodes = flag_usize(flags, "nodes", 16);
    let intervals = flag_usize(flags, "intervals", 5);
    println!("monster demo: {nodes} nodes, {intervals} x 60 s intervals\n");
    let mut m = deployment(nodes);
    for s in m.run_intervals(intervals) {
        println!(
            "  {}  {:5} points  sweep {}  failures {}",
            s.time, s.points, s.collection_time, s.bmc_failures
        );
    }
    let stats = m.db().stats();
    println!(
        "\nstored {} points / {} series / {} at rest",
        stats.points,
        stats.cardinality,
        ByteSize(stats.encoded_bytes as u64)
    );
    let req =
        BuilderRequest::new(m.now() - intervals as i64 * 60, m.now() + 60, 60, Aggregation::Mean)
            .expect("window");
    let out = m.builder_query(&req, ExecMode::Concurrent { workers: 8 }).expect("query");
    println!("builder query: {} points, simulated {}", out.points_out, out.query_processing_time());
    ExitCode::SUCCESS
}

fn cmd_serve(flags: &HashMap<String, String>) -> ExitCode {
    let nodes = flag_usize(flags, "nodes", 16);
    let port = flag_usize(flags, "port", 8080) as u16;
    let mut m = deployment(nodes);
    println!("collecting one hour of history on {nodes} nodes...");
    m.run_intervals_bulk(60);
    let server = match m.serve_api(port) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("Metrics Builder API on {}", server.base_url());
    println!(
        "try: curl '{}/v1/metrics?start={}&end={}&interval=5m&aggregation=max'",
        server.base_url(),
        (m.now() - 3600).to_rfc3339(),
        m.now().to_rfc3339()
    );
    println!("collection continues every 60 s; ctrl-c to stop");
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        if let Err(e) = m.run_interval() {
            eprintln!("collection error: {e}");
            return ExitCode::FAILURE;
        }
    }
}

fn cmd_query(flags: &HashMap<String, String>, positional: &[String]) -> ExitCode {
    let Some(text) = positional.first() else {
        eprintln!("query: missing InfluxQL string");
        return ExitCode::from(2);
    };
    let nodes = flag_usize(flags, "nodes", 8);
    let mut m = deployment(nodes);
    m.run_intervals_bulk(30);
    // SHOW meta-queries discover the schema.
    if text.trim().to_ascii_uppercase().starts_with("SHOW") {
        return match monster::tsdb::query::MetaQuery::parse(text) {
            Ok(q) => {
                for row in q.run(m.db()) {
                    println!("{row}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("query error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match m.db().query_str(text) {
        Ok((rs, cost)) => {
            for series in &rs.series {
                println!("{}", series.key);
                for (t, v) in &series.points {
                    println!("  {t}  {v}");
                }
            }
            println!(
                "\n{} series, {} points; simulated {}",
                rs.series.len(),
                rs.point_count(),
                m.db().simulate_elapsed(&cost)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("query error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_watch(flags: &HashMap<String, String>) -> ExitCode {
    let nodes = flag_usize(flags, "nodes", 16);
    let intervals = flag_usize(flags, "intervals", 30);
    println!("monster watch: {nodes} nodes, {intervals} intervals, anomaly alerts on power\n");
    let mut m = deployment(nodes);
    let mut detector =
        AnomalyDetector::new(AnomalyConfig { warmup: 5, ..AnomalyConfig::default() });
    let mut alerts = 0;
    for _ in 0..intervals {
        let s = m.run_interval().expect("interval");
        for node in m.node_ids() {
            let power = m.cluster().sensors(node).expect("node").power;
            if let Some(ev) = detector.observe(&format!("{}/power", node.label()), s.time, power) {
                alerts += 1;
                println!(
                    "  [{}] {} {}: {:.0} W (expected ~{:.0} W)",
                    ev.time,
                    if ev.raised { "ALERT" } else { "clear" },
                    ev.signal,
                    ev.value,
                    ev.expected
                );
            }
        }
    }
    println!("\n{alerts} alarm transitions over {intervals} intervals");
    ExitCode::SUCCESS
}

fn cmd_top(flags: &HashMap<String, String>) -> ExitCode {
    let nodes = flag_usize(flags, "nodes", 24);
    let intervals = flag_usize(flags, "intervals", 10);
    let mut m = deployment(nodes);
    println!("monster top: {nodes} nodes, one frame per collection interval\n");
    for frame in 0..intervals {
        let s = m.run_interval().expect("interval");
        let mut rows: Vec<(String, f64, f64, f64)> = m
            .node_ids()
            .iter()
            .map(|&n| {
                let sensors = m.cluster().sensors(n).expect("node");
                let util = m.qmaster().utilization(n);
                (n.label(), util, sensors.power, sensors.cpu_temps[0].max(sensors.cpu_temps[1]))
            })
            .collect();
        rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite power"));
        let cluster_util: f64 = rows.iter().map(|r| r.1).sum::<f64>() / rows.len() as f64 * 100.0;
        let cluster_kw: f64 = rows.iter().map(|r| r.2).sum::<f64>() / 1000.0;
        println!(
            "[{}] frame {}/{intervals}: util {:5.1}%  power {:6.2} kW  running {}  pending {}  sweep {}",
            s.time,
            frame + 1,
            cluster_util,
            cluster_kw,
            m.qmaster().running_jobs().len(),
            m.qmaster().pending_jobs().len(),
            s.collection_time,
        );
        println!("  {:<8} {:>6} {:>9} {:>8}", "hottest", "util", "power", "cpu max");
        for (label, util, power, temp) in rows.iter().take(5) {
            println!("  {label:<8} {:>5.0}% {:>7.1} W {:>6.1} C", util * 100.0, power, temp);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_report(flags: &HashMap<String, String>) -> ExitCode {
    let nodes = flag_usize(flags, "nodes", 32);
    let hours = flag_usize(flags, "hours", 6) as i64;
    let mut m = deployment(nodes);
    println!("simulating {hours} h of cluster activity on {nodes} nodes...\n");
    let start = m.now();
    m.run_intervals_bulk((hours * 60) as usize);
    let report = monster::analysis::ClusterReport::build(m.qmaster(), start, m.now());
    print!("{}", report.to_text());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { return usage() };
    let (flags, positional) = parse_flags(&args[1..]);
    match cmd.as_str() {
        "demo" => cmd_demo(&flags),
        "serve" => cmd_serve(&flags),
        "query" => cmd_query(&flags, &positional),
        "watch" => cmd_watch(&flags),
        "top" => cmd_top(&flags),
        "report" => cmd_report(&flags),
        _ => usage(),
    }
}
