//! # MonSTer
//!
//! A Rust reproduction of *"MonSTer: An Out-of-the-Box Monitoring Tool for
//! High Performance Computing Systems"* (IEEE CLUSTER 2020): an integrated
//! monitoring pipeline that polls BMC sensor data over Redfish, pulls job
//! and resource data from the scheduler, stores everything in an embedded
//! time-series database, and serves aggregated, compressed JSON to
//! analysis consumers.
//!
//! This umbrella crate re-exports the whole workspace; see the README for
//! the architecture tour and `examples/` for runnable entry points.
//!
//! ```
//! use monster::{Monster, MonsterConfig};
//! let mut deployment = Monster::new(MonsterConfig { nodes: 8, ..MonsterConfig::default() });
//! deployment.run_intervals(2);
//! assert!(deployment.db().stats().points > 0);
//! ```

#![warn(missing_docs)]

pub use monster_core::*;

pub use monster_alert as alert;
pub use monster_analysis as analysis;
pub use monster_builder as builder;
pub use monster_collector as collector;
pub use monster_compress as mzlib;
pub use monster_http as http;
pub use monster_json as json;
pub use monster_obs as obs;
pub use monster_redfish as redfish;
pub use monster_scheduler as scheduler;
pub use monster_sim as sim;
pub use monster_tsdb as tsdb;
pub use monster_util as util;
